/**
 * @file
 * Ablation: scaled vs full-size caches. The paper scales the caches to
 * 2KB/4KB to keep a realistic ratio between problem size and cache
 * size (Section 2.3) and reports that with the full 64KB/256KB caches
 * "the absolute execution times decreased ... the relative gains from
 * the various techniques were similar", with somewhat higher hit
 * rates. This bench checks both claims.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Ablation: scaled (2KB/4KB) vs full (64KB/256KB) "
                   "caches");

    MemConfig full = MemConfig::fullSizeCaches();

    // One batch over the whole (app x technique x cache-size) grid.
    RunBatch batch;
    for (auto &[name, factory] : workloads()) {
        batch.add(factory, Technique::sc(), {}, name + " SC scaled");
        batch.add(factory, Technique::rc(), {}, name + " RC scaled");
        batch.add(factory, Technique::sc(), full, name + " SC full");
        batch.add(factory, Technique::rc(), full, name + " RC full");
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (auto &[name, factory] : workloads()) {
        (void)factory;
        RunResult sc_s = takeResult(outcomes[i++]);
        RunResult rc_s = takeResult(outcomes[i++]);
        RunResult sc_f = takeResult(outcomes[i++]);
        RunResult rc_f = takeResult(outcomes[i++]);
        std::printf("%-6s scaled: exec %9llu  rd-hit %4.1f%%  wr-hit "
                    "%4.1f%%  RC speedup %4.2f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(sc_s.execTime),
                    sc_s.readHitPct, sc_s.writeHitPct,
                    speedup(rc_s, sc_s));
        std::printf("%-6s full:   exec %9llu  rd-hit %4.1f%%  wr-hit "
                    "%4.1f%%  RC speedup %4.2f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(sc_f.execTime),
                    sc_f.readHitPct, sc_f.writeHitPct,
                    speedup(rc_f, sc_f));
    }
    std::printf("\nPaper (Section 2.3 footnote): full-cache hit rates "
                "MP3D 82/75, LU 76/99,\nPTHOR 86/52; relative technique "
                "gains similar to the scaled caches. MP3D\ngains least "
                "from larger caches since most of its misses are "
                "inherent\ncommunication misses.\n");
    return 0;
}
