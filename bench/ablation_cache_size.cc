/**
 * @file
 * Ablation: scaled vs full-size caches. The paper scales the caches to
 * 2KB/4KB to keep a realistic ratio between problem size and cache
 * size (Section 2.3) and reports that with the full 64KB/256KB caches
 * "the absolute execution times decreased ... the relative gains from
 * the various techniques were similar", with somewhat higher hit
 * rates. This bench checks both claims.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Ablation: scaled (2KB/4KB) vs full (64KB/256KB) "
                   "caches");

    MemConfig full = MemConfig::fullSizeCaches();
    for (auto &[name, factory] : workloads()) {
        RunResult sc_s = runExperiment(factory, Technique::sc());
        RunResult rc_s = runExperiment(factory, Technique::rc());
        RunResult sc_f = runExperiment(factory, Technique::sc(), full);
        RunResult rc_f = runExperiment(factory, Technique::rc(), full);
        std::printf("%-6s scaled: exec %9llu  rd-hit %4.1f%%  wr-hit "
                    "%4.1f%%  RC speedup %4.2f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(sc_s.execTime),
                    sc_s.readHitPct, sc_s.writeHitPct,
                    speedup(rc_s, sc_s));
        std::printf("%-6s full:   exec %9llu  rd-hit %4.1f%%  wr-hit "
                    "%4.1f%%  RC speedup %4.2f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(sc_f.execTime),
                    sc_f.readHitPct, sc_f.writeHitPct,
                    speedup(rc_f, sc_f));
    }
    std::printf("\nPaper (Section 2.3 footnote): full-cache hit rates "
                "MP3D 82/75, LU 76/99,\nPTHOR 86/52; relative technique "
                "gains similar to the scaled caches. MP3D\ngains least "
                "from larger caches since most of its misses are "
                "inherent\ncommunication misses.\n");
    return 0;
}
