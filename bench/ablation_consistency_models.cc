/**
 * @file
 * Ablation: the full consistency-model spectrum. The paper evaluates
 * SC and RC and argues that processor consistency and weak consistency
 * "fall between sequential and release consistency models in terms of
 * flexibility" (Section 4); this bench runs all four models on the
 * three applications to check that the performance ordering
 * SC <= PC <= WC <= RC holds (modulo noise) and to show where each
 * model's restrictions bite.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader(
        "Ablation: consistency spectrum (SC / PC / WC / RC)");

    for (auto &[name, factory] : workloads()) {
        auto rows = runSeries(factory, {
            {"SC", Technique::sc()},
            {"PC", Technique::pc()},
            {"WC", Technique::wc()},
            {"RC", Technique::rc()},
        });
        printBreakdown(std::cout, name + " (consistency spectrum)",
                       rows, 0, false);
    }
    std::printf(
        "PC removes write stalls but serializes ownership acquisition "
        "(writes retire\nin order). WC pipelines writes like RC but "
        "fences at every synchronization\naccess, which costs the "
        "lock/barrier-heavy applications. RC fences only at\n"
        "releases, the most permissive of the four.\n");
    return 0;
}
