/**
 * @file
 * Ablation: contention modeling on/off. With occupancies zeroed every
 * access completes in its uncontended Table 1 time; the difference
 * against the full model shows how much queueing at the buses, the
 * directories, and the network ports contributes to each application's
 * execution time (DESIGN.md, "design choices worth ablating").
 */

#include "common.hh"

using namespace benchutil;

namespace {

MemConfig
noContention()
{
    MemConfig m;
    m.lat.busOccupancy = 0;
    m.lat.busCtlOccupancy = 0;
    m.lat.dirOccupancy = 0;
    m.lat.netDataOccupancy = 0;
    m.lat.netCtlOccupancy = 0;
    return m;
}

} // namespace

int
main()
{
    printRunHeader("Ablation: contention modeling (SC and RC)");

    RunBatch batch;
    for (auto &[name, factory] : workloads()) {
        for (auto cons : {Technique::sc(), Technique::rc()}) {
            batch.add(factory, cons, {}, name + " modeled");
            batch.add(factory, cons, noContention(),
                      name + " uncontended");
        }
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (auto &[name, factory] : workloads()) {
        (void)factory;
        for (auto cons : {Technique::sc(), Technique::rc()}) {
            RunResult with = takeResult(outcomes[i++]);
            RunResult without = takeResult(outcomes[i++]);
            std::printf("%-6s %-3s  modeled exec %9llu  uncontended "
                        "%9llu  queueing adds %5.1f%%  "
                        "(miss lat %5.1f -> %5.1f)\n",
                        name.c_str(),
                        cons.consistency == Consistency::SC ? "SC" : "RC",
                        static_cast<unsigned long long>(with.execTime),
                        static_cast<unsigned long long>(without.execTime),
                        100.0 * (static_cast<double>(with.execTime) -
                                 static_cast<double>(without.execTime)) /
                            static_cast<double>(without.execTime),
                        without.avgReadMissLatency,
                        with.avgReadMissLatency);
        }
    }
    std::printf("\nExpected: queueing matters more under RC (pipelined "
                "writes share the\ninterconnect with demand reads) and "
                "for the communication-heavy apps.\n");
    return 0;
}
