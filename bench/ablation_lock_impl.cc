/**
 * @file
 * Ablation: software test&test&set spin locks vs DASH's queue-based
 * hardware locks, under increasing contention. With t&t&s every
 * release invalidates all spinners, who then race ownership of the
 * lock line; a queued lock hands off to exactly one waiter with a
 * single grant message. DASH provided the queued locks precisely
 * because of this difference.
 */

#include "common.hh"
#include "tango/sync.hh"

using namespace benchutil;

namespace {

class LockStress : public Workload
{
  public:
    LockStress(bool queued, unsigned contenders)
        : queued(queued), contenders(contenders)
    {}

    std::string name() const override { return "lock-stress"; }

    void
    setup(Machine &m) override
    {
        auto &mem = m.memory();
        lk = sync::allocLock(mem);
        counter = mem.allocRoundRobin(lineBytes);
        bar = sync::allocBarrier(mem);
    }

    SimProcess
    run(Env env) override
    {
        co_await env.barrier(bar, env.nprocs());
        if (env.pid() < contenders) {
            for (int i = 0; i < 40; ++i) {
                if (queued)
                    co_await env.lockQueued(lk);
                else
                    co_await env.lock(lk);
                auto v = co_await env.read<std::uint64_t>(counter);
                co_await env.compute(10);
                co_await env.write<std::uint64_t>(counter, v + 1);
                if (queued)
                    co_await env.unlockQueued(lk);
                else
                    co_await env.unlock(lk);
            }
        }
        co_await env.barrier(bar, env.nprocs());
    }

    void
    verify(Machine &m) override
    {
        auto v = m.memory().load<std::uint64_t>(counter);
        if (v != 40ull * contenders)
            fatal("lock stress lost updates: %llu != %llu",
                  static_cast<unsigned long long>(v),
                  40ull * contenders);
    }

  private:
    bool queued;
    unsigned contenders;
    Addr lk = 0, counter = 0, bar = 0;
};

} // namespace

int
main()
{
    printRunHeader("Ablation: test&test&set vs DASH queue-based locks");

    std::printf("%-11s %-8s %12s %14s\n", "contenders", "lock",
                "exec cycles", "lock retries");
    RunBatch batch;
    for (unsigned contenders : {1u, 2u, 4u, 8u, 16u}) {
        for (bool queued : {false, true}) {
            batch.add([queued, contenders] {
                return std::make_unique<LockStress>(queued, contenders);
            }, Technique::rc());
        }
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (unsigned contenders : {1u, 2u, 4u, 8u, 16u}) {
        for (bool queued : {false, true}) {
            RunResult r = takeResult(outcomes[i++]);
            std::printf("%-11u %-8s %12llu %14llu\n", contenders,
                        queued ? "queued" : "t&t&s",
                        static_cast<unsigned long long>(r.execTime),
                        static_cast<unsigned long long>(r.lockRetries));
        }
    }
    std::printf(
        "\nTwo classic effects appear. The queued lock never retries "
        "(each release\nsends exactly one grant) and serves waiters "
        "FIFO-fairly, at the cost of a\ncross-node handoff on every "
        "transfer. Test&test&set has a retry storm that\ngrows with "
        "contention - but it is *unfair* in a way that helps "
        "throughput:\nthe releasing node usually re-acquires its own "
        "dirty lock line in 2 cycles,\nso the lock migrates rarely. "
        "DASH shipped queued locks for the fairness and\nthe traffic "
        "reduction, not raw single-lock throughput.\n");
    return 0;
}
