/**
 * @file
 * Ablation: LU prefetch distance. The paper found it better to
 * distribute prefetch issue evenly through the apply loop than to
 * fetch a whole column in one burst (hot-spotting, Section 5.2); the
 * prefetch distance controls how far ahead of use the requests run.
 * Too short hides little latency; too long loses lines to conflict
 * replacement before use (self-interference).
 */

#include "apps/lu.hh"
#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Ablation: LU software-prefetch distance");

    LuConfig base;
    if (quickMode())
        base.n = 48;

    RunBatch batch;
    batch.add([base] { return std::make_unique<Lu>(base); },
              Technique::rc(), {}, "no prefetch");
    for (std::uint32_t dist : {2u, 4u, 8u, 16u, 32u, 64u}) {
        LuConfig lc = base;
        lc.prefetchDistance = dist;
        batch.add([lc] { return std::make_unique<Lu>(lc); },
                  Technique::rcPrefetch(), {},
                  "distance " + std::to_string(dist));
    }
    auto outcomes = batch.run();

    RunResult off = takeResult(outcomes[0]);
    std::printf("%-14s exec %9llu  (baseline, RC, no prefetch)\n",
                "no prefetch", static_cast<unsigned long long>(
                                   off.execTime));

    std::size_t i = 1;
    for (std::uint32_t dist : {2u, 4u, 8u, 16u, 32u, 64u}) {
        RunResult r = takeResult(outcomes[i++]);
        std::printf("distance %-5u exec %9llu  speedup %4.2f  "
                    "pf-overhead %4.1f%%  rd-hit %4.1f%%  "
                    "dropped %5.1f%%\n",
                    dist, static_cast<unsigned long long>(r.execTime),
                    speedup(r, off),
                    100.0 * r.bucket(Bucket::PfOverhead) /
                        r.totalCycles(),
                    r.readHitPct,
                    r.prefetchesIssued
                        ? 100.0 * static_cast<double>(
                                      r.prefetchesDropped) /
                              static_cast<double>(r.prefetchesIssued)
                        : 0.0);
    }
    std::printf("\nExpected: an interior optimum - short distances "
                "leave latency exposed,\nlong distances lose "
                "prefetched lines to replacement before use.\n");
    return 0;
}
