/**
 * @file
 * Ablation: problem size vs cache size - the paper's Section 2.3
 * methodology discussion. The authors scaled the caches to 2KB/4KB so
 * that a simulatable problem size produces the miss behavior of a
 * production-size problem on full caches. Sweeping MP3D's particle
 * count on the fixed scaled caches shows how the miss rates (and with
 * them every technique tradeoff) depend on that ratio.
 */

#include "apps/mp3d.hh"
#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader(
        "Ablation: MP3D problem size vs (scaled) cache size");

    std::printf("%-10s %12s %8s %8s %10s %8s\n", "particles",
                "SC exec", "rd-hit", "wr-hit", "cycles/", "RC");
    std::printf("%-10s %12s %8s %8s %10s %8s\n", "", "", "", "",
                "particle", "speedup");

    const std::uint32_t steps = quickMode() ? 1 : 3;
    RunBatch batch;
    for (std::uint32_t particles :
         {2500u, 5000u, 10000u, 20000u}) {
        Mp3dConfig c;
        c.particles = particles;
        c.steps = steps;
        auto factory = [c] { return std::make_unique<Mp3d>(c); };
        batch.add(factory, Technique::sc());
        batch.add(factory, Technique::rc());
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (std::uint32_t particles :
         {2500u, 5000u, 10000u, 20000u}) {
        RunResult sc = takeResult(outcomes[i++]);
        RunResult rc = takeResult(outcomes[i++]);

        std::printf("%-10u %12llu %7.1f%% %7.1f%% %10.1f %7.2fx\n",
                    particles,
                    static_cast<unsigned long long>(sc.execTime),
                    sc.readHitPct, sc.writeHitPct,
                    static_cast<double>(sc.execTime) * 16.0 /
                        (static_cast<double>(particles) * steps),
                    speedup(rc, sc));
    }
    std::printf(
        "\nWith 10,000+ particles the per-particle footprint swamps "
        "the scaled caches\nand the hit rates flatten at their "
        "communication-limited floor - exactly the\nregime the paper "
        "targets ('the caches are expected to miss on each "
        "particle').\nBelow that, the problem starts fitting and the "
        "techniques matter less.\n");
    return 0;
}
