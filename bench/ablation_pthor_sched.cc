/**
 * @file
 * Ablation: PTHOR scheduling policy. The paper's PTHOR schedules an
 * activated element onto its owner's task queue (idle processes spin);
 * the alternative keeps activations local and lets idle processes
 * steal, at the cost of per-element locks and bouncing element
 * records. This bench quantifies the difference.
 */

#include "apps/pthor.hh"
#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Ablation: PTHOR task scheduling policy");

    RunBatch batch;
    for (auto t : {Technique::sc(), Technique::rc(),
                   Technique::multiContext(4, 4)}) {
        for (bool stealing : {false, true}) {
            PthorConfig pc;
            if (quickMode()) {
                pc.elements = 1200;
                pc.flipflops = 120;
                pc.primaryInputs = 32;
                pc.levels = 6;
                pc.clockCycles = 2;
            }
            pc.workStealing = stealing;
            batch.add([pc] { return std::make_unique<Pthor>(pc); }, t);
        }
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (auto t : {Technique::sc(), Technique::rc(),
                   Technique::multiContext(4, 4)}) {
        for (bool stealing : {false, true}) {
            RunResult r = takeResult(outcomes[i++]);
            std::printf("%-16s %-11s exec %9llu  busy %4.1f%%  sync "
                        "%4.1f%%  locks %7llu  rd-hit %4.1f%%  "
                        "wr-hit %4.1f%%\n",
                        t.label().c_str(),
                        stealing ? "stealing" : "owner-push",
                        static_cast<unsigned long long>(r.execTime),
                        100.0 * r.bucket(Bucket::Busy) / r.totalCycles(),
                        100.0 *
                            (r.bucket(Bucket::Sync) +
                             r.bucket(Bucket::AllIdle)) /
                            r.totalCycles(),
                        static_cast<unsigned long long>(r.locks),
                        r.readHitPct, r.writeHitPct);
        }
    }
    std::printf("\nOwner-push keeps element records node-local (higher "
                "write hit rate, fewer\nlocks per evaluation); stealing "
                "balances load at the cost of bouncing the\nmutable "
                "lines between caches.\n");
    return 0;
}
