/**
 * @file
 * Ablation: context-switch threshold. The processor switches contexts
 * only when the expected stall is at least `switchThreshold` cycles;
 * shorter stalls are ridden out as "no switch" idle time. Sweeping the
 * threshold shows the tradeoff between wasted switch cycles (threshold
 * too low: even secondary-cache fills trigger a switch) and wasted
 * stall cycles (threshold too high: remote misses are not hidden).
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Ablation: context-switch threshold (4ctx, sw=4, SC)");

    RunBatch batch;
    for (auto &[name, factory] : workloads()) {
        for (Tick threshold : {2u, 14u, 26u, 64u, 100u}) {
            RunPoint p;
            p.factory = factory;
            p.technique = Technique::multiContext(4, 4);
            p.label = name;
            p.configure = [threshold](MachineConfig &cfg) {
                cfg.cpu.switchThreshold = threshold;
            };
            batch.add(std::move(p));
        }
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (auto &[name, factory] : workloads()) {
        (void)factory;
        for (Tick threshold : {2u, 14u, 26u, 64u, 100u}) {
            RunResult r = takeResult(outcomes[i++]);
            std::printf("%-6s threshold %3llu  exec %9llu  "
                        "switching %4.1f%%  no-switch %4.1f%%  "
                        "all-idle %4.1f%%  switches %7llu\n",
                        name.c_str(),
                        static_cast<unsigned long long>(threshold),
                        static_cast<unsigned long long>(r.execTime),
                        100.0 * r.bucket(Bucket::Switching) /
                            r.totalCycles(),
                        100.0 * r.bucket(Bucket::NoSwitch) /
                            r.totalCycles(),
                        100.0 * r.bucket(Bucket::AllIdle) /
                            r.totalCycles(),
                        static_cast<unsigned long long>(
                            r.contextSwitches));
        }
        std::printf("\n");
    }
    std::printf("The paper's implicit policy - switch on anything "
                "beyond the secondary\ncache (>= 26 cycles) - sits at "
                "the knee for all three applications.\n");
    return 0;
}
