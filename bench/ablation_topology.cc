/**
 * @file
 * Ablation: uniform network latency (the paper's model) vs a 4x4
 * 2-D mesh with distance-dependent hops (what the DASH prototype
 * physically was). Under the mesh, data placement locality matters
 * beyond local-vs-remote: neighbours are cheaper than corners.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Ablation: uniform network vs 4x4 mesh topology");

    MemConfig mesh;
    mesh.lat.mesh = true;

    RunBatch batch;
    for (auto &[name, factory] : workloads()) {
        for (auto t : {Technique::sc(), Technique::rc()}) {
            batch.add(factory, t, {}, name + " uniform");
            batch.add(factory, t, mesh, name + " mesh");
        }
    }
    auto outcomes = batch.run();

    std::size_t i = 0;
    for (auto &[name, factory] : workloads()) {
        (void)factory;
        for (auto t : {Technique::sc(), Technique::rc()}) {
            RunResult uni = takeResult(outcomes[i++]);
            RunResult msh = takeResult(outcomes[i++]);
            std::printf("%-6s %-3s  uniform exec %9llu (miss %5.1f)   "
                        "mesh exec %9llu (miss %5.1f)   delta %+5.1f%%\n",
                        name.c_str(),
                        t.consistency == Consistency::SC ? "SC" : "RC",
                        static_cast<unsigned long long>(uni.execTime),
                        uni.avgReadMissLatency,
                        static_cast<unsigned long long>(msh.execTime),
                        msh.avgReadMissLatency,
                        100.0 * (static_cast<double>(msh.execTime) -
                                 static_cast<double>(uni.execTime)) /
                            static_cast<double>(uni.execTime));
        }
    }
    std::printf(
        "\nMesh parameters (base 6 + 7/hop) average out near the "
        "paper's uniform 20-cycle\nhop for random traffic, so round-"
        "robin-placed data (MP3D cells, PTHOR nets)\nmoves little; "
        "workloads whose communication has locality structure shift "
        "more.\n");
    return 0;
}
