/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary runs the paper's three benchmarks (MP3D, LU, PTHOR at
 * their Section 2 data-set sizes) under a set of technique
 * configurations and prints the corresponding table or figure in the
 * paper's normalized format, next to the paper's published values where
 * we have them. Independent (workload x technique) points execute
 * concurrently through the RunBatch thread pool; results are
 * bit-identical at any job count.
 *
 * Environment knobs (each read once per process):
 *   DASHSIM_QUICK=1    scaled-down test data sets (smoke testing)
 *   DASHSIM_JOBS=N     worker threads (default: hardware concurrency)
 *   DASHSIM_NO_CSV=1   suppress CSV emission
 *   DASHSIM_CSV_DIR=d  CSV output directory (default ./bench_csv)
 */

#ifndef BENCH_COMMON_HH
#define BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "core/report.hh"
#include "sim/logging.hh"

namespace benchutil {

using namespace dashsim;

inline bool
quickMode()
{
    static const bool quick = [] {
        const char *q = std::getenv("DASHSIM_QUICK");
        return q && q[0] == '1';
    }();
    return quick;
}

inline std::vector<std::pair<std::string, WorkloadFactory>>
workloads()
{
    return quickMode() ? testWorkloads() : paperWorkloads();
}

/**
 * Drain one batch outcome: flush its buffered log, die with context on
 * a failed point, and hand back the result.
 */
inline RunResult
takeResult(RunOutcome &o)
{
    if (!o.log.empty())
        std::fputs(o.log.c_str(), stderr);
    fatal_if(!o.ok, "run '%s' failed: %s", o.label.c_str(),
             o.error.c_str());
    return std::move(o.result);
}

/** Run one app under several techniques; first entry is the baseline. */
inline std::vector<BreakdownRow>
runSeries(const WorkloadFactory &factory,
          const std::vector<std::pair<std::string, Technique>> &configs)
{
    RunBatch batch;
    for (const auto &[label, t] : configs)
        batch.add(factory, t, {}, label);
    auto outcomes = batch.run();

    std::vector<BreakdownRow> rows;
    rows.reserve(outcomes.size());
    for (auto &o : outcomes)
        rows.push_back({o.label, takeResult(o)});
    return rows;
}

/** Directory CSV series land in (created on first use). */
inline const std::string &
csvDir()
{
    static const std::string dir = [] {
        const char *d = std::getenv("DASHSIM_CSV_DIR");
        return std::string(d && d[0] ? d : "bench_csv");
    }();
    return dir;
}

/**
 * Also drop the series as CSV under csvDir() for plotting; set
 * DASHSIM_NO_CSV=1 to suppress or DASHSIM_CSV_DIR to redirect.
 */
inline void
emitCsv(const std::string &file, const std::string &title,
        const std::vector<BreakdownRow> &rows)
{
    static const bool suppressed = [] {
        const char *no = std::getenv("DASHSIM_NO_CSV");
        return no && no[0] == '1';
    }();
    if (suppressed)
        return;
    std::error_code ec;
    std::filesystem::create_directories(csvDir(), ec);
    if (ec) {
        warn("cannot create %s: %s", csvDir().c_str(),
             ec.message().c_str());
        return;
    }
    writeCsv(csvDir() + "/" + file, title, rows);
}

/** "paper X / measured Y" line for a headline speedup. */
inline void
printHeadline(const char *what, double paper, double measured)
{
    std::printf("  %-44s %s\n", what,
                paperVsMeasured(paper, measured).c_str());
}

inline void
printRunHeader(const char *title)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s%s\n", title,
                quickMode() ? "   [QUICK data sets]" : "");
    std::printf("==================================================="
                "=========================\n\n");
}

} // namespace benchutil

#endif // BENCH_COMMON_HH
