/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary runs the paper's three benchmarks (MP3D, LU, PTHOR at
 * their Section 2 data-set sizes) under a set of technique
 * configurations and prints the corresponding table or figure in the
 * paper's normalized format, next to the paper's published values where
 * we have them. Set DASHSIM_QUICK=1 in the environment to run the
 * scaled-down test data sets instead (useful for smoke testing).
 */

#ifndef BENCH_COMMON_HH
#define BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "core/report.hh"

namespace benchutil {

using namespace dashsim;

inline bool
quickMode()
{
    const char *q = std::getenv("DASHSIM_QUICK");
    return q && q[0] == '1';
}

inline std::vector<std::pair<std::string, WorkloadFactory>>
workloads()
{
    return quickMode() ? testWorkloads() : paperWorkloads();
}

/** Run one app under several techniques; first entry is the baseline. */
inline std::vector<BreakdownRow>
runSeries(const WorkloadFactory &factory,
          const std::vector<std::pair<std::string, Technique>> &configs)
{
    std::vector<BreakdownRow> rows;
    rows.reserve(configs.size());
    for (const auto &[label, t] : configs)
        rows.push_back({label, runExperiment(factory, t)});
    return rows;
}

/**
 * Also drop the series as CSV under ./bench_csv/ for plotting; set
 * DASHSIM_NO_CSV=1 to suppress.
 */
inline void
emitCsv(const std::string &file, const std::string &title,
        const std::vector<BreakdownRow> &rows)
{
    const char *no = std::getenv("DASHSIM_NO_CSV");
    if (no && no[0] == '1')
        return;
    (void)std::system("mkdir -p bench_csv");
    writeCsv("bench_csv/" + file, title, rows);
}

/** "paper X / measured Y" line for a headline speedup. */
inline void
printHeadline(const char *what, double paper, double measured)
{
    std::printf("  %-44s %s\n", what,
                paperVsMeasured(paper, measured).c_str());
}

inline void
printRunHeader(const char *title)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s%s\n", title,
                quickMode() ? "   [QUICK data sets]" : "");
    std::printf("==================================================="
                "=========================\n\n");
}

} // namespace benchutil

#endif // BENCH_COMMON_HH
