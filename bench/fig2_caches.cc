/**
 * @file
 * Figure 2: effect of caching shared data. For each application, run
 * with shared data uncached (the baseline bar, normalized to 100) and
 * with hardware coherent caches, under sequential consistency, and
 * print the busy / read / write / sync breakdown plus the Section 3
 * shared-reference hit rates.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Figure 2: Effect of caching shared data");

    // Paper's cached-bar totals (uncached = 100).
    const double paper_total[3] = {45.2, 36.6, 41.5};
    int i = 0;
    for (auto &[name, factory] : workloads()) {
        auto rows = runSeries(factory, {
            {"No Cache", Technique::noCache()},
            {"Cache", Technique::sc()},
        });
        printBreakdown(std::cout, name + " (Figure 2)", rows, 0, false);
        emitCsv(name + "_fig2.csv", name + " fig2", rows);

        const RunResult &cached = rows[1].result;
        printHeadline("speedup from coherent caches",
                      100.0 / paper_total[i],
                      speedup(cached, rows[0].result));
        std::printf("  shared-read hit rate  %5.1f%%  "
                    "(paper: %s)\n", cached.readHitPct,
                    i == 0 ? "80%" : i == 1 ? "66%" : "77%");
        std::printf("  shared-write hit rate %5.1f%%  "
                    "(paper: %s)\n", cached.writeHitPct,
                    i == 0 ? "75%" : i == 1 ? "97%" : "47%");
        std::printf("  processor utilization %5.1f%%  (paper: %s)\n\n",
                    100.0 * cached.utilization(),
                    i == 0 ? "~17%" : i == 1 ? "~26%" : "~16%");
        ++i;
    }
    return 0;
}
