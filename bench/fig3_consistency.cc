/**
 * @file
 * Figure 3: effect of relaxing the consistency model. Each application
 * runs under sequential consistency (normalized to 100) and under
 * release consistency; RC should remove all write-miss stall time and
 * reduce synchronization time.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Figure 3: Effect of relaxing the consistency model");

    const double paper_speedup[3] = {1.5, 1.1, 1.4};
    int i = 0;
    for (auto &[name, factory] : workloads()) {
        auto rows = runSeries(factory, {
            {"SC", Technique::sc()},
            {"RC", Technique::rc()},
        });
        printBreakdown(std::cout, name + " (Figure 3)", rows, 0, false);
        emitCsv(name + "_fig3.csv", name + " fig3", rows);

        printHeadline("RC speedup over SC", paper_speedup[i],
                      speedup(rows[1].result, rows[0].result));
        std::printf("  RC write stall: %.1f%% of execution "
                    "(paper: 0%%)\n\n",
                    normalizedBucket(rows[1].result, Bucket::Write,
                                     rows[1].result));
        ++i;
    }
    std::printf("Expected shape: RC removes the write-miss section "
                "entirely for every\napplication; the gain is largest "
                "where write stalls dominated under SC\n(MP3D), small "
                "where writes were already cheap (LU).\n");
    return 0;
}
