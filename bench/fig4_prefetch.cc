/**
 * @file
 * Figure 4: effect of software-controlled non-binding prefetching,
 * without and with prefetch, under both SC and RC. A new "prefetch
 * overhead" section appears in the bars (extra instructions, buffer
 * stalls, and primary-cache fill stalls).
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Figure 4: Effect of prefetching");

    // Paper: combined RC+PF speedup over plain SC.
    const double paper_rcpf[3] = {2.3, 1.6, 1.6};
    // Paper: SC+PF bar totals (SC = 100): 62.4 / 61.5 / 71.9.
    const double paper_scpf[3] = {100.0 / 62.4, 100.0 / 61.5,
                                  100.0 / 71.9};

    int i = 0;
    for (auto &[name, factory] : workloads()) {
        auto rows = runSeries(factory, {
            {"Normal SC", Technique::sc()},
            {"Prefetch SC", Technique::scPrefetch()},
            {"Normal RC", Technique::rc()},
            {"Prefetch RC", Technique::rcPrefetch()},
        });
        printBreakdown(std::cout, name + " (Figure 4)", rows, 0, false);
        emitCsv(name + "_fig4.csv", name + " fig4", rows);

        printHeadline("SC+PF speedup over SC", paper_scpf[i],
                      speedup(rows[1].result, rows[0].result));
        printHeadline("RC+PF speedup over SC", paper_rcpf[i],
                      speedup(rows[3].result, rows[0].result));

        const RunResult &pf = rows[3].result;
        double coverage =
            pf.prefetchesIssued
                ? 100.0 *
                      static_cast<double>(pf.prefetchesIssued -
                                          pf.prefetchesDropped) /
                      static_cast<double>(pf.prefetchesIssued)
                : 0.0;
        std::printf("  prefetches issued %llu, dropped-in-cache %llu "
                    "(%.0f%% go to memory), demand-combined %llu\n\n",
                    static_cast<unsigned long long>(pf.prefetchesIssued),
                    static_cast<unsigned long long>(pf.prefetchesDropped),
                    coverage,
                    static_cast<unsigned long long>(
                        pf.prefetchesCombined));
        ++i;
    }
    std::printf("Expected shape: prefetching cuts read stall "
                "substantially for the regular\napplications (MP3D, "
                "LU) and less for pointer-chasing PTHOR (56%% "
                "coverage in\nthe paper); LU pays a visible prefetch-"
                "overhead section; combined with RC the\nwrite stall "
                "is gone and the benefit is pure read-latency "
                "hiding.\n");
    return 0;
}
