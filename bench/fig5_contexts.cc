/**
 * @file
 * Figure 5: effect of multiple hardware contexts under sequential
 * consistency, for 1/2/4 contexts and context-switch overheads of 16
 * and 4 cycles. Bars decompose into busy / switching / all-idle /
 * no-switch time. Also prints the Section 6 run-length statistics.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader(
        "Figure 5: Effect of multiple contexts (sequential consistency)");

    // Paper bar totals (single context = 100).
    // rows: 2ctx/sw16, 4ctx/sw16, 2ctx/sw4, 4ctx/sw4
    const double paper[3][4] = {
        {83.1, 62.3, 60.2, 44.7},     // MP3D
        {119.9, 141.4, 87.5, 84.1},   // LU
        {95.9, 120.4, 92.3, 94.7},    // PTHOR
    };

    int i = 0;
    for (auto &[name, factory] : workloads()) {
        auto rows = runSeries(factory, {
            {"Single Ctxt", Technique::sc()},
            {"2 Ctxts sw16", Technique::multiContext(2, 16)},
            {"4 Ctxts sw16", Technique::multiContext(4, 16)},
            {"2 Ctxts sw4", Technique::multiContext(2, 4)},
            {"4 Ctxts sw4", Technique::multiContext(4, 4)},
        });
        printBreakdown(std::cout, name + " (Figure 5)", rows, 0, true);
        emitCsv(name + "_fig5.csv", name + " fig5", rows);

        for (int k = 0; k < 4; ++k) {
            char what[64];
            std::snprintf(what, sizeof(what),
                          "normalized time, %s", rows[k + 1].label.c_str());
            printHeadline(what, paper[i][k],
                          normalizedTime(rows[k + 1].result,
                                         rows[0].result));
        }
        const RunResult &base = rows[0].result;
        std::printf("  median run length %.0f cycles, avg read-miss "
                    "latency %.0f cycles\n",
                    base.medianRunLength, base.avgReadMissLatency);
        std::printf("  (paper: MP3D ~11 / ~50, LU ~6 / 20-27, "
                    "PTHOR ~7 / 60-80)\n");
        std::printf("  hit-rate change with 4 contexts: reads "
                    "%.0f%% -> %.0f%%, writes %.0f%% -> %.0f%%\n\n",
                    base.readHitPct, rows[4].result.readHitPct,
                    base.writeHitPct, rows[4].result.writeHitPct);
        ++i;
    }
    // Section 6.1's closing observation: "when PTHOR is run with only
    // four processors instead of sixteen, multiple contexts achieve
    // much greater gains: four context-processors run about twice as
    // fast as single-context processors."
    {
        auto wls = workloads();
        auto &pthor = wls[2].second;
        MemConfig four;
        four.numNodes = 4;
        auto rr = runExperiments(
            pthor, {Technique::sc(), Technique::multiContext(4, 4)},
            four);
        std::printf("PTHOR on 4 processors (Section 6.1):\n");
        printHeadline("4-context speedup over single context", 2.0,
                      speedup(rr[1], rr[0]));
        std::printf("\n");
    }

    std::printf("Expected shape: MP3D benefits most (favourable run-"
                "length / latency ratio);\nLU suffers destructive "
                "cache interference (hit rates drop, and the 16-cycle\n"
                "switch overhead erodes or reverses the gain); PTHOR "
                "is limited by application\nparallelism; with only 4 "
                "processors PTHOR's contexts find enough work and\n"
                "the gain roughly doubles.\n");
    return 0;
}
