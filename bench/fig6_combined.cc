/**
 * @file
 * Figure 6: combining the schemes - 1/2/4 contexts (4-cycle switch)
 * under SC, under RC, and under RC with prefetching. The headline
 * findings: RC helps multiple contexts by removing write stalls and
 * lengthening run lengths; adding prefetching to 4 contexts is often
 * counterproductive.
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Figure 6: Combining the schemes (switch = 4 cycles)");

    // Paper: overall best-combination speedups quoted in Section 7.
    const double paper_rc4[3] = {3.0, 1.7, 1.3};

    int i = 0;
    for (auto &[name, factory] : workloads()) {
        auto rows = runSeries(factory, {
            {"SC 1ctx", Technique::sc()},
            {"SC 2ctx", Technique::multiContext(2, 4)},
            {"SC 4ctx", Technique::multiContext(4, 4)},
            {"RC 1ctx", Technique::rc()},
            {"RC 2ctx", Technique::multiContext(2, 4, Consistency::RC)},
            {"RC 4ctx", Technique::multiContext(4, 4, Consistency::RC)},
            {"RC+PF 1ctx", Technique::rcPrefetch()},
            {"RC+PF 2ctx",
             Technique::multiContext(2, 4, Consistency::RC, true)},
            {"RC+PF 4ctx",
             Technique::multiContext(4, 4, Consistency::RC, true)},
        });
        printBreakdown(std::cout, name + " (Figure 6)", rows, 0, true);
        emitCsv(name + "_fig6.csv", name + " fig6", rows);

        printHeadline("RC 4ctx speedup over SC 1ctx", paper_rc4[i],
                      speedup(rows[5].result, rows[0].result));

        double rc4 = static_cast<double>(rows[5].result.execTime);
        double rc4pf = static_cast<double>(rows[8].result.execTime);
        std::printf("  adding prefetch to RC 4ctx: %+.1f%% execution "
                    "time (paper: positive, i.e. worse)\n",
                    100.0 * (rc4pf - rc4) / rc4);
        double rc1pf = static_cast<double>(rows[6].result.execTime);
        double rc2pf = static_cast<double>(rows[7].result.execTime);
        std::printf("  prefetch with 2 contexts vs 1: %+.1f%% "
                    "(paper: 2ctx+PF beats 1ctx+PF)\n\n",
                    100.0 * (rc2pf - rc1pf) / rc1pf);
        ++i;
    }
    std::printf("Expected shape: SC->RC improves every context count; "
                "fewer contexts are\nneeded under RC because run "
                "lengths grow; prefetch plus 4 contexts is\n"
                "counterproductive (both schemes chase the same "
                "latency and only add\noverhead).\n");
    return 0;
}
