/**
 * @file
 * Scaling-curve family: each of the paper's five figure comparisons
 * (caching, consistency, prefetch, multiple contexts, combined) re-run
 * as a processor-count sweep, 16 -> 64 -> 256 -> 1024, on the
 * contended 2D mesh with a scalable directory format. The paper
 * evaluates every technique at a fixed 16-processor machine; this
 * binary asks how each technique's benefit holds up as the machine -
 * and with it the invalidation fan-out, the network diameter, and the
 * directory pressure - grows.
 *
 * Workloads are weak-scaled (problem size grows with the processor
 * count) so per-processor work stays roughly constant and the curves
 * isolate the machine effects:
 *   MP3D   particles = 50 x P          (2 steps)
 *   LU     n = 48 x cbrt(P/16)         (total flops ~ linear in P)
 *   PTHOR  elements = 150 x P          (6-level circuit, 2 clocks)
 *
 * Environment knobs (on top of the common bench knobs):
 *   DASHSIM_QUICK=1            sweep {16, 64} only (smoke/CI)
 *   DASHSIM_SCALING_PROCS=a,b  explicit comma-separated sweep list
 *   DASHSIM_DIRFORMAT=...      fullbv | limptr (default) | coarse
 *
 * CSVs land under DASHSIM_CSV_DIR as <APP>_scaling_<family>.csv, one
 * row per (P, technique) point; committed reference curves live in
 * bench/data/scaling/.
 */

#include "common.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"

using namespace benchutil;

namespace {

DirFormat
dirFormatFromEnv()
{
    const char *e = std::getenv("DASHSIM_DIRFORMAT");
    if (!e || !e[0] || std::strcmp(e, "limptr") == 0)
        return DirFormat::LimitedPointer;
    if (std::strcmp(e, "fullbv") == 0)
        return DirFormat::FullBitVector;
    if (std::strcmp(e, "coarse") == 0)
        return DirFormat::CoarseVector;
    fatal("DASHSIM_DIRFORMAT must be fullbv, limptr, or coarse (got %s)",
          e);
}

const char *
dirFormatName(DirFormat f)
{
    switch (f) {
      case DirFormat::FullBitVector:
        return "full-bit-vector";
      case DirFormat::LimitedPointer:
        return "limited-pointer";
      case DirFormat::CoarseVector:
        return "coarse-vector";
    }
    return "?";
}

std::vector<std::uint32_t>
procCounts()
{
    if (const char *e = std::getenv("DASHSIM_SCALING_PROCS")) {
        std::vector<std::uint32_t> out;
        const char *p = e;
        while (*p) {
            char *end = nullptr;
            long v = std::strtol(p, &end, 10);
            fatal_if(end == p || v <= 0,
                     "bad DASHSIM_SCALING_PROCS entry near '%s'", p);
            out.push_back(static_cast<std::uint32_t>(v));
            p = (*end == ',') ? end + 1 : end;
        }
        fatal_if(out.empty(), "empty DASHSIM_SCALING_PROCS");
        return out;
    }
    if (quickMode())
        return {16, 64};
    return {16, 64, 256, 1024};
}

/**
 * Weak-scaled workload for @p procs processors running @p ctx_per_proc
 * hardware contexts each (families that compare context counts size
 * the workload for their largest machine so every technique in the
 * family runs the identical program).
 */
WorkloadFactory
scaledWorkload(const std::string &name, std::uint32_t procs,
               std::uint32_t ctx_per_proc)
{
    if (name == "MP3D") {
        const std::uint32_t actors = procs * ctx_per_proc;
        return [procs, actors] {
            Mp3dConfig c;
            c.particles = 50 * procs;
            // Scale the space with the *actor* count (procs x
            // contexts), not just the node count: the rate of MP3D's
            // tolerated statistical lost-updates on the unlocked
            // per-cell counters grows with how many actors can
            // collide on a cell concurrently, so constant
            // actors-per-cell keeps the loss rate inside the
            // benchmark's conservation tolerance at every sweep
            // point.
            c.cellsZ = std::max(1u, (7 * actors + 15) / 16);
            c.steps = 2;
            return std::make_unique<Mp3d>(c);
        };
    }
    if (name == "LU") {
        return [procs] {
            LuConfig c;
            c.n = static_cast<std::uint32_t>(
                std::lround(48.0 * std::cbrt(procs / 16.0)));
            return std::make_unique<Lu>(c);
        };
    }
    fatal_if(name != "PTHOR", "unknown scaling workload '%s'",
             name.c_str());
    return [procs] {
        PthorConfig c;
        c.elements = 150 * procs;
        c.flipflops = c.elements / 10;
        c.primaryInputs = 32;
        c.levels = 6;
        c.clockCycles = 2;
        return std::make_unique<Pthor>(c);
    };
}

struct Family
{
    const char *key;      ///< CSV suffix
    const char *title;    ///< figure being scaled
    std::uint32_t ctxPerProc; ///< largest context count in the family
    std::vector<std::pair<std::string, Technique>> techniques;
};

} // namespace

int
main()
{
    const DirFormat format = dirFormatFromEnv();
    const std::vector<std::uint32_t> procs = procCounts();

    printRunHeader("Scaling curves: Figures 2-6 from 16 to 1024 "
                   "processors");
    std::printf("directory format: %s, contended 2D mesh\n\n",
                dirFormatName(format));

    const Family families[] = {
        {"fig2", "Figure 2 (caching)", 1,
         {{"NoCache", Technique::noCache()}, {"SC", Technique::sc()}}},
        {"fig3", "Figure 3 (consistency)", 1,
         {{"SC", Technique::sc()}, {"RC", Technique::rc()}}},
        {"fig4", "Figure 4 (prefetch)", 1,
         {{"SC", Technique::sc()}, {"SC+PF", Technique::scPrefetch()}}},
        {"fig5", "Figure 5 (multiple contexts)", 4,
         {{"SC", Technique::sc()},
          {"SC 4ctx/sw4", Technique::multiContext(4, 4)}}},
        {"fig6", "Figure 6 (combined)", 4,
         {{"RC", Technique::rc()},
          {"RC+PF 4ctx/sw4",
           Technique::multiContext(4, 4, Consistency::RC, true)}}},
    };

    for (auto &[app, unused_factory] : workloads()) {
        (void)unused_factory; // replaced by the weak-scaled factories
        for (const Family &fam : families) {
            RunBatch batch;
            for (std::uint32_t p : procs) {
                for (const auto &[tname, t] : fam.techniques) {
                    RunPoint pt;
                    pt.factory = scaledWorkload(app, p, fam.ctxPerProc);
                    pt.technique = t;
                    pt.label = "P" + std::to_string(p) + "/" + tname;
                    pt.configure = [p, format](MachineConfig &cfg) {
                        cfg.mem.numNodes = p;
                        cfg.mem.lat.mesh = true;
                        cfg.mem.dirFormat = format;
                    };
                    batch.add(std::move(pt));
                }
            }

            std::vector<BreakdownRow> rows;
            for (auto &o : batch.run())
                rows.push_back({o.label, takeResult(o)});

            std::printf("%s - %s\n", app.c_str(), fam.title);
            std::printf("  %-20s %14s %10s\n", "point", "exec cycles",
                        "speedup");
            const std::size_t per_p = fam.techniques.size();
            for (std::size_t i = 0; i < rows.size(); ++i) {
                // Speedup of each technique over the first technique at
                // the same processor count (the per-P baseline bar).
                const RunResult &base =
                    rows[i - i % per_p].result;
                std::printf("  %-20s %14llu %9.2fx\n",
                            rows[i].label.c_str(),
                            static_cast<unsigned long long>(
                                rows[i].result.execTime),
                            speedup(rows[i].result, base));
            }
            std::printf("\n");
            emitCsv(app + "_scaling_" + fam.key + ".csv",
                    app + " scaling " + fam.key, rows);
        }
    }
    return 0;
}
