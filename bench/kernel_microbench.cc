/**
 * @file
 * Perf-observability baseline for the simulator's inner loop.
 *
 * Unlike the figure/table binaries (which measure the *simulated*
 * machine), this binary measures the *simulator itself*: events/sec and
 * ns/event through the EventQueue kernel, on synthetic event storms and
 * on the three quick app grids. It prints a human-readable table and
 * emits BENCH_kernel.json so the perf trajectory of the kernel is
 * recorded across PRs (docs/PERF.md explains the methodology and how
 * to read the JSON).
 *
 * Environment knobs:
 *   DASHSIM_KMB_EVENTS=N   target event count per synthetic storm
 *                          (default 4000000)
 *   DASHSIM_KMB_REPS=N     repetitions per measurement, best-of (3)
 *   DASHSIM_BENCH_JSON=f   JSON output path (default BENCH_kernel.json;
 *                          empty string suppresses the file)
 *
 * Synthetic storms are deterministic (sim/random.hh xoshiro), so two
 * builds measure exactly the same event sequence; only the wall clock
 * differs.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "core/shard.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"
#include "sim/random.hh"

using namespace dashsim;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t
envCount(const char *name, std::uint64_t dflt)
{
    const char *e = std::getenv(name);
    if (!e || !e[0])
        return dflt;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(e, &end, 10);
    return (end && *end == '\0' && v > 0) ? v : dflt;
}

struct Measurement
{
    std::string name;
    std::uint64_t events = 0;
    double seconds = 0.0;

    double eventsPerSec() const { return events / seconds; }
    double nsPerEvent() const { return 1e9 * seconds / events; }
};

/**
 * Self-rescheduling churn: a steady-state population of events, each of
 * which reschedules itself at a pseudo-random small delay. This is the
 * shape of the simulator's inner loop (pop-min, run, push), and the
 * callback deliberately captures ~40 bytes — the size class of the real
 * memory-system completion callbacks (this + line + node + flags),
 * which is what the queue's inline-callback storage is sized for.
 */
namespace churn {

struct State
{
    EventQueue *eq;
    Rng *rng;
    std::uint64_t *remaining;
    std::uint64_t *sink;
};

/** One self-rescheduling event. 48 bytes: the capture size class of
 *  the real memory-system completion callbacks. */
struct Event
{
    State s;
    std::uint64_t salt;
    std::uint64_t pad;

    void
    operator()() const
    {
        *s.sink += salt + pad;
        if (*s.remaining == 0)
            return;
        --*s.remaining;
        Event next{s, s.rng->below(97) + 1, salt};
        s.eq->schedule(static_cast<Tick>(next.salt), next);
    }
};

} // namespace churn

Measurement
stormChurn(std::uint64_t total_events)
{
    constexpr std::uint64_t population = 1024;
    EventQueue eq;
    Rng rng(0x5eed);
    std::uint64_t remaining = total_events;
    std::uint64_t sink = 0;
    churn::State st{&eq, &rng, &remaining, &sink};

    Measurement m{"storm_churn", total_events, 0.0};
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < population; ++i) {
        churn::Event e{st, rng.below(97) + 1, i};
        eq.schedule(static_cast<Tick>(e.salt), e);
    }
    eq.run();
    m.seconds = secondsSince(t0);
    m.events = eq.executed();
    // Defeat dead-code elimination of the payload work.
    if (sink == 0xdeadbeef)
        std::fprintf(stderr, "impossible\n");
    return m;
}

/**
 * Fill-drain bursts: schedule a batch of events at scattered future
 * ticks, then drain the queue. Exercises heap growth, push-heavy and
 * pop-heavy phases, and FIFO tie-breaking (1/8 of ticks collide).
 */
Measurement
stormBurst(std::uint64_t total_events)
{
    constexpr std::uint64_t batch = 8192;
    const std::uint64_t rounds = total_events / batch;
    EventQueue eq;
    Rng rng(0xb427);
    std::uint64_t sink = 0;

    Measurement m{"storm_burst", rounds * batch, 0.0};
    auto t0 = Clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint64_t i = 0; i < batch; ++i) {
            Tick when = static_cast<Tick>(rng.below(batch));
            std::uint64_t salt = rng.next();
            eq.schedule(when, [&sink, salt] { sink ^= salt; });
        }
        eq.run();
    }
    m.seconds = secondsSince(t0);
    if (sink == 0xdeadbeef)
        std::fprintf(stderr, "impossible\n");
    return m;
}

/**
 * Cross-shard message storm through the conservative PDES kernel
 * (sim/pdes.hh). A fixed total event population is split evenly across
 * DASHSIM_SHARDS shards; every event does callback-sized payload work
 * and reschedules locally, and one in sixteen instead posts itself to a
 * pseudo-random shard at the lookahead horizon — the message pattern
 * the window/mailbox machinery exists for. The total workload does not
 * depend on the shard count, so BENCH_kernel.json files written at
 * different DASHSIM_SHARDS values are directly comparable: shard 1 is
 * the serial baseline (same algorithm, calling thread only), shard N
 * measures the parallel speedup.
 */
namespace pdes_storm {

constexpr Tick kLookahead = 64;
constexpr std::uint64_t kPopulation = 65536;

struct alignas(64) Shard
{
    ShardedKernel *k = nullptr;
    Shard *all = nullptr;
    std::uint32_t id = 0;
    std::uint32_t shards = 1;
    Rng rng{0};
    std::uint64_t remaining = 0;
    std::uint64_t sink = 0;
};

void step(Shard *s, std::uint64_t salt);

/** One storm event; runs on (and mutates only) its home shard. */
struct Event
{
    Shard *s;
    std::uint64_t salt;
    void operator()() const { step(s, salt); }
};

void
step(Shard *s, std::uint64_t salt)
{
    // Callback-sized payload: a short integer mix, the cost class of a
    // real fill-completion callback.
    std::uint64_t x = salt ^ s->sink;
    for (int i = 0; i < 8; ++i)
        x = (x ^ (x >> 29)) * 0x94d049bb133111ebULL;
    s->sink += x;
    if (s->remaining == 0)
        return;
    --s->remaining;
    std::uint64_t r = s->rng.next();
    if ((r & 15) == 0) {
        // Cross-shard hop (self-posts take the same mailbox path, so
        // the shard-1 baseline exercises identical machinery).
        std::uint32_t dst =
            static_cast<std::uint32_t>((s->id + 1 + (r >> 4) % s->shards) %
                                       s->shards);
        Tick when = s->k->now(s->id) + kLookahead + (r >> 8) % 16;
        s->k->post(s->id, dst, when, Event{&s->all[dst], x});
    } else {
        s->k->schedule(s->id, 1 + (r >> 4) % 8, Event{s, x});
    }
}

} // namespace pdes_storm

Measurement
stormPdesWindow(std::uint64_t total_events)
{
    const std::uint32_t shards = shardsFromEnv();
    ShardedKernel::Config cfg;
    cfg.shards = shards;
    cfg.lookahead = pdes_storm::kLookahead;
    // Worst case, every post of a window lands in one mailbox (all
    // traffic is self-posts when shards == 1), so size for the whole
    // per-shard population with headroom.
    cfg.mailboxCapacity = 2 * pdes_storm::kPopulation / shards;
    ShardedKernel k(cfg);

    std::vector<pdes_storm::Shard> st(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        st[s].k = &k;
        st[s].all = st.data();
        st[s].id = s;
        st[s].shards = shards;
        st[s].rng = Rng(0x9d35 + s);
        st[s].remaining = total_events / shards;
    }

    Measurement m{"pdes_window", 0, 0.0};
    auto t0 = Clock::now();
    for (std::uint32_t s = 0; s < shards; ++s) {
        for (std::uint64_t i = 0; i < pdes_storm::kPopulation / shards; ++i)
            k.schedule(s, 1 + st[s].rng.below(8),
                       pdes_storm::Event{&st[s], i});
    }
    k.run();
    m.seconds = secondsSince(t0);
    m.events = k.executed();
    std::uint64_t sink = 0;
    for (const auto &s : st)
        sink += s.sink;
    if (sink == 0xdeadbeef)
        std::fprintf(stderr, "impossible\n");
    return m;
}

/**
 * End-to-end kernel throughput on a real workload: one quick app grid
 * point (RC technique, checkers off), measured as simulator events per
 * wall-clock second. This includes cache/directory/resource work per
 * event, so it tracks the whole hot path, not just the queue.
 */
Measurement
gridRun(const std::string &app)
{
    WorkloadFactory factory = testWorkload(app);
    MachineConfig cfg = makeMachineConfig(Technique::rc());
    cfg.check.coherence = false;
    cfg.check.race = false;

    Machine machine(cfg);
    auto w = factory();
    Measurement m{"grid_" + app, 0, 0.0};
    auto t0 = Clock::now();
    machine.run(*w);
    m.seconds = secondsSince(t0);
    m.events = machine.eventQueue().executed();
    return m;
}

/**
 * Fast-path on/off pair on one quick app grid point. Same machine as
 * gridRun() but with the conservation checker also off (the checkers
 * are observability consumers, and any of them disables the
 * direct-execution fast path), measured once per knob setting. The
 * results are byte-identical across the knob (fastpath_diff_test), so
 * the pair isolates the pure simulator-side cost/benefit.
 */
Measurement
fastpathRun(const std::string &app, bool fast, std::uint64_t *window_hits,
            std::uint64_t *shared_reads)
{
    WorkloadFactory factory = testWorkload(app);
    MachineConfig cfg = makeMachineConfig(Technique::rc());
    cfg.check.coherence = false;
    cfg.check.race = false;
    cfg.check.conservation = false;
    cfg.cpu.fastPath = fast;

    Machine machine(cfg);
    auto w = factory();
    Measurement m{std::string("fastpath_") + (fast ? "on_" : "off_") + app,
                  0, 0.0};
    auto t0 = Clock::now();
    RunResult r = machine.run(*w);
    m.seconds = secondsSince(t0);
    m.events = machine.eventQueue().executed();
    if (window_hits)
        *window_hits = machine.memSystem().windowHits();
    if (shared_reads)
        *shared_reads = r.sharedReads;
    return m;
}

Measurement
bestOfFastpath(unsigned reps, const std::string &app, bool fast,
               std::uint64_t *window_hits = nullptr,
               std::uint64_t *shared_reads = nullptr)
{
    Measurement best = fastpathRun(app, fast, window_hits, shared_reads);
    for (unsigned r = 1; r < reps; ++r) {
        Measurement next = fastpathRun(app, fast, nullptr, nullptr);
        if (next.seconds < best.seconds)
            best = next;
    }
    return best;
}

/**
 * Contended-mesh on/off pair on one quick app grid point. The mesh
 * adds per-hop link calendars to every cross-node message; this pair
 * watches the simulator-side cost of those extra PathWalker stages
 * (the ctor-precomputed mesh dimensions keep per-call work flat).
 * Unlike the fastpath pair the two runs simulate *different* machines
 * (the mesh is a timing model, not an implementation knob), so only
 * wall-clock per event is comparable - and it should stay within noise
 * of the uniform-network run.
 */
Measurement
meshRun(const std::string &app, bool mesh)
{
    WorkloadFactory factory = testWorkload(app);
    MachineConfig cfg = makeMachineConfig(Technique::rc());
    cfg.check.coherence = false;
    cfg.check.race = false;
    cfg.check.conservation = false;
    cfg.mem.lat.mesh = mesh;

    Machine machine(cfg);
    auto w = factory();
    Measurement m{std::string("mesh_") + (mesh ? "on_" : "off_") + app, 0,
                  0.0};
    auto t0 = Clock::now();
    machine.run(*w);
    m.seconds = secondsSince(t0);
    m.events = machine.eventQueue().executed();
    return m;
}

Measurement
bestOfMesh(unsigned reps, const std::string &app, bool mesh)
{
    Measurement best = meshRun(app, mesh);
    for (unsigned r = 1; r < reps; ++r) {
        Measurement next = meshRun(app, mesh);
        if (next.seconds < best.seconds)
            best = next;
    }
    return best;
}

Measurement
bestOf(unsigned reps, Measurement (*fn)(std::uint64_t), std::uint64_t n)
{
    Measurement best = fn(n);
    for (unsigned r = 1; r < reps; ++r) {
        Measurement next = fn(n);
        if (next.seconds < best.seconds)
            best = next;
    }
    return best;
}

Measurement
bestOfGrid(unsigned reps, const std::string &app)
{
    Measurement best = gridRun(app);
    for (unsigned r = 1; r < reps; ++r) {
        Measurement next = gridRun(app);
        if (next.seconds < best.seconds)
            best = next;
    }
    return best;
}

void
writeJson(const std::vector<Measurement> &ms, std::uint64_t events,
          unsigned reps, double fastpath_hit_fraction)
{
    const char *env = std::getenv("DASHSIM_BENCH_JSON");
    std::string path = env ? env : "BENCH_kernel.json";
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "kernel_microbench: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema\": \"dashsim-kernel-bench-1\",\n");
    std::fprintf(f,
                 "  \"meta\": {\"shards\": %u, \"host_threads\": %u, "
                 "\"events_per_storm\": %llu, \"reps\": %u, "
                 "\"fastpath_hit_fraction\": %.4f},\n",
                 shardsFromEnv(), std::thread::hardware_concurrency(),
                 static_cast<unsigned long long>(events), reps,
                 fastpath_hit_fraction);
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < ms.size(); ++i) {
        const Measurement &m = ms[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"events\": %llu, "
                     "\"seconds\": %.6f, \"events_per_sec\": %.1f, "
                     "\"ns_per_event\": %.2f}%s\n",
                     m.name.c_str(),
                     static_cast<unsigned long long>(m.events), m.seconds,
                     m.eventsPerSec(), m.nsPerEvent(),
                     i + 1 < ms.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main()
{
    const std::uint64_t events = envCount("DASHSIM_KMB_EVENTS", 4000000);
    const unsigned reps =
        static_cast<unsigned>(envCount("DASHSIM_KMB_REPS", 3));

    std::printf("dashsim kernel microbenchmark "
                "(%llu events/storm, best of %u, %u shard(s))\n\n",
                static_cast<unsigned long long>(events), reps,
                shardsFromEnv());
    std::printf("%-16s %12s %10s %14s %10s\n", "workload", "events",
                "seconds", "events/sec", "ns/event");

    std::vector<Measurement> ms;
    ms.push_back(bestOf(reps, stormChurn, events));
    ms.push_back(bestOf(reps, stormBurst, events));
    ms.push_back(bestOf(reps, stormPdesWindow, events));
    for (const char *app : {"MP3D", "LU", "PTHOR"})
        ms.push_back(bestOfGrid(reps, app));

    // fastpath_grid: on/off pairs on each quick app. Hit rate is
    // window-validated reads (which skip the cache probe and stat
    // update entirely) over all shared reads; results are byte-
    // identical across the knob, so the pair isolates the pure
    // simulator-side effect.
    std::uint64_t fp_hits = 0, fp_reads = 0;
    for (const char *app : {"MP3D", "LU", "PTHOR"}) {
        std::uint64_t hits = 0, reads = 0;
        ms.push_back(bestOfFastpath(reps, app, false));
        ms.push_back(bestOfFastpath(reps, app, true, &hits, &reads));
        fp_hits += hits;
        fp_reads += reads;
    }
    const double fp_hit_fraction =
        fp_reads ? static_cast<double>(fp_hits) / fp_reads : 0.0;

    // mesh_grid: uniform-network vs contended-mesh pair per quick app.
    // The ns/event columns should sit within noise of each other; a
    // gap means the per-hop link stages got expensive.
    for (const char *app : {"MP3D", "LU", "PTHOR"}) {
        ms.push_back(bestOfMesh(reps, app, false));
        ms.push_back(bestOfMesh(reps, app, true));
    }

    for (const Measurement &m : ms)
        std::printf("%-16s %12llu %10.3f %14.0f %10.2f\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.events), m.seconds,
                    m.eventsPerSec(), m.nsPerEvent());
    std::printf("\nfastpath_hit_fraction (window-validated reads / "
                "shared reads): %.4f\n", fp_hit_fraction);

    writeJson(ms, events, reps, fp_hit_fraction);
    return 0;
}
