/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's own primitives:
 * event-queue throughput, cache probes, directory-protocol walks, and
 * end-to-end simulated-cycles-per-host-second on a small workload.
 * These measure the *simulator*, not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include "apps/lu.hh"
#include "core/experiment.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace dashsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_PrimaryCacheProbe(benchmark::State &state)
{
    PrimaryCache pc(CacheGeometry{2 * 1024});
    Rng rng(1);
    for (int i = 0; i < 128; ++i)
        pc.fill(rng.below(1 << 20) << lineShift);
    std::uint64_t hits = 0;
    for (auto _ : state)
        hits += pc.probe((rng.below(1 << 20)) << lineShift) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_PrimaryCacheProbe);

void
BM_DirectoryReadWalk(benchmark::State &state)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    MemorySystem ms(eq, mem, cfg);
    Addr base = mem.allocRoundRobin(1 << 20);
    Rng rng(2);
    Tick t = 0;
    for (auto _ : state) {
        Addr a = base + (rng.below((1 << 20) / 16) << lineShift);
        auto o = ms.read(static_cast<NodeId>(rng.below(16)), a, t);
        benchmark::DoNotOptimize(o.complete);
        t += 4;
        if (eq.pending() > 100000) {
            state.PauseTiming();
            eq.run();
            t = eq.now();
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_DirectoryReadWalk);

void
BM_SimulatedCyclesPerSecond(benchmark::State &state)
{
    std::uint64_t simulated = 0;
    for (auto _ : state) {
        LuConfig lc;
        lc.n = 48;
        Machine m(makeMachineConfig(Technique::rc()));
        Lu w(lc);
        RunResult r = m.run(w);
        simulated += r.execTime;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedCyclesPerSecond)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
