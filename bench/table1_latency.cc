/**
 * @file
 * Table 1: latency for various memory system operations in processor
 * clock cycles, measured with directed single-access probes on an
 * otherwise idle machine. The simulator is required to reproduce the
 * paper's numbers exactly; any mismatch exits nonzero.
 */

#include <cstdio>
#include <cstdlib>

#include "mem/mem_system.hh"
#include "sim/event_queue.hh"

using namespace dashsim;

namespace {

int failures = 0;

void
row(const char *name, Tick measured, Tick paper)
{
    std::printf("  %-46s %4llu   (paper: %4llu)%s\n", name,
                static_cast<unsigned long long>(measured),
                static_cast<unsigned long long>(paper),
                measured == paper ? "" : "  << MISMATCH");
    if (measured != paper)
        ++failures;
}

/** Fresh machine for each probe so no state leaks between rows. */
struct Probe
{
    EventQueue eq;
    SharedMemory mem;
    MemConfig cfg;
    MemorySystem ms;
    Addr local, home, remote;

    Probe()
        : mem(16), ms(eq, mem, cfg),
          local(mem.allocLocal(256, 0)),    // home node 0 (requester)
          home(mem.allocLocal(256, 4)),     // a remote home node
          remote(mem.allocLocal(256, 9))    // will be dirty in node 9
    {}

    /** Run until tick @p t so queued events settle. */
    void settle(Tick t) { eq.runUntil(t); }
};

} // namespace

int
main()
{
    std::printf("Table 1: Latency for memory system operations "
                "(pclocks, uncontended)\n");
    std::printf("-------------------------------------------------"
                "----------------------\n");
    std::printf("Read operations:\n");

    {
        // Hit in primary cache: second read of the same line.
        Probe p;
        auto o1 = p.ms.read(0, p.local, 0);
        p.settle(o1.complete + 10);
        auto o2 = p.ms.read(0, p.local, p.eq.now());
        row("Hit in Primary Cache", o2.complete - p.eq.now(), 1);
    }
    {
        // Fill from secondary: evict the primary copy with a line that
        // conflicts in the 2KB primary but not the 4KB secondary.
        Probe p;
        auto o1 = p.ms.read(0, p.local, 0);
        p.settle(o1.complete + 10);
        Addr conflict = p.local + 2048;  // same primary set
        auto o2 = p.ms.read(0, conflict, p.eq.now());
        p.settle(o2.complete + 10);
        auto o3 = p.ms.read(0, p.local, p.eq.now());
        row("Fill from Secondary Cache", o3.complete - p.eq.now(), 14);
    }
    {
        Probe p;
        auto o = p.ms.read(0, p.local, 0);
        row("Fill from Local Node", o.complete, 26);
    }
    {
        Probe p;
        auto o = p.ms.read(0, p.home, 0);
        row("Fill from Home Node (Home != Local)", o.complete, 72);
    }
    {
        // Dirty in a remote third node: node 9 writes a line homed on
        // node 4, then node 0 reads it (requester 0, home 4, owner 9).
        Probe p;
        auto w = p.ms.writeSc(9, p.home, 1, 4, 0);
        p.settle(w.complete + 10);
        Tick t0 = p.eq.now();
        auto o = p.ms.read(0, p.home, t0);
        row("Fill from Remote Node (Remote != Home != Local)",
            o.complete - t0, 90);
    }

    std::printf("Write operations:\n");
    {
        // Owned by secondary cache: write after a local write (the
        // first write acquires ownership).
        Probe p;
        auto w1 = p.ms.writeSc(0, p.local, 1, 4, 0);
        p.settle(w1.complete + 10);
        Tick t0 = p.eq.now();
        auto w2 = p.ms.writeSc(0, p.local, 2, 4, t0);
        row("Owned by Secondary Cache", w2.complete - t0, 2);
    }
    {
        Probe p;
        auto w = p.ms.writeSc(0, p.local, 1, 4, 0);
        row("Owned by Local Node", w.complete, 18);
    }
    {
        Probe p;
        auto w = p.ms.writeSc(0, p.home, 1, 4, 0);
        row("Owned in Home Node (Home != Local)", w.complete, 64);
    }
    {
        // Requester 0, home 4, dirty owner 9.
        Probe p;
        auto w1 = p.ms.writeSc(9, p.home, 1, 4, 0);
        p.settle(w1.complete + 10);
        Tick t0 = p.eq.now();
        auto w2 = p.ms.writeSc(0, p.home, 2, 4, t0);
        row("Owned in Remote Node (Remote != Home != Local)",
            w2.complete - t0, 82);
    }

    if (failures) {
        std::printf("\n%d row(s) did not match Table 1.\n", failures);
        return 1;
    }
    std::printf("\nAll rows match Table 1 exactly.\n");
    return 0;
}
