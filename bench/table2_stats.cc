/**
 * @file
 * Table 2: general statistics for the benchmarks (useful cycles, shared
 * references, synchronization counts, and shared-data size), gathered
 * from a base-configuration run (coherent caches, SC, 16 processors).
 */

#include "common.hh"

using namespace benchutil;

int
main()
{
    printRunHeader("Table 2: General statistics for the benchmarks");

    RunBatch batch;
    for (auto &[name, factory] : workloads())
        batch.add(factory, Technique::sc(), {}, name);

    std::vector<RunResult> results;
    for (auto &o : batch.run())
        results.push_back(takeResult(o));

    printTable2(std::cout, results);

    std::printf("Paper's values (16 processors, Section 2.2):\n");
    std::printf("  MP3D : useful 5774K, reads 1170K, writes 530K, "
                "locks 0, barriers 448, data 401KB\n");
    std::printf("  LU   : useful 27861K, reads 5543K, writes 2727K, "
                "locks 3184, barriers 29, data 653KB\n");
    std::printf("  PTHOR: useful 19031K, reads 3774K, writes 454K, "
                "locks 75878, barriers 2016, data 2925KB\n");
    std::printf("\nOur re-implementations reproduce the structure and "
                "data-set sizes; reference\ncounts match in ratio "
                "(reads:writes, locks per column/queue operation) "
                "rather\nthan absolutely, since the original sources "
                "are not public.\n");
    return 0;
}
