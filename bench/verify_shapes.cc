/**
 * @file
 * Executable reproduction gate: runs the key technique comparisons and
 * *asserts* the paper's qualitative findings, exiting nonzero if any
 * shape claim fails. This is the one binary to run when touching the
 * simulator to check that the reproduction still holds.
 *
 * Uses the scaled-down data sets by default so it finishes in seconds;
 * set DASHSIM_FULL=1 to assert on the paper's full data sets.
 */

#include <cstdio>
#include <cstdlib>

#include "common.hh"

using namespace benchutil;

namespace {

int failures = 0;
bool fullScale = false;

void
claim(const char *what, bool ok)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok)
        ++failures;
}

/**
 * A claim whose truth depends on the paper's full data-set sizes (the
 * multi-context interactions change when the per-process work shrinks
 * by an order of magnitude); checked only under DASHSIM_FULL=1.
 */
void
claimFullScale(const char *what, bool ok)
{
    if (!fullScale) {
        std::printf("  [skip] %s (full data sets only)\n", what);
        return;
    }
    claim(what, ok);
}

} // namespace

int
main()
{
    const char *full = std::getenv("DASHSIM_FULL");
    fullScale = full && full[0] == '1';
    auto wls = fullScale ? paperWorkloads() : testWorkloads();

    printRunHeader("Reproduction gate: the paper's shape claims");

    for (auto &[name, factory] : wls) {
        std::printf("%s:\n", name.c_str());
        auto rr = runExperiments(
            factory,
            {Technique::noCache(), Technique::sc(), Technique::rc(),
             Technique::scPrefetch(), Technique::rcPrefetch(),
             Technique::multiContext(4, 4),
             Technique::multiContext(4, 4, Consistency::RC),
             Technique::multiContext(4, 4, Consistency::RC, true)});
        RunResult &nocache = rr[0];
        RunResult &sc = rr[1];
        RunResult &rc = rr[2];
        RunResult &scpf = rr[3];
        RunResult &rcpf = rr[4];
        RunResult &mc4 = rr[5];
        RunResult &rc4 = rr[6];
        RunResult &rcpf4 = rr[7];

        // Section 3: coherent caches are a clear win.
        claim("coherent caches speed up execution",
              sc.execTime < nocache.execTime);

        // Section 4: RC removes write stall and never loses.
        claim("RC eliminates write-miss stall time",
              rc.bucket(Bucket::Write) == 0);
        claim("RC is at least as fast as SC",
              rc.execTime <= 1.02 * sc.execTime);

        // Section 5: prefetching helps under both models and raises
        // the hit rate; an overhead section appears.
        claim("prefetching helps under SC",
              scpf.execTime < 1.02 * sc.execTime);
        claim("prefetching helps under RC",
              rcpf.execTime < 1.02 * rc.execTime);
        claim("prefetching raises the read hit rate",
              rcpf.readHitPct > rc.readHitPct);
        claim("prefetch overhead is visible",
              rcpf.bucket(Bucket::PfOverhead) > 0);

        // Section 6: contexts help (somewhere between a little and a
        // lot), and combining RC with contexts is the best single
        // combination.
        claim("4 contexts do not catastrophically hurt",
              mc4.execTime < 1.3 * sc.execTime);
        claimFullScale("RC+4ctx is the best combination tested",
                       rc4.execTime <= mc4.execTime &&
                           rc4.execTime <= 1.02 * rcpf4.execTime);

        // Section 6.2: adding prefetch to 4 contexts does not help
        // (and usually hurts).
        claimFullScale("prefetch adds nothing on top of 4 contexts",
                       rcpf4.execTime >= 0.98 * rc4.execTime);
        std::printf("\n");
    }

    if (failures) {
        std::printf("%d shape claim(s) FAILED\n", failures);
        return 1;
    }
    std::printf("All shape claims hold.\n");
    return 0;
}
