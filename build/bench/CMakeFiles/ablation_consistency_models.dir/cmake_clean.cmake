file(REMOVE_RECURSE
  "CMakeFiles/ablation_consistency_models.dir/ablation_consistency_models.cc.o"
  "CMakeFiles/ablation_consistency_models.dir/ablation_consistency_models.cc.o.d"
  "ablation_consistency_models"
  "ablation_consistency_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_consistency_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
