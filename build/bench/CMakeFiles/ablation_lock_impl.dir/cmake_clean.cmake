file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_impl.dir/ablation_lock_impl.cc.o"
  "CMakeFiles/ablation_lock_impl.dir/ablation_lock_impl.cc.o.d"
  "ablation_lock_impl"
  "ablation_lock_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
