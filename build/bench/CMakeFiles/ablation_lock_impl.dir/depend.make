# Empty dependencies file for ablation_lock_impl.
# This may be replaced when dependencies are built.
