file(REMOVE_RECURSE
  "CMakeFiles/ablation_problem_size.dir/ablation_problem_size.cc.o"
  "CMakeFiles/ablation_problem_size.dir/ablation_problem_size.cc.o.d"
  "ablation_problem_size"
  "ablation_problem_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
