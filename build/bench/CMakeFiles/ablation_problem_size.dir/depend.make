# Empty dependencies file for ablation_problem_size.
# This may be replaced when dependencies are built.
