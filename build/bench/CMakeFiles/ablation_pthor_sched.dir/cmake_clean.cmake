file(REMOVE_RECURSE
  "CMakeFiles/ablation_pthor_sched.dir/ablation_pthor_sched.cc.o"
  "CMakeFiles/ablation_pthor_sched.dir/ablation_pthor_sched.cc.o.d"
  "ablation_pthor_sched"
  "ablation_pthor_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pthor_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
