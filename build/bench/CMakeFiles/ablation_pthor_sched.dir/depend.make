# Empty dependencies file for ablation_pthor_sched.
# This may be replaced when dependencies are built.
