file(REMOVE_RECURSE
  "CMakeFiles/ablation_switch_policy.dir/ablation_switch_policy.cc.o"
  "CMakeFiles/ablation_switch_policy.dir/ablation_switch_policy.cc.o.d"
  "ablation_switch_policy"
  "ablation_switch_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switch_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
