# Empty compiler generated dependencies file for ablation_switch_policy.
# This may be replaced when dependencies are built.
