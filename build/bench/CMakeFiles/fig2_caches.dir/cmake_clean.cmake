file(REMOVE_RECURSE
  "CMakeFiles/fig2_caches.dir/fig2_caches.cc.o"
  "CMakeFiles/fig2_caches.dir/fig2_caches.cc.o.d"
  "fig2_caches"
  "fig2_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
