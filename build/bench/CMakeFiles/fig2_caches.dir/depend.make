# Empty dependencies file for fig2_caches.
# This may be replaced when dependencies are built.
