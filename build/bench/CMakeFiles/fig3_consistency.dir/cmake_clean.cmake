file(REMOVE_RECURSE
  "CMakeFiles/fig3_consistency.dir/fig3_consistency.cc.o"
  "CMakeFiles/fig3_consistency.dir/fig3_consistency.cc.o.d"
  "fig3_consistency"
  "fig3_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
