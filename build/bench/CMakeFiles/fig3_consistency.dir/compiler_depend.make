# Empty compiler generated dependencies file for fig3_consistency.
# This may be replaced when dependencies are built.
