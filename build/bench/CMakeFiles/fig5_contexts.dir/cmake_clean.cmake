file(REMOVE_RECURSE
  "CMakeFiles/fig5_contexts.dir/fig5_contexts.cc.o"
  "CMakeFiles/fig5_contexts.dir/fig5_contexts.cc.o.d"
  "fig5_contexts"
  "fig5_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
