# Empty dependencies file for fig5_contexts.
# This may be replaced when dependencies are built.
