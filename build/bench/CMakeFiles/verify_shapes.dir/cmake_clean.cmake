file(REMOVE_RECURSE
  "CMakeFiles/verify_shapes.dir/verify_shapes.cc.o"
  "CMakeFiles/verify_shapes.dir/verify_shapes.cc.o.d"
  "verify_shapes"
  "verify_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
