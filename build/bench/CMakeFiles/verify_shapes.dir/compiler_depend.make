# Empty compiler generated dependencies file for verify_shapes.
# This may be replaced when dependencies are built.
