# Empty compiler generated dependencies file for technique_explorer.
# This may be replaced when dependencies are built.
