
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/lu.cc" "src/CMakeFiles/dashsim.dir/apps/lu.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/apps/lu.cc.o.d"
  "/root/repo/src/apps/mp3d.cc" "src/CMakeFiles/dashsim.dir/apps/mp3d.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/apps/mp3d.cc.o.d"
  "/root/repo/src/apps/pthor.cc" "src/CMakeFiles/dashsim.dir/apps/pthor.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/apps/pthor.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/dashsim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/inspect.cc" "src/CMakeFiles/dashsim.dir/core/inspect.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/core/inspect.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/CMakeFiles/dashsim.dir/core/machine.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/core/machine.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/dashsim.dir/core/report.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/core/report.cc.o.d"
  "/root/repo/src/cpu/processor.cc" "src/CMakeFiles/dashsim.dir/cpu/processor.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/cpu/processor.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/dashsim.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/dashsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/tango/sync.cc" "src/CMakeFiles/dashsim.dir/tango/sync.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/tango/sync.cc.o.d"
  "/root/repo/src/tango/trace.cc" "src/CMakeFiles/dashsim.dir/tango/trace.cc.o" "gcc" "src/CMakeFiles/dashsim.dir/tango/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
