file(REMOVE_RECURSE
  "CMakeFiles/dashsim.dir/apps/lu.cc.o"
  "CMakeFiles/dashsim.dir/apps/lu.cc.o.d"
  "CMakeFiles/dashsim.dir/apps/mp3d.cc.o"
  "CMakeFiles/dashsim.dir/apps/mp3d.cc.o.d"
  "CMakeFiles/dashsim.dir/apps/pthor.cc.o"
  "CMakeFiles/dashsim.dir/apps/pthor.cc.o.d"
  "CMakeFiles/dashsim.dir/core/experiment.cc.o"
  "CMakeFiles/dashsim.dir/core/experiment.cc.o.d"
  "CMakeFiles/dashsim.dir/core/inspect.cc.o"
  "CMakeFiles/dashsim.dir/core/inspect.cc.o.d"
  "CMakeFiles/dashsim.dir/core/machine.cc.o"
  "CMakeFiles/dashsim.dir/core/machine.cc.o.d"
  "CMakeFiles/dashsim.dir/core/report.cc.o"
  "CMakeFiles/dashsim.dir/core/report.cc.o.d"
  "CMakeFiles/dashsim.dir/cpu/processor.cc.o"
  "CMakeFiles/dashsim.dir/cpu/processor.cc.o.d"
  "CMakeFiles/dashsim.dir/mem/mem_system.cc.o"
  "CMakeFiles/dashsim.dir/mem/mem_system.cc.o.d"
  "CMakeFiles/dashsim.dir/sim/logging.cc.o"
  "CMakeFiles/dashsim.dir/sim/logging.cc.o.d"
  "CMakeFiles/dashsim.dir/tango/sync.cc.o"
  "CMakeFiles/dashsim.dir/tango/sync.cc.o.d"
  "CMakeFiles/dashsim.dir/tango/trace.cc.o"
  "CMakeFiles/dashsim.dir/tango/trace.cc.o.d"
  "libdashsim.a"
  "libdashsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
