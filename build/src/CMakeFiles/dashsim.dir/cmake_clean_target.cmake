file(REMOVE_RECURSE
  "libdashsim.a"
)
