file(REMOVE_RECURSE
  "CMakeFiles/app_behavior_test.dir/app_behavior_test.cc.o"
  "CMakeFiles/app_behavior_test.dir/app_behavior_test.cc.o.d"
  "app_behavior_test"
  "app_behavior_test.pdb"
  "app_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
