file(REMOVE_RECURSE
  "CMakeFiles/extension_interplay_test.dir/extension_interplay_test.cc.o"
  "CMakeFiles/extension_interplay_test.dir/extension_interplay_test.cc.o.d"
  "extension_interplay_test"
  "extension_interplay_test.pdb"
  "extension_interplay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_interplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
