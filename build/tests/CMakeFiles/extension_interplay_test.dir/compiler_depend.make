# Empty compiler generated dependencies file for extension_interplay_test.
# This may be replaced when dependencies are built.
