file(REMOVE_RECURSE
  "CMakeFiles/tango_test.dir/tango_test.cc.o"
  "CMakeFiles/tango_test.dir/tango_test.cc.o.d"
  "tango_test"
  "tango_test.pdb"
  "tango_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
