# Empty dependencies file for tango_test.
# This may be replaced when dependencies are built.
