# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/app_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/extension_interplay_test[1]_include.cmake")
include("/root/repo/build/tests/inspect_test[1]_include.cmake")
include("/root/repo/build/tests/mem_system_test[1]_include.cmake")
include("/root/repo/build/tests/processor_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/shared_memory_test[1]_include.cmake")
include("/root/repo/build/tests/sim_util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/tango_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
