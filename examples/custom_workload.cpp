/**
 * @file
 * Writing your own workload: a producer/consumer pipeline built from
 * the public API (coroutines, shared task queues, locks, barriers) and
 * evaluated under several latency-tolerating techniques.
 *
 * Stage 0 processes (producers) generate work items; stage 1 processes
 * (consumers) pop them from a shared queue, compute on shared data and
 * accumulate into a lock-protected result. The example shows how the
 * techniques interact with a pipeline-parallel (rather than
 * data-parallel) decomposition.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Pipeline : public Workload
{
  public:
    std::string name() const override { return "pipeline"; }

    void
    setup(Machine &m) override
    {
        auto &mem = m.memory();
        queue = sync::allocTaskQueue(mem, 4096, 0);
        resultLock = sync::allocLock(mem);
        result = mem.allocRoundRobin(lineBytes);
        doneFlag = mem.allocRoundRobin(lineBytes);
        producersLeft = mem.allocRoundRobin(lineBytes);
        table = mem.allocRoundRobin(tableWords * 8);
        for (std::uint32_t i = 0; i < tableWords; ++i)
            mem.store<std::uint64_t>(table + 8 * i, i * i % 97);
        mem.store<std::uint32_t>(producersLeft, 0);
    }

    SimProcess
    run(Env env) override
    {
        const unsigned pid = env.pid();
        const bool producer = pid % 2 == 0;

        if (producer) {
            co_await env.fetchAdd(producersLeft, 1);
            for (int i = 0; i < itemsPerProducer; ++i) {
                co_await env.compute(40);  // "produce" an item
                bool ok = false;
                co_await sync::push(
                    env, queue,
                    static_cast<std::uint64_t>(pid * 1000 + i), ok);
                if (!ok)
                    fatal("pipeline queue overflow");
            }
            // Last producer to finish raises the done flag.
            auto left = co_await env.fetchAdd(producersLeft,
                                              0xFFFFFFFFu);  // -1
            if (left == 1)
                co_await env.writeRelease<std::uint32_t>(doneFlag, 1);
        } else {
            while (true) {
                std::uint64_t item = 0;
                bool ok = false;
                co_await sync::pop(env, queue, item, ok);
                if (!ok) {
                    auto done =
                        co_await env.read<std::uint32_t>(doneFlag);
                    std::uint32_t len = 0;
                    co_await sync::lengthEstimate(env, queue, len);
                    if (done && !len)
                        break;
                    co_await env.compute(25);  // poll backoff
                    continue;
                }
                // "Consume": walk the shared table.
                std::uint64_t acc = 0;
                for (int k = 0; k < 8; ++k) {
                    Addr a = table + 8 * ((item + k * 13) % tableWords);
                    acc += co_await env.read<std::uint64_t>(a);
                    co_await env.compute(6);
                }
                co_await env.lock(resultLock);
                auto r = co_await env.read<std::uint64_t>(result);
                co_await env.write<std::uint64_t>(result, r + acc);
                co_await env.unlock(resultLock);
            }
        }
    }

    void
    verify(Machine &m) override
    {
        // Every producer's items were consumed exactly once: recompute
        // the expected accumulator on the host.
        std::uint64_t want = 0;
        for (unsigned pid = 0; pid < m.numProcesses(); pid += 2) {
            for (int i = 0; i < itemsPerProducer; ++i) {
                std::uint64_t item = pid * 1000 + i;
                for (int k = 0; k < 8; ++k) {
                    std::uint64_t idx = (item + k * 13) % tableWords;
                    want += idx * idx % 97;
                }
            }
        }
        auto got = m.memory().load<std::uint64_t>(result);
        if (got != want)
            fatal("pipeline result %llu != %llu",
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
    }

  private:
    static constexpr int itemsPerProducer = 40;
    static constexpr std::uint32_t tableWords = 2048;

    sync::TaskQueue queue;
    Addr resultLock = 0, result = 0, doneFlag = 0, producersLeft = 0;
    Addr table = 0;
};

} // namespace

int
main()
{
    std::printf("custom workload: 8 producers -> shared queue -> 8 "
                "consumers on 16 nodes\n\n");
    std::printf("%-22s %12s %8s %8s\n", "technique", "exec cycles",
                "busy%", "sync%");
    for (auto t : {Technique::sc(), Technique::rc(),
                   Technique::rcPrefetch(),
                   Technique::multiContext(2, 4, Consistency::RC),
                   Technique::multiContext(4, 4, Consistency::RC)}) {
        Machine m(makeMachineConfig(t));
        Pipeline w;
        RunResult r = m.run(w);
        std::printf("%-22s %12llu %7.1f%% %7.1f%%\n",
                    t.label().c_str(),
                    static_cast<unsigned long long>(r.execTime),
                    100.0 * r.bucket(Bucket::Busy) / r.totalCycles(),
                    100.0 *
                        (r.bucket(Bucket::Sync) +
                         r.bucket(Bucket::AllIdle)) /
                        r.totalCycles());
    }
    std::printf("\nThe pipeline's lock-protected accumulator "
                "serializes consumers, so extra\ncontexts help less "
                "than they do for the data-parallel benchmarks.\n");
    return 0;
}
