/**
 * @file
 * False sharing under an invalidating directory protocol: sixteen
 * processors increment private counters that either share cache lines
 * (packed 4-byte counters, four per 16-byte line) or live on separate
 * lines (padded). The packed version ping-pongs ownership between the
 * nodes on every write; the padded version gets an exclusive grant
 * once and then writes locally forever.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Counters : public Workload
{
  public:
    explicit Counters(bool padded) : padded(padded) {}

    std::string
    name() const override
    {
        return padded ? "padded" : "false-shared";
    }

    void
    setup(Machine &m) override
    {
        auto &mem = m.memory();
        stride = padded ? lineBytes : 4;
        base = mem.allocRoundRobin(16 * lineBytes);
        bar = sync::allocBarrier(mem);
    }

    SimProcess
    run(Env env) override
    {
        Addr mine = base + env.pid() * stride;
        co_await env.barrier(bar, env.nprocs());
        for (int i = 0; i < iterations; ++i) {
            auto v = co_await env.read<std::uint32_t>(mine);
            co_await env.compute(8);
            co_await env.write<std::uint32_t>(mine, v + 1);
        }
        co_await env.barrier(bar, env.nprocs());
    }

    void
    verify(Machine &m) override
    {
        for (unsigned p = 0; p < m.numProcesses(); ++p) {
            auto v = m.memory().load<std::uint32_t>(base + p * stride);
            if (v != iterations)
                fatal("counter %u is %u, expected %d", p, v,
                      iterations);
        }
    }

    static constexpr int iterations = 200;

  private:
    bool padded;
    Addr base = 0, bar = 0;
    unsigned stride = 4;
};

void
runCase(const char *label, bool padded, Consistency cons)
{
    MachineConfig cfg = makeMachineConfig(
        cons == Consistency::SC ? Technique::sc() : Technique::rc());
    Machine m(cfg);
    Counters w(padded);
    RunResult r = m.run(w);
    std::printf("%-14s %-3s  exec %9llu  invalidations %7llu  "
                "write-hit %5.1f%%\n",
                label, cons == Consistency::SC ? "SC" : "RC",
                static_cast<unsigned long long>(r.execTime),
                static_cast<unsigned long long>(r.invalidations),
                r.writeHitPct);
}

} // namespace

int
main()
{
    std::printf("False sharing on a 16-node directory-coherent "
                "machine\n");
    std::printf("(16 counters x %d increments; packed = 4 counters "
                "per line)\n\n", Counters::iterations);
    runCase("packed", false, Consistency::SC);
    runCase("padded", true, Consistency::SC);
    runCase("packed", false, Consistency::RC);
    runCase("padded", true, Consistency::RC);
    std::printf("\nPadding turns every write into a cache hit; the "
                "packed counters bounce\nline ownership between nodes "
                "on nearly every access.\n");
    return 0;
}
