/**
 * @file
 * Latency sweep: the paper's opening claim is that remote latencies of
 * "several tens to hundreds of processor cycles" make latency-hiding
 * techniques essential. This example sweeps the one-way network hop
 * latency and shows how each technique's benefit grows with distance -
 * at small latencies the techniques barely matter; at large ones they
 * are worth integer factors.
 */

#include <cstdio>

#include "apps/mp3d.hh"
#include "core/experiment.hh"

using namespace dashsim;

int
main()
{
    std::printf("Technique speedup over SC as a function of network "
                "latency (MP3D, small)\n\n");
    std::printf("%-8s %10s %8s %8s %8s\n", "net hop", "SC exec", "RC",
                "RC+PF", "RC 4ctx");

    Mp3dConfig mc;
    mc.particles = 2500;
    mc.steps = 2;

    for (Tick hop : {5u, 10u, 20u, 40u, 80u}) {
        MemConfig base;
        base.lat.netHop = hop;
        // Keep Table-1-style structure: the end-to-end latencies
        // follow the hop automatically through the path constants.
        base.lat.readHome = 26 + 2 * hop + 6;
        base.lat.readRemote = base.lat.readHome + 18;
        base.lat.writeHome = 18 + 2 * hop + 6;
        base.lat.writeRemote = base.lat.writeHome + 18;

        auto run = [&](const Technique &t) {
            Machine m(makeMachineConfig(t, base));
            Mp3d w(mc);
            return m.run(w).execTime;
        };
        Tick sc = run(Technique::sc());
        Tick rc = run(Technique::rc());
        Tick rcpf = run(Technique::rcPrefetch());
        Tick rc4 = run(Technique::multiContext(4, 4, Consistency::RC));
        std::printf("%-8llu %10llu %7.2fx %7.2fx %7.2fx\n",
                    static_cast<unsigned long long>(hop),
                    static_cast<unsigned long long>(sc),
                    static_cast<double>(sc) / static_cast<double>(rc),
                    static_cast<double>(sc) / static_cast<double>(rcpf),
                    static_cast<double>(sc) / static_cast<double>(rc4));
    }
    std::printf("\nAs remote latency grows the techniques' value "
                "grows with it - the paper's\ncentral motivation.\n");
    return 0;
}
