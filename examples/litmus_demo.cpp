/**
 * @file
 * Litmus demo: run the memory-consistency litmus kernels (message
 * passing, store buffering, IRIW) under sequential and release
 * consistency and print the outcome histograms.
 *
 * The interesting column is the SC-forbidden outcome count: it must be
 * zero under SC, while under RC the message-passing and store-buffering
 * reorderings become observable. IRIW stays at zero under both models
 * because values commit through a single arena in completion-time
 * order, i.e. writes are store-atomic.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/litmus_demo
 */

#include <cstdio>

#include "check/litmus.hh"

using namespace dashsim;

int
main()
{
    constexpr unsigned iters = 64;
    for (LitmusKind k : {LitmusKind::MessagePassing,
                         LitmusKind::StoreBuffering, LitmusKind::Iriw}) {
        for (Consistency model : {Consistency::SC, Consistency::RC}) {
            LitmusResult r = runLitmus(k, model, iters);
            std::printf("%-16s under %s: %llu/%llu reordered\n",
                        litmusKindName(k),
                        model == Consistency::SC ? "SC" : "RC",
                        static_cast<unsigned long long>(r.reordered),
                        static_cast<unsigned long long>(r.iterations));
            for (const auto &[outcome, count] : r.outcomes)
                std::printf("    %-28s %llu\n", outcome.c_str(),
                            static_cast<unsigned long long>(count));
        }
    }
    return 0;
}
