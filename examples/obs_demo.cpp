/**
 * @file
 * Observability demo: run one quick MP3D point with latency attribution
 * enabled and print the per-class medians next to the paper's Table 1
 * uncontended latencies, then dump the hierarchical counter registry
 * and (optionally) a Chrome trace-event timeline.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     DASHSIM_TIMELINE=trace.json DASHSIM_REGISTRY=counters.json \
 *         ./build/examples/obs_demo
 *
 * Load trace.json in https://ui.perfetto.dev or chrome://tracing.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "obs/attribution.hh"
#include "obs/registry.hh"

using namespace dashsim;

namespace {

void
printClass(const obs::Attribution &a, obs::TxnOp op, ServiceLevel level,
           unsigned table1)
{
    const auto &c = a.stats(op, level);
    if (!c.latency.count())
        return;
    std::printf("  %-9s %-12s %8llu txns   median %5.0f   mean %7.1f"
                "   min %4.0f   max %6.0f",
                obs::txnOpName(op), obs::serviceLevelName(level),
                static_cast<unsigned long long>(c.latency.count()),
                c.latency.median(), c.latency.mean(),
                c.latency.minValue(), c.latency.maxValue());
    if (table1)
        std::printf("   (Table 1: %u)", table1);
    std::printf("\n");
}

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.obs.attribution = true;
    // DASHSIM_TIMELINE / DASHSIM_REGISTRY are claimed by the Machine
    // constructor when set; nothing else to wire up here.
    Machine m(cfg);

    auto w = testWorkload("MP3D")();
    RunResult r = m.run(*w);
    std::printf("MP3D (quick): exec=%llu cycles on %u processors\n\n",
                static_cast<unsigned long long>(r.execTime),
                r.numProcessors);

    const obs::Attribution *a = m.attribution();
    std::printf("latency attribution (%llu transactions recorded):\n",
                static_cast<unsigned long long>(a->recorded()));
    using Op = obs::TxnOp;
    printClass(*a, Op::Read, ServiceLevel::PrimaryHit, 1);
    printClass(*a, Op::Read, ServiceLevel::SecondaryHit, 14);
    printClass(*a, Op::Read, ServiceLevel::LocalNode, 26);
    printClass(*a, Op::Read, ServiceLevel::HomeNode, 72);
    printClass(*a, Op::Read, ServiceLevel::RemoteNode, 90);
    printClass(*a, Op::Read, ServiceLevel::Combined, 0);
    printClass(*a, Op::Write, ServiceLevel::SecondaryHit, 2);
    printClass(*a, Op::Write, ServiceLevel::LocalNode, 18);
    printClass(*a, Op::Write, ServiceLevel::HomeNode, 64);
    printClass(*a, Op::Write, ServiceLevel::RemoteNode, 82);
    printClass(*a, Op::Sync, ServiceLevel::LocalNode, 0);
    printClass(*a, Op::Sync, ServiceLevel::HomeNode, 0);
    printClass(*a, Op::Sync, ServiceLevel::RemoteNode, 0);

    std::printf("\nmedians above the Table 1 figure show queueing delay"
                " under load;\nunloaded classes reproduce it exactly.\n");

    obs::Registry reg;
    m.fillRegistry(reg, r);
    std::printf("\nregistry holds %llu counters; a few:\n",
                static_cast<unsigned long long>(reg.size()));
    const char *show[] = {"machine.exec_time", "p0.cpu.bucket.busy",
                          "p0.l2.miss.home", "attrib.total"};
    for (const char *name : show) {
        if (reg.has(name))
            std::printf("  %-22s %llu\n", name,
                        static_cast<unsigned long long>(reg.get(name)));
    }
    return 0;
}
