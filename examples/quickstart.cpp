/**
 * @file
 * Quickstart: build a 16-node DASH-like machine, write a tiny parallel
 * workload as a coroutine, and compare sequential and release
 * consistency on it.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

/**
 * Each process repeatedly updates a strided slice of a shared array and
 * meets the others at a barrier - a miniature bulk-synchronous kernel.
 */
class ArraySweep : public Workload
{
  public:
    std::string name() const override { return "array-sweep"; }

    void
    setup(Machine &m) override
    {
        auto &mem = m.memory();
        elems = 4096;
        base = mem.allocRoundRobin(elems * 8);
        for (std::uint32_t i = 0; i < elems; ++i)
            mem.store<double>(base + 8 * i, 1.0);
        bar = sync::allocBarrier(mem);
    }

    SimProcess
    run(Env env) override
    {
        const unsigned pid = env.pid();
        const unsigned np = env.nprocs();
        // Blocked partitioning: each process owns a contiguous slice,
        // so consecutive elements share cache lines.
        const std::uint32_t chunk = elems / np;
        const std::uint32_t lo = pid * chunk;
        const std::uint32_t hi = pid + 1 == np ? elems : lo + chunk;
        for (int sweep = 0; sweep < 4; ++sweep) {
            for (std::uint32_t i = lo; i < hi; ++i) {
                double v = co_await env.read<double>(base + 8 * i);
                co_await env.compute(6);
                co_await env.write<double>(base + 8 * i, v * 1.5 + 1.0);
            }
            co_await env.barrier(bar, np);
        }
    }

    void
    verify(Machine &m) override
    {
        // After 4 sweeps of x -> 1.5x + 1 starting from 1.0:
        double want = 1.0;
        for (int s = 0; s < 4; ++s)
            want = want * 1.5 + 1.0;
        for (std::uint32_t i = 0; i < elems; ++i) {
            double v = m.memory().load<double>(base + 8 * i);
            if (v != want)
                fatal("element %u is %f, expected %f", i, v, want);
        }
    }

  private:
    Addr base = 0;
    Addr bar = 0;
    std::uint32_t elems = 0;
};

void
runAndPrint(const char *label, const Technique &t)
{
    Machine m(makeMachineConfig(t));
    ArraySweep w;
    RunResult r = m.run(w);
    std::printf("%-8s exec=%8llu cycles   busy=%5.1f%%   util=%4.1f%%   "
                "read-hit=%4.1f%%\n",
                label, static_cast<unsigned long long>(r.execTime),
                100.0 * r.busyCycles / (double)r.totalCycles(),
                100.0 * r.utilization(), r.readHitPct);
}

} // namespace

int
main()
{
    std::printf("dashsim quickstart: 16-node DASH-like multiprocessor\n\n");
    runAndPrint("SC", Technique::sc());
    runAndPrint("RC", Technique::rc());
    runAndPrint("RC 4ctx", Technique::multiContext(4, 4, Consistency::RC));
    std::printf("\nRelease consistency hides the write latency; multiple"
                " contexts hide part of the read latency.\n");
    return 0;
}
