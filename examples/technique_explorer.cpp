/**
 * @file
 * Technique explorer: run any of the paper's benchmarks under any
 * technique combination from the command line and print the full
 * execution-time breakdown.
 *
 *     technique_explorer [app] [options]
 *       app:        mp3d | lu | pthor        (default mp3d)
 *       --nocache    disable shared-data caching
 *       --rc         release consistency      (default SC)
 *       --pf         software prefetching
 *       --ctx N      hardware contexts (1/2/4)
 *       --switch N   context-switch cycles (default 4)
 *       --full-caches use the unscaled 64KB/256KB caches
 *       --small      scaled-down data sets (fast)
 */

#include <cstdio>
#include <cstring>

#include <iostream>

#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"
#include "core/experiment.hh"
#include "core/inspect.hh"
#include "core/report.hh"

using namespace dashsim;

int
main(int argc, char **argv)
{
    std::string app = "mp3d";
    Technique t;
    bool small = false;
    MemConfig base;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "mp3d" || a == "lu" || a == "pthor") {
            app = a;
        } else if (a == "--nocache") {
            t.caches = false;
        } else if (a == "--rc") {
            t.consistency = Consistency::RC;
        } else if (a == "--pf") {
            t.prefetch = true;
        } else if (a == "--ctx" && i + 1 < argc) {
            t.contexts = static_cast<std::uint32_t>(atoi(argv[++i]));
        } else if (a == "--switch" && i + 1 < argc) {
            t.switchCycles = static_cast<Tick>(atoi(argv[++i]));
        } else if (a == "--full-caches") {
            base = MemConfig::fullSizeCaches();
        } else if (a == "--small") {
            small = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
            return 2;
        }
    }

    WorkloadFactory factory;
    if (app == "mp3d") {
        Mp3dConfig c;
        if (small) {
            c.particles = 1000;
            c.steps = 2;
        }
        factory = [c] { return std::make_unique<Mp3d>(c); };
    } else if (app == "lu") {
        LuConfig c;
        if (small)
            c.n = 64;
        factory = [c] { return std::make_unique<Lu>(c); };
    } else {
        PthorConfig c;
        if (small) {
            c.elements = 2000;
            c.flipflops = 200;
            c.clockCycles = 2;
        }
        factory = [c] { return std::make_unique<Pthor>(c); };
    }

    std::printf("app=%s technique=%s caches=%s\n\n", app.c_str(),
                t.label().c_str(),
                base.primary.sizeBytes > 4096 ? "full-size" : "scaled");

    // One-point batch: same runner the bench grids use, and a failed
    // run reports its error instead of aborting the process. The
    // inspect hook snapshots the memory system before the machine is
    // torn down.
    MemoryInspection mi;
    RunBatch batch;
    RunPoint point;
    point.factory = factory;
    point.technique = t;
    point.base = base;
    point.label = app;
    point.inspect = [&mi](Machine &m, const RunResult &res) {
        mi = inspectMemory(m, res.execTime);
    };
    batch.add(std::move(point));
    RunOutcome o = batch.run().front();
    if (!o.log.empty())
        std::fputs(o.log.c_str(), stderr);
    if (!o.ok) {
        std::fprintf(stderr, "run failed: %s\n", o.error.c_str());
        return 1;
    }
    RunResult &r = o.result;

    std::printf("execution time      %12llu pclocks  (%.2f ms at "
                "33MHz)\n",
                static_cast<unsigned long long>(r.execTime),
                static_cast<double>(r.execTime) * 30e-6);
    std::printf("processor util      %11.1f%%\n",
                100.0 * r.utilization());
    auto pct = [&](Bucket b) {
        return 100.0 * r.bucket(b) / r.totalCycles();
    };
    std::printf("  busy              %11.1f%%\n", pct(Bucket::Busy));
    std::printf("  read stall        %11.1f%%\n", pct(Bucket::Read));
    std::printf("  write stall       %11.1f%%\n", pct(Bucket::Write));
    std::printf("  sync stall        %11.1f%%\n", pct(Bucket::Sync));
    std::printf("  prefetch overhead %11.1f%%\n",
                pct(Bucket::PfOverhead));
    std::printf("  switching         %11.1f%%\n",
                pct(Bucket::Switching));
    std::printf("  all idle          %11.1f%%\n", pct(Bucket::AllIdle));
    std::printf("  no switch         %11.1f%%\n",
                pct(Bucket::NoSwitch));
    std::printf("shared reads        %12llu  (hit %.1f%%)\n",
                static_cast<unsigned long long>(r.sharedReads),
                r.readHitPct);
    std::printf("shared writes       %12llu  (hit %.1f%%)\n",
                static_cast<unsigned long long>(r.sharedWrites),
                r.writeHitPct);
    std::printf("locks/barriers      %12llu / %llu\n",
                static_cast<unsigned long long>(r.locks),
                static_cast<unsigned long long>(r.barriers));
    std::printf("median run length   %12.0f cycles\n",
                r.medianRunLength);
    std::printf("avg read-miss lat   %12.0f cycles\n",
                r.avgReadMissLatency);
    printInspection(std::cout, mi);
    if (r.prefetchesIssued) {
        std::printf("prefetches          %12llu issued, %llu dropped, "
                    "%llu combined\n",
                    static_cast<unsigned long long>(r.prefetchesIssued),
                    static_cast<unsigned long long>(
                        r.prefetchesDropped),
                    static_cast<unsigned long long>(
                        r.prefetchesCombined));
    }
    return 0;
}
