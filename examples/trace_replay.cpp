/**
 * @file
 * Trace-driven simulation: record the reference stream of a benchmark
 * once, save it to disk, then replay the same stream under different
 * consistency models - the classic Tango trace workflow.
 *
 *     ./trace_replay            # record MP3D (small), replay 4 ways
 *     ./trace_replay file.dtrc  # reuse/save the trace file
 */

#include <cstdio>

#include "apps/mp3d.hh"
#include "core/experiment.hh"
#include "tango/trace.hh"

using namespace dashsim;

int
main(int argc, char **argv)
{
    const char *path = argc > 1 ? argv[1] : "/tmp/mp3d_small.dtrc";

    Mp3dConfig mc;
    mc.particles = 2000;
    mc.steps = 2;

    std::printf("Recording MP3D (%u particles, %u steps) under RC...\n",
                mc.particles, mc.steps);
    Machine rec_machine(makeMachineConfig(Technique::rc()));
    TraceRecorder rec(std::make_unique<Mp3d>(mc));
    RunResult recorded = rec_machine.run(rec);
    Trace trace = rec.takeTrace();
    std::printf("  %zu operations across %zu processes, exec %llu "
                "cycles\n",
                trace.totalOps(), trace.procs.size(),
                static_cast<unsigned long long>(recorded.execTime));

    saveTrace(trace, path);
    std::printf("  saved to %s\n\n", path);

    std::printf("Replaying the trace under each consistency model:\n");
    std::printf("%-6s %12s %8s %8s %8s\n", "model", "exec cycles",
                "busy%", "write%", "vs RC");
    Tick rc_time = 0;
    for (auto t : {Technique::rc(), Technique::wc(), Technique::pc(),
                   Technique::sc()}) {
        Trace copy = loadTrace(path);
        Machine m(makeMachineConfig(t));
        TraceWorkload replay(std::move(copy));
        RunResult r = m.run(replay);
        if (!rc_time)
            rc_time = r.execTime;
        std::printf("%-6s %12llu %7.1f%% %7.1f%% %7.2fx\n",
                    t.label().c_str(),
                    static_cast<unsigned long long>(r.execTime),
                    100.0 * r.bucket(Bucket::Busy) / r.totalCycles(),
                    100.0 * r.bucket(Bucket::Write) / r.totalCycles(),
                    static_cast<double>(r.execTime) /
                        static_cast<double>(rc_time));
    }
    std::printf("\nThe replayed reference stream is fixed, so the "
                "differences isolate the\nconsistency model's effect "
                "on the same accesses.\n");
    return 0;
}
