#include "apps/lu.hh"

#include <cmath>

#include "sim/random.hh"
#include "tango/sync.hh"

namespace dashsim {

Lu::Lu(const LuConfig &cfg) : cfg(cfg)
{
    fatal_if(cfg.n < 2, "LU needs at least a 2x2 matrix");
}

void
Lu::setup(Machine &m)
{
    SharedMemory &mem = m.memory();
    const unsigned nprocs = m.numProcesses();
    const std::uint32_t n = cfg.n;
    Rng rng(cfg.seed);

    // Diagonally dominant random matrix: LU without pivoting is stable.
    original.assign(static_cast<std::size_t>(n) * n, 0.0);
    for (std::uint32_t j = 0; j < n; ++j) {
        for (std::uint32_t i = 0; i < n; ++i) {
            double v = rng.uniform() - 0.5;
            if (i == j)
                v += static_cast<double>(n);
            original[static_cast<std::size_t>(j) * n + i] = v;
        }
    }

    // Columns interleaved across processes, allocated on the owner's
    // node (placement directive, Section 2.2). Each process's columns
    // come from one contiguous block of its node's memory, exactly as
    // an arena allocator would lay them out - page-aligning every
    // column individually would make them conflict perfectly in the
    // direct-mapped caches.
    colBase.assign(n, 0);
    const std::size_t col_bytes = static_cast<std::size_t>(n) * 8;
    std::vector<Addr> block(nprocs, 0);
    std::vector<std::uint32_t> used(nprocs, 0);
    for (unsigned p = 0; p < nprocs; ++p) {
        std::uint32_t cols = n / nprocs + (p < n % nprocs ? 1 : 0);
        if (cols)
            block[p] = mem.allocLocal(cols * col_bytes,
                                      m.nodeOfProcess(p));
    }
    for (std::uint32_t j = 0; j < n; ++j) {
        unsigned p = owner(j, nprocs);
        colBase[j] = block[p] + used[p]++ * col_bytes;
        for (std::uint32_t i = 0; i < n; ++i)
            mem.store<double>(elem(i, j),
                              original[static_cast<std::size_t>(j) * n + i]);
    }

    // Produced flags: one cache line per column, on the owner's node so
    // the release is a local write.
    flagBase = mem.allocRoundRobin(static_cast<std::size_t>(n) * lineBytes);
    for (std::uint32_t j = 0; j < n; ++j)
        mem.store<std::uint32_t>(flagAddr(j), 0);

    barrierAddr = sync::allocBarrier(mem);
    pstate.assign(nprocs, PerProc{});
}

std::string
Lu::checkpointKey() const
{
    return "LU/n=" + std::to_string(cfg.n) +
           "/seed=" + std::to_string(cfg.seed) +
           "/pfdist=" + std::to_string(cfg.prefetchDistance);
}

void
Lu::saveProcessState(unsigned pid, ckpt::Writer &w) const
{
    w.u32(pstate[pid].ep);
}

void
Lu::loadProcessState(unsigned pid, ckpt::Reader &r)
{
    pstate[pid].ep = r.u32();
}

SimProcess
Lu::run(Env env)
{
    const unsigned pid = env.pid();
    const unsigned nprocs = env.nprocs();
    const std::uint32_t n = cfg.n;
    const bool pf = env.prefetching();
    const std::uint32_t dist = cfg.prefetchDistance;
    PerProc &st = pstate[pid];

    // Host-side resume dispatch: st.ep counts completed barrier
    // episodes, written to its post-barrier value *before* the await
    // (the barrier completion is the checkpoint park point). A fresh
    // coroutine restored at episode e skips straight past the first e
    // barriers without issuing any simulated access.
    if (st.ep < 1) {
        st.ep = 1;
        co_await env.barrier(barrierAddr, nprocs);
    }

    if (st.ep < 2) {
        for (std::uint32_t k = 0; k + 1 < n; ++k) {
            if (owner(k, nprocs) == pid) {
                // Normalize column k: divide the subdiagonal by the pivot.
                double pivot = co_await env.read<double>(elem(k, k));
                co_await env.compute(12);
                for (std::uint32_t i = k + 1; i < n; ++i) {
                    if (pf && (i - k - 1) % 2 == 0 && i + dist < n)
                        co_await env.prefetchEx(elem(i + dist, k));
                    double v = co_await env.read<double>(elem(i, k));
                    co_await env.compute(5);
                    co_await env.write<double>(elem(i, k), v / pivot);
                }
                // Publish: release write so every earlier store to the
                // column is visible before the flag flips.
                co_await env.writeRelease<std::uint32_t>(flagAddr(k), 1);
            } else {
                // Wait for the pivot column to be produced (acquire).
                co_await env.waitFlag(flagAddr(k), 1);
            }

            // Apply the pivot column to every owned column to its right.
            for (std::uint32_t j = k + 1; j < n; ++j) {
                if (owner(j, nprocs) != pid)
                    continue;
                double mult = co_await env.read<double>(elem(k, j));
                co_await env.compute(8);
                for (std::uint32_t i = k + 1; i < n; ++i) {
                    if (pf && (i - k - 1) % 2 == 0 && i + dist < n) {
                        // Evenly distributed prefetches: pivot column
                        // read-shared, owned column read-exclusive.
                        co_await env.prefetch(elem(i + dist, k));
                        co_await env.prefetchEx(elem(i + dist, j));
                    }
                    double a = co_await env.read<double>(elem(i, k));
                    double b = co_await env.read<double>(elem(i, j));
                    co_await env.compute(6);
                    co_await env.write<double>(elem(i, j), b - a * mult);
                }
            }
        }

        st.ep = 2;
        co_await env.barrier(barrierAddr, nprocs);
    }
}

void
Lu::verify(Machine &m)
{
    SharedMemory &mem = m.memory();
    const std::uint32_t n = cfg.n;
    // Check A == L * U on a deterministic sample of entries (plus the
    // corners), where L is unit lower triangular and U upper.
    auto check = [&](std::uint32_t r, std::uint32_t c) {
        double sum = 0.0;
        for (std::uint32_t t = 0; t <= std::min(r, c); ++t) {
            double l = t < r ? mem.load<double>(elem(r, t)) : 1.0;
            double u = mem.load<double>(elem(t, c));
            sum += l * u;
        }
        double a = original[static_cast<std::size_t>(c) * n + r];
        double tol = 1e-6 * (std::fabs(a) + 1.0);
        if (std::fabs(sum - a) > tol) {
            panic("LU verify failed at (%u,%u): %g vs %g", r, c, sum, a);
        }
    };
    Rng s(cfg.seed + 1);
    for (int t = 0; t < 256; ++t)
        check(static_cast<std::uint32_t>(s.below(n)),
              static_cast<std::uint32_t>(s.below(n)));
    check(0, 0);
    check(n - 1, n - 1);
    check(n - 1, 0);
    check(0, n - 1);
}

} // namespace dashsim
