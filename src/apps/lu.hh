/**
 * @file
 * LU: parallel dense LU decomposition (paper Section 2.2).
 *
 * The matrix is stored column-major; columns are statically assigned to
 * the processes in an interleaved fashion and allocated from shared
 * memory on the owner's node. Working left to right, the owner of
 * column k normalizes it (divides the subdiagonal by the pivot) and
 * releases a produced-flag; every process then applies the pivot column
 * to the columns it owns to the right. Waiting on a produced-flag is an
 * acquire and is counted as a lock (the paper reports 3184 of them for
 * a 200x200 matrix on 16 processors: 199 columns x 16 waiters).
 *
 * Prefetch placement (Section 5.2): during each apply, the pivot column
 * is prefetched read-shared and the owned column read-exclusive, with
 * the prefetches distributed evenly through the loop rather than issued
 * in one burst (to avoid hot-spotting).
 */

#ifndef APPS_LU_HH
#define APPS_LU_HH

#include <cstdint>
#include <vector>

#include "core/machine.hh"

namespace dashsim {

/** LU problem-size parameters (paper default: 200x200). */
struct LuConfig
{
    std::uint32_t n = 200;
    std::uint64_t seed = 0x4c55;  // "LU"
    /** Prefetch this many elements ahead inside the apply loop. */
    std::uint32_t prefetchDistance = 8;
};

class Lu : public Workload
{
  public:
    explicit Lu(const LuConfig &cfg = {});

    std::string name() const override { return "LU"; }
    void setup(Machine &m) override;
    SimProcess run(Env env) override;
    void verify(Machine &m) override;

    // --- barrier-point checkpointing ---
    bool checkpointable() const override { return true; }
    std::uint32_t checkpointEpisodes() const override { return 2; }
    std::string checkpointKey() const override;
    void saveProcessState(unsigned pid, ckpt::Writer &w) const override;
    void loadProcessState(unsigned pid, ckpt::Reader &r) override;

    /** Owner process of column @p j under interleaved assignment. */
    static unsigned owner(std::uint32_t j, unsigned nprocs)
    {
        return j % nprocs;
    }

  private:
    Addr
    elem(std::uint32_t i, std::uint32_t j) const
    {
        return colBase[j] + static_cast<Addr>(i) * 8;
    }

    Addr flagAddr(std::uint32_t j) const
    {
        return flagBase + static_cast<Addr>(j) * lineBytes;
    }

    /**
     * Persistent per-process state, workload-owned so a checkpoint can
     * serialize it. Updated to the post-barrier value immediately
     * before each barrier await (the checkpoint park point); a fresh
     * coroutine restored from a checkpoint dispatches on it host-side.
     * ep: barrier episodes completed (1 = initial barrier, 2 = final).
     */
    struct PerProc
    {
        std::uint32_t ep = 0;
    };

    LuConfig cfg;
    std::vector<PerProc> pstate;    ///< per-process resume state
    std::vector<Addr> colBase;      ///< per-column base addresses
    Addr flagBase = 0;              ///< produced flags, one line each
    Addr barrierAddr = 0;
    std::vector<double> original;   ///< pristine A, for verification
};

} // namespace dashsim

#endif // APPS_LU_HH
