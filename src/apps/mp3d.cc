#include "apps/mp3d.hh"

#include <bit>
#include <cmath>

#include "sim/random.hh"
#include "tango/sync.hh"

namespace dashsim {

Mp3d::Mp3d(const Mp3dConfig &cfg) : cfg(cfg)
{
    fatal_if(cfg.particles == 0, "MP3D needs particles");
    fatal_if(numCells() == 0, "MP3D needs a space array");
    fatal_if(cfg.steps == 0, "MP3D needs at least one time step");
}

void
Mp3d::setup(Machine &m)
{
    SharedMemory &mem = m.memory();
    const unsigned nprocs = m.numProcesses();
    Rng rng(cfg.seed);

    // Particles: statically divided, allocated on the owner's node to
    // minimize miss penalties (Section 2.2).
    particleBase.assign(nprocs, 0);
    for (unsigned p = 0; p < nprocs; ++p) {
        std::uint32_t n = particlesOf(p, nprocs);
        if (n == 0)
            continue;
        particleBase[p] = mem.allocLocal(
            static_cast<std::size_t>(n) * particleBytes,
            m.nodeOfProcess(p));
        for (std::uint32_t i = 0; i < n; ++i) {
            Addr a = particleAddr(p, i);
            float x = static_cast<float>(rng.uniform() * cfg.cellsX);
            float y = static_cast<float>(rng.uniform() * cfg.cellsY);
            float z = static_cast<float>(rng.uniform() * cfg.cellsZ);
            mem.store<float>(a + pX, x);
            mem.store<float>(a + pY, y);
            mem.store<float>(a + pZ, z);
            mem.store<float>(a + pVx,
                             static_cast<float>(rng.uniform() - 0.5));
            mem.store<float>(a + pVy,
                             static_cast<float>(rng.uniform() - 0.5));
            mem.store<float>(a + pVz,
                             static_cast<float>(rng.uniform() - 0.5));
            std::uint32_t cx = static_cast<std::uint32_t>(x);
            std::uint32_t cy = static_cast<std::uint32_t>(y);
            std::uint32_t cz = static_cast<std::uint32_t>(z);
            std::uint32_t c =
                (cz * cfg.cellsY + cy) * cfg.cellsX + cx;
            mem.store<std::uint32_t>(a + pCell, c);
        }
    }

    // Space cells: distributed uniformly (round-robin pages).
    cellBase = mem.allocRoundRobin(
        static_cast<std::size_t>(numCells()) * cellBytes);
    for (std::uint32_t c = 0; c < numCells(); ++c) {
        Addr a = cellAddr(c);
        mem.store<std::uint32_t>(a + cCount, 0);
        mem.store<std::uint32_t>(a + cColl, 0);
        mem.store<float>(a + cResVx,
                         static_cast<float>(rng.uniform() - 0.5));
        mem.store<float>(a + cResVy,
                         static_cast<float>(rng.uniform() - 0.5));
        mem.store<float>(a + cResVz,
                         static_cast<float>(rng.uniform() - 0.5));
        mem.store<float>(a + cSumVx, 0.0f);
        mem.store<float>(a + cSumVy, 0.0f);
        mem.store<float>(a + cSumVz, 0.0f);
        // A small solid object sits in the middle of the space array.
        std::uint32_t cx = c % cfg.cellsX;
        std::uint32_t cy = (c / cfg.cellsX) % cfg.cellsY;
        bool object = cx >= cfg.cellsX / 2 - 1 && cx <= cfg.cellsX / 2 &&
                      cy >= cfg.cellsY / 2 - 2 && cy <= cfg.cellsY / 2 + 1;
        mem.store<std::uint32_t>(a + cObj, object ? 1 : 0);
    }

    barrierAddr = sync::allocBarrier(mem);
    globalCountAddr = mem.allocRoundRobin(lineBytes);
    mem.store<std::uint32_t>(globalCountAddr, 0);

    pstate.assign(nprocs, PerProc{});
    for (unsigned p = 0; p < nprocs; ++p)
        pstate[p].rng = Rng(cfg.seed ^ (0x9e37ull * (p + 1)));
}

std::string
Mp3d::checkpointKey() const
{
    return "MP3D/p=" + std::to_string(cfg.particles) + "/cells=" +
           std::to_string(cfg.cellsX) + "x" + std::to_string(cfg.cellsY) +
           "x" + std::to_string(cfg.cellsZ) +
           "/steps=" + std::to_string(cfg.steps) +
           "/seed=" + std::to_string(cfg.seed) + "/cp=" +
           std::to_string(
               std::bit_cast<std::uint64_t>(cfg.collideProbability));
}

void
Mp3d::saveProcessState(unsigned pid, ckpt::Writer &w) const
{
    w.u32(pstate[pid].ep);
    pstate[pid].rng.saveState(w);
}

void
Mp3d::loadProcessState(unsigned pid, ckpt::Reader &r)
{
    pstate[pid].ep = r.u32();
    pstate[pid].rng.loadState(r);
}

SimProcess
Mp3d::run(Env env)
{
    const unsigned pid = env.pid();
    const unsigned nprocs = env.nprocs();
    const std::uint32_t mine = particlesOf(pid, nprocs);
    const std::uint32_t ncells = numCells();
    const bool pf = env.prefetching();
    PerProc &st = pstate[pid];

    // Cells are scanned in slices during the bookkeeping phases.
    const std::uint32_t slice = (ncells + nprocs - 1) / nprocs;
    const std::uint32_t cell_lo = std::min(pid * slice, ncells);
    const std::uint32_t cell_hi = std::min(cell_lo + slice, ncells);

    // Host-side resume dispatch (see Lu::run): st.ep counts completed
    // barrier episodes, set to its post-barrier value immediately
    // before each barrier await. Guards below skip the phases a
    // checkpoint already completed without issuing a simulated access.
    if (st.ep < 1) {
        st.ep = 1;
        co_await env.barrier(barrierAddr, nprocs);
    }

    for (std::uint32_t step = 0; step < cfg.steps; ++step) {
        const std::uint32_t base = 1 + 5 * step;
        if (st.ep < base + 1) {
            // ---- Phase 1: move every owned particle. ----
            for (std::uint32_t i = 0; i < mine; ++i) {
                if (pf) {
                    // Prefetch particle i+2 (read-exclusive: it will be
                    // modified) and the cell of particle i+1 via its stored
                    // cell index (Section 5.2).
                    if (i + 2 < mine) {
                        Addr p2 = particleAddr(pid, i + 2);
                        co_await env.prefetchEx(p2);
                        co_await env.prefetchEx(p2 + lineBytes);
                    }
                    if (i + 1 < mine) {
                        auto c1 = co_await env.read<std::uint32_t>(
                            particleAddr(pid, i + 1) + pCell);
                        Addr ca = cellAddr(c1 % ncells);
                        co_await env.prefetchEx(ca);
                        co_await env.prefetchEx(ca + lineBytes);
                        co_await env.prefetchEx(ca + 2 * lineBytes);
                    }
                }

                const Addr a = particleAddr(pid, i);
                co_await env.compute(12);  // loop and address arithmetic
                float x = co_await env.read<float>(a + pX);
                float y = co_await env.read<float>(a + pY);
                float z = co_await env.read<float>(a + pZ);
                float vx = co_await env.read<float>(a + pVx);
                float vy = co_await env.read<float>(a + pVy);
                float vz = co_await env.read<float>(a + pVz);
                (void)co_await env.read<std::uint32_t>(a + pCell);
                co_await env.compute(24);  // advance along velocity vector

                auto wrap = [](float v, float max) {
                    while (v < 0.0f)
                        v += max;
                    while (v >= max)
                        v -= max;
                    return v;
                };
                x = wrap(x + vx, static_cast<float>(cfg.cellsX));
                y = wrap(y + vy, static_cast<float>(cfg.cellsY));
                z = wrap(z + vz, static_cast<float>(cfg.cellsZ));
                co_await env.write<float>(a + pX, x);
                co_await env.write<float>(a + pY, y);
                co_await env.write<float>(a + pZ, z);

                co_await env.compute(10);  // cell-index computation
                std::uint32_t c =
                    (static_cast<std::uint32_t>(z) * cfg.cellsY +
                     static_cast<std::uint32_t>(y)) *
                        cfg.cellsX +
                    static_cast<std::uint32_t>(x);
                c %= ncells;
                co_await env.write<std::uint32_t>(a + pCell, c);

                // Space-cell interaction: the collision model needs the
                // cell's reservoir velocity and occupancy either way.
                // Per-cell statistics are updated without locks, exactly
                // like the real MP3D (which tolerates the occasional lost
                // update). The racy annotations are what make the program
                // "properly labeled": every competing access is marked, so
                // the happens-before race detector knows these conflicts
                // are intentional. cObj is read-only during the run and
                // needs no label.
                const Addr ca = cellAddr(c);
                auto cnt = co_await env.readRacy<std::uint32_t>(ca + cCount);
                auto obj = co_await env.read<std::uint32_t>(ca + cObj);
                float rvx = co_await env.readRacy<float>(ca + cResVx);
                float rvy = co_await env.readRacy<float>(ca + cResVy);
                float rvz = co_await env.readRacy<float>(ca + cResVz);
                (void)co_await env.readRacy<std::uint32_t>(ca + cColl);
                co_await env.compute(16);

                if (obj) {
                    // Specular reflection off the object: reverse velocity.
                    co_await env.compute(8);
                    vx = -vx;
                    vy = -vy;
                    vz = -vz;
                } else if (st.rng.chance(cfg.collideProbability)) {
                    // Probabilistic collision with the cell's reservoir
                    // particle: exchange velocities (momentum conserving).
                    co_await env.compute(20);
                    co_await env.writeRacy<float>(ca + cResVx, vx);
                    co_await env.writeRacy<float>(ca + cResVy, vy);
                    co_await env.writeRacy<float>(ca + cResVz, vz);
                    auto coll =
                        co_await env.readRacy<std::uint32_t>(ca + cColl);
                    co_await env.writeRacy<std::uint32_t>(ca + cColl,
                                                          coll + 1);
                    vx = rvx;
                    vy = rvy;
                    vz = rvz;
                }

                // Write back the (possibly unchanged) velocity - the real
                // code recomputes it every step - and accumulate the cell
                // statistics.
                co_await env.write<float>(a + pVx, vx);
                co_await env.write<float>(a + pVy, vy);
                co_await env.write<float>(a + pVz, vz);
                float sx = co_await env.readRacy<float>(ca + cSumVx);
                float sy = co_await env.readRacy<float>(ca + cSumVy);
                float sz2 = co_await env.readRacy<float>(ca + cSumVz);
                co_await env.compute(12);
                co_await env.writeRacy<std::uint32_t>(ca + cCount, cnt + 1);
                co_await env.writeRacy<float>(ca + cSumVx, sx + vx);
                co_await env.writeRacy<float>(ca + cSumVy, sy + vy);
                co_await env.writeRacy<float>(ca + cSumVz, sz2 + vz);
            }
            st.ep = base + 1;
            co_await env.barrier(barrierAddr, nprocs);
        }

        if (st.ep < base + 2) {
            // ---- Phase 2: reservoir relaxation over a cell slice. ----
            for (std::uint32_t c = cell_lo; c < cell_hi; ++c) {
                Addr ca = cellAddr(c);
                float rvx = co_await env.read<float>(ca + cResVx);
                float rvy = co_await env.read<float>(ca + cResVy);
                co_await env.compute(10);
                co_await env.write<float>(ca + cResVx, 0.9f * rvx);
                co_await env.write<float>(ca + cResVy, 0.9f * rvy);
            }
            st.ep = base + 2;
            co_await env.barrier(barrierAddr, nprocs);
        }

        if (st.ep < base + 3) {
            // ---- Phase 3: boundary-condition refresh (object cells). ----
            for (std::uint32_t c = cell_lo; c < cell_hi; ++c) {
                Addr ca = cellAddr(c);
                auto obj = co_await env.read<std::uint32_t>(ca + cObj);
                co_await env.compute(4);
                if (obj) {
                    auto coll = co_await env.read<std::uint32_t>(ca + cColl);
                    co_await env.compute(6);
                    co_await env.write<std::uint32_t>(ca + cColl, coll);
                }
            }
            st.ep = base + 3;
            co_await env.barrier(barrierAddr, nprocs);
        }

        if (st.ep < base + 4) {
            // ---- Phase 4: reset the global particle counter. ----
            if (pid == 0)
                co_await env.write<std::uint32_t>(globalCountAddr, 0);
            co_await env.compute(4);
            st.ep = base + 4;
            co_await env.barrier(barrierAddr, nprocs);
        }

        if (st.ep < base + 5) {
            // ---- Phase 5: gather per-cell statistics and reset counts. ----
            std::uint32_t local_count = 0;
            for (std::uint32_t c = cell_lo; c < cell_hi; ++c) {
                Addr ca = cellAddr(c);
                auto cnt = co_await env.read<std::uint32_t>(ca + cCount);
                local_count += cnt;
                co_await env.compute(6);
                co_await env.write<std::uint32_t>(ca + cCount, 0);
                co_await env.write<float>(ca + cSumVx, 0.0f);
                co_await env.write<float>(ca + cSumVy, 0.0f);
            }
            co_await env.fetchAdd(globalCountAddr, local_count);
            st.ep = base + 5;
            co_await env.barrier(barrierAddr, nprocs);
        }
    }
}

void
Mp3d::verify(Machine &m)
{
    SharedMemory &mem = m.memory();
    // Near-conservation of the per-cell particle counts. Like the real
    // MP3D, the per-cell statistics are updated without locks, so two
    // processes moving particles into the same cell in the same instant
    // can lose an update; the original program tolerates these
    // statistical races (they are part of its character as a benchmark)
    // and so do we, within a small bound.
    auto total = mem.load<std::uint32_t>(globalCountAddr);
    std::uint32_t slack = cfg.particles / 50 + 8;  // 2% + epsilon
    if (total > cfg.particles || total + slack < cfg.particles) {
        panic("MP3D conservation violated: counted %u of %u particles",
              total, cfg.particles);
    }
    // All particles remained inside the space array.
    const unsigned nprocs = m.numProcesses();
    for (unsigned p = 0; p < nprocs; ++p) {
        std::uint32_t n = particlesOf(p, nprocs);
        for (std::uint32_t i = 0; i < n; ++i) {
            Addr a = particleAddr(p, i);
            float x = mem.load<float>(a + pX);
            float y = mem.load<float>(a + pY);
            float z = mem.load<float>(a + pZ);
            bool ok = x >= 0 && x < static_cast<float>(cfg.cellsX) &&
                      y >= 0 && y < static_cast<float>(cfg.cellsY) &&
                      z >= 0 && z < static_cast<float>(cfg.cellsZ);
            if (!ok)
                panic("MP3D particle %u/%u escaped the space array", p, i);
        }
    }
}

} // namespace dashsim
