/**
 * @file
 * MP3D: a 3-dimensional particle-based simulator of rarefied hypersonic
 * flow (McDonald & Baganoff [20]), re-implemented from the structure
 * the paper describes in Sections 2.2 and 5.2.
 *
 * Primary data objects are the *particles* (air molecules) and the
 * *space cells* (physical space, boundary conditions, and the flying
 * object). Each time step every particle is moved along its velocity
 * vector and may collide with the reservoir particle of its space cell
 * according to a probabilistic model. Particles are statically divided
 * among the processes and allocated from shared memory on the owning
 * process's node; space-cell memory is distributed uniformly.
 *
 * Prefetch placement (enabled by CpuConfig::prefetch) follows the
 * paper: a particle record is prefetched exclusively two iterations
 * before its turn; in the iteration after the prefetch the particle's
 * stored cell index is read and the space cell is prefetched. Both use
 * read-exclusive prefetches since the records are modified.
 */

#ifndef APPS_MP3D_HH
#define APPS_MP3D_HH

#include <cstdint>
#include <vector>

#include "core/machine.hh"
#include "sim/random.hh"

namespace dashsim {

/** MP3D problem-size parameters (paper defaults). */
struct Mp3dConfig
{
    std::uint32_t particles = 10000;
    std::uint32_t cellsX = 14;
    std::uint32_t cellsY = 24;
    std::uint32_t cellsZ = 7;
    std::uint32_t steps = 5;
    std::uint64_t seed = 0x4d503344;  // "MP3D"
    double collideProbability = 0.25;
};

class Mp3d : public Workload
{
  public:
    explicit Mp3d(const Mp3dConfig &cfg = {});

    std::string name() const override { return "MP3D"; }
    void setup(Machine &m) override;
    SimProcess run(Env env) override;
    void verify(Machine &m) override;

    // --- barrier-point checkpointing ---
    bool checkpointable() const override { return true; }

    /** One initial barrier plus five per time step. */
    std::uint32_t checkpointEpisodes() const override
    {
        return 1 + 5 * cfg.steps;
    }

    std::string checkpointKey() const override;
    void saveProcessState(unsigned pid, ckpt::Writer &w) const override;
    void loadProcessState(unsigned pid, ckpt::Reader &r) override;

    /** Particle record: 32 bytes, two cache lines. */
    static constexpr unsigned particleBytes = 32;
    static constexpr unsigned pX = 0, pY = 4, pZ = 8;
    static constexpr unsigned pVx = 12, pVy = 16, pVz = 20;
    static constexpr unsigned pCell = 24;

    /** Space-cell record: 48 bytes, three cache lines. */
    static constexpr unsigned cellBytes = 48;
    static constexpr unsigned cCount = 0, cColl = 4;
    static constexpr unsigned cResVx = 8, cResVy = 12, cResVz = 16;
    static constexpr unsigned cSumVx = 20, cSumVy = 24, cSumVz = 28;
    static constexpr unsigned cObj = 32;

    std::uint32_t numCells() const
    {
        return cfg.cellsX * cfg.cellsY * cfg.cellsZ;
    }

  private:
    Addr particleAddr(unsigned pid, std::uint32_t i) const
    {
        return particleBase[pid] + static_cast<Addr>(i) * particleBytes;
    }

    Addr cellAddr(std::uint32_t c) const
    {
        return cellBase + static_cast<Addr>(c) * cellBytes;
    }

    std::uint32_t particlesOf(unsigned pid, unsigned nprocs) const
    {
        std::uint32_t per = cfg.particles / nprocs;
        std::uint32_t extra = cfg.particles % nprocs;
        return per + (pid < extra ? 1 : 0);
    }

    /**
     * Persistent per-process state, workload-owned for checkpointing.
     * ep counts completed barrier episodes (see run() for the layout:
     * 1 after the initial barrier, then +1 per phase barrier) and is
     * set to its post-barrier value immediately before each barrier
     * await. The collision RNG lives here rather than as a coroutine
     * local so its consumed-stream position survives a checkpoint.
     */
    struct PerProc
    {
        std::uint32_t ep = 0;
        Rng rng;
    };

    Mp3dConfig cfg;
    std::vector<PerProc> pstate;     ///< per-process resume state
    std::vector<Addr> particleBase;  ///< per-process particle arrays
    Addr cellBase = 0;
    Addr barrierAddr = 0;
    Addr globalCountAddr = 0;
};

} // namespace dashsim

#endif // APPS_MP3D_HH
