#include "apps/pthor.hh"

#include <algorithm>

#include "sim/random.hh"

namespace dashsim {

Pthor::Pthor(const PthorConfig &cfg) : cfg(cfg)
{
    fatal_if(cfg.elements < cfg.flipflops + cfg.primaryInputs + 16,
             "PTHOR circuit too small");
    fatal_if(cfg.maxFanout == 0 || cfg.maxFanout > 8,
             "fanout list is inlined in the record: maxFanout in [1,8]");
    buildCircuit();
}

std::uint32_t
Pthor::evalGate(GateType t, std::uint32_t a, std::uint32_t b)
{
    switch (t) {
      case AND:
        return a & b & 1u;
      case OR:
        return (a | b) & 1u;
      case XOR:
        return (a ^ b) & 1u;
      case NAND:
        return ~(a & b) & 1u;
      case NOR:
        return ~(a | b) & 1u;
      case FF:
      case INPUT:
        return a & 1u;
    }
    return 0;
}

void
Pthor::buildCircuit()
{
    const std::uint32_t n = cfg.elements;
    const std::uint32_t nff = cfg.flipflops;
    const std::uint32_t nin = cfg.primaryInputs;
    Rng rng(cfg.seed);

    net.assign(n, HostElem{AND, 0, 0, {}});

    // Element layout: [0, nin) primary inputs, [nin, nin+nff) flip-flops,
    // the rest combinational gates arranged in levels so the
    // combinational part is acyclic. Feedback flows only through FFs.
    const std::uint32_t first_gate = nin + nff;
    const std::uint32_t ngates = n - first_gate;
    const std::uint32_t per_level =
        (ngates + cfg.levels - 1) / cfg.levels;

    auto level_of = [&](std::uint32_t e) -> std::uint32_t {
        if (e < first_gate)
            return 0;
        return 1 + (e - first_gate) / per_level;
    };

    auto fanout_ok = [&](std::uint32_t src) {
        return net[src].fanout.size() < cfg.maxFanout;
    };

    // Pick a source for element e strictly below its level, preferring
    // sources whose fanout list still has room.
    auto pick_source = [&](std::uint32_t e) -> std::uint32_t {
        std::uint32_t lvl = level_of(e);
        for (int tries = 0; tries < 64; ++tries) {
            std::uint32_t s;
            if (lvl <= 1 || rng.chance(0.3)) {
                s = static_cast<std::uint32_t>(rng.below(first_gate));
            } else {
                // Previous combinational levels.
                std::uint32_t hi =
                    std::min(first_gate + (lvl - 1) * per_level, n);
                s = static_cast<std::uint32_t>(rng.below(hi));
            }
            if (s != e && fanout_ok(s))
                return s;
        }
        // Fall back to any element below this level even if its fanout
        // list is full (the extra edge is simply not propagated).
        return static_cast<std::uint32_t>(rng.below(first_gate));
    };

    for (std::uint32_t e = 0; e < n; ++e) {
        HostElem &he = net[e];
        if (e < nin) {
            he.type = INPUT;
            he.in0 = he.in1 = e;
            continue;
        }
        if (e < first_gate) {
            he.type = FF;
            continue;  // D input assigned after gates exist
        }
        he.type = static_cast<GateType>(rng.below(5));
        he.in0 = pick_source(e);
        he.in1 = pick_source(e);
        if (fanout_ok(he.in0))
            net[he.in0].fanout.push_back(e);
        if (he.in1 != he.in0 && fanout_ok(he.in1))
            net[he.in1].fanout.push_back(e);
    }

    // Flip-flop D inputs: sampled from the deeper combinational levels,
    // closing the sequential feedback loops.
    for (std::uint32_t e = nin; e < first_gate; ++e) {
        HostElem &he = net[e];
        for (int tries = 0; tries < 64; ++tries) {
            std::uint32_t s = first_gate +
                              static_cast<std::uint32_t>(rng.below(ngates));
            if (fanout_ok(s)) {
                he.in0 = he.in1 = s;
                break;
            }
            he.in0 = he.in1 = s;
        }
    }
}

void
Pthor::setup(Machine &m)
{
    SharedMemory &mem = m.memory();
    const unsigned nprocs = m.numProcesses();
    setupProcs = nprocs;
    const std::uint32_t n = cfg.elements;
    Rng rng(cfg.seed ^ 0x1234);

    // Element records: interleaved ownership (e % nprocs), each
    // process's elements allocated on its node.
    elemBase.assign(nprocs, 0);
    for (unsigned p = 0; p < nprocs; ++p) {
        std::uint32_t count = n / nprocs + (p < n % nprocs ? 1 : 0);
        if (count == 0)
            continue;
        elemBase[p] = mem.allocLocal(
            static_cast<std::size_t>(count) * elemBytes,
            m.nodeOfProcess(p));
    }
    for (std::uint32_t e = 0; e < n; ++e) {
        Addr a = elemAddr(e, nprocs);
        const HostElem &he = net[e];
        mem.store<std::uint32_t>(a + eState,
                                 static_cast<std::uint32_t>(rng.below(2)));
        mem.store<std::uint32_t>(a + eNext, 0);
        mem.store<std::uint32_t>(a + eEvals, 0);
        mem.store<std::uint32_t>(a + eType, he.type);
        mem.store<std::uint32_t>(a + eIn0, he.in0);
        mem.store<std::uint32_t>(a + eIn1, he.in1);
        mem.store<std::uint32_t>(
            a + eNFan, static_cast<std::uint32_t>(he.fanout.size()));
        for (std::size_t f = 0; f < he.fanout.size(); ++f)
            mem.store<std::uint32_t>(a + eFan + 4 * f, he.fanout[f]);
        mem.store<std::uint32_t>(a + eLock, 0);
    }

    // Net records (the wires): distributed uniformly round-robin.
    netBase = mem.allocRoundRobin(static_cast<std::size_t>(n) * netBytes);
    for (std::uint32_t e = 0; e < n; ++e) {
        mem.store<std::uint32_t>(netAddr(e) + nValue,
                                 mem.load<std::uint32_t>(
                                     elemAddr(e, nprocs) + eState));
        mem.store<std::uint32_t>(netAddr(e) + nEvents, 0);
    }

    // queuesPerProcess task queues per process, on its node.
    queues.clear();
    for (unsigned p = 0; p < nprocs; ++p)
        for (std::uint32_t q = 0; q < cfg.queuesPerProcess; ++q)
            queues.push_back(sync::allocTaskQueue(
                mem, cfg.queueCapacity, m.nodeOfProcess(p)));

    barrierAddr = sync::allocBarrier(mem);
    anyWorkAddr = mem.allocRoundRobin(lineBytes);
    mem.store<std::uint32_t>(anyWorkAddr, 0);

    pstate.assign(nprocs, PerProc{});
    for (unsigned p = 0; p < nprocs; ++p)
        pstate[p].stim = Rng(cfg.seed ^ (0xabcdull + p));
}

std::string
Pthor::checkpointKey() const
{
    return "PTHOR/n=" + std::to_string(cfg.elements) +
           "/ff=" + std::to_string(cfg.flipflops) +
           "/in=" + std::to_string(cfg.primaryInputs) +
           "/lvl=" + std::to_string(cfg.levels) +
           "/cyc=" + std::to_string(cfg.clockCycles) +
           "/fan=" + std::to_string(cfg.maxFanout) +
           "/qcap=" + std::to_string(cfg.queueCapacity) +
           "/qpp=" + std::to_string(cfg.queuesPerProcess) +
           "/polls=" + std::to_string(cfg.idlePolls) +
           "/steal=" + std::to_string(cfg.workStealing ? 1 : 0) +
           "/seed=" + std::to_string(cfg.seed);
}

void
Pthor::saveProcessState(unsigned pid, ckpt::Writer &w) const
{
    const PerProc &st = pstate[pid];
    w.u8(static_cast<std::uint8_t>(st.pt));
    w.u32(st.cycle);
    st.stim.saveState(w);
}

void
Pthor::loadProcessState(unsigned pid, ckpt::Reader &r)
{
    PerProc &st = pstate[pid];
    st.pt = static_cast<ResumePoint>(r.u8());
    st.cycle = r.u32();
    st.stim.loadState(r);
}

SimProcess
Pthor::run(Env env)
{
    const unsigned pid = env.pid();
    const unsigned nprocs = env.nprocs();
    const std::uint32_t n = cfg.elements;
    const bool pf = env.prefetching();
    // Host-side resume dispatch: rpt is the point this process parked
    // at when the checkpoint was taken (PtStart for a fresh run). On
    // the first pass, sections that already executed before the parked
    // barrier are skipped without issuing any simulated access; rpt is
    // reset once every resume point has been passed. The state is
    // written to its post-barrier value *before* each barrier await
    // (barrier completion is the checkpoint park point).
    PerProc &st = pstate[pid];
    ResumePoint rpt = st.pt;

    auto addr = [&](std::uint32_t e) { return elemAddr(e, nprocs); };
    auto naddr = [&](std::uint32_t e) { return netAddr(e); };
    const std::uint32_t nq = cfg.queuesPerProcess;
    // Queue q of process p.
    auto qref = [&](unsigned p, std::uint32_t q) -> sync::TaskQueue & {
        return queues[p * nq + q % nq];
    };

    // Activate element e: schedule it onto a task queue. Under the
    // default owner-push policy the element's owner gets the event (and
    // is the only evaluator); under the work-stealing ablation we keep
    // it local and let idle processes steal it.
    auto activate = [&](std::uint32_t e) -> SubTask {
        bool ok = false;
        unsigned target = cfg.workStealing ? pid : e % nprocs;
        // Spread pushes from different activators over the target's
        // queues to reduce lock contention.
        co_await sync::push(env, qref(target, pid),
                            static_cast<std::uint64_t>(e), ok);
        if (!ok)
            panic("PTHOR task queue overflow (capacity %u)",
                  cfg.queueCapacity);
    };

    // Evaluate one activated element (the heart of the main loop).
    // Under work stealing any process may evaluate, so evaluations are
    // serialized by the per-element lock; under owner-push only the
    // owner ever touches the mutable lines.
    auto evaluate = [&](std::uint32_t e) -> SubTask {
        Addr a = addr(e);
        if (pf) {
            // Element record: mutable line read-exclusive, topology and
            // fanout lines read-shared (grouped by access kind exactly
            // as the paper describes reorganizing the record).
            co_await env.prefetchEx(a + eState);
            co_await env.prefetch(a + eType);
            co_await env.prefetch(a + eFan);
        }
        if (cfg.workStealing)
            co_await env.lock(a + eLock);
        co_await env.compute(6);
        auto type = co_await env.read<std::uint32_t>(a + eType);
        auto in0 = co_await env.read<std::uint32_t>(a + eIn0);
        auto in1 = co_await env.read<std::uint32_t>(a + eIn1);
        if (pf) {
            co_await env.prefetch(naddr(in0));
            co_await env.prefetch(naddr(in1));
        }
        // Input values arrive through the net records (the wires);
        // the event counters stand in for Chandy-Misra timestamps.
        // Reading a wire while its driver is mid-update is deliberate:
        // a stale value is corrected by the re-evaluation the driver's
        // event triggers, so these loads are labeled racy rather than
        // serialized behind the driver's element.
        auto v0 =
            co_await env.readRacy<std::uint32_t>(naddr(in0) + nValue);
        (void)co_await env.readRacy<std::uint32_t>(naddr(in0) + nEvents);
        auto v1 =
            co_await env.readRacy<std::uint32_t>(naddr(in1) + nValue);
        (void)co_await env.readRacy<std::uint32_t>(naddr(in1) + nEvents);
        co_await env.compute(16);
        std::uint32_t out =
            evalGate(static_cast<GateType>(type), v0, v1);
        auto old = co_await env.read<std::uint32_t>(a + eState);
        auto evals = co_await env.read<std::uint32_t>(a + eEvals);
        (void)co_await env.read<std::uint32_t>(a + eNext);
        (void)co_await env.read<std::uint32_t>(a + eNFan);
        co_await env.compute(12);
        co_await env.write<std::uint32_t>(a + eEvals, evals + 1);
        if (out != old) {
            co_await env.write<std::uint32_t>(a + eState, out);
            // Drive the output wire.
            auto ev = co_await env.read<std::uint32_t>(naddr(e) +
                                                       nEvents);
            co_await env.write<std::uint32_t>(naddr(e) + nValue, out);
            co_await env.write<std::uint32_t>(naddr(e) + nEvents,
                                              ev + 1);
            auto nf = co_await env.read<std::uint32_t>(a + eNFan);
            for (std::uint32_t f = 0; f < nf; ++f) {
                auto tgt =
                    co_await env.read<std::uint32_t>(a + eFan + 4 * f);
                co_await env.compute(4);
                co_await activate(tgt);
            }
        }
        co_await env.compute(6);
        if (cfg.workStealing)
            co_await env.unlock(a + eLock);
    };

    if (rpt == PtStart) {
        st.pt = PtInit;
        co_await env.barrier(barrierAddr, nprocs);
    }

    for (std::uint32_t cycle = st.cycle; cycle < cfg.clockCycles;
         ++cycle) {
        if (rpt != PtSample && rpt != PtT1 && rpt != PtT2 &&
            rpt != PtT3) {
            // ---- Clock edge, phase A: sample all FF D-inputs. ----
            for (std::uint32_t e = pid; e < n; e += nprocs) {
                if (net[e].type != FF)
                    continue;
                Addr a = addr(e);
                auto d = co_await env.read<std::uint32_t>(a + eIn0);
                auto v =
                    co_await env.read<std::uint32_t>(naddr(d) + nValue);
                co_await env.compute(4);
                co_await env.write<std::uint32_t>(a + eNext, v);
            }
            st.pt = PtSample;
            co_await env.barrier(barrierAddr, nprocs);
        }

        if (rpt != PtT1 && rpt != PtT2 && rpt != PtT3) {
            // ---- Clock edge, phase B: commit FF outputs and the
            //      stimulus, activating fanout of everything that
            //      changed. ----
            for (std::uint32_t e = pid; e < n; e += nprocs) {
                GateType t = net[e].type;
                if (t != FF && t != INPUT)
                    continue;
                Addr a = addr(e);
                std::uint32_t nv;
                if (t == FF) {
                    nv = co_await env.read<std::uint32_t>(a + eNext);
                } else {
                    nv = static_cast<std::uint32_t>(st.stim.below(2));
                    co_await env.compute(2);
                }
                auto old = co_await env.read<std::uint32_t>(a + eState);
                co_await env.compute(4);
                if (nv != old) {
                    co_await env.write<std::uint32_t>(a + eState, nv);
                    co_await env.write<std::uint32_t>(naddr(e) + nValue,
                                                      nv);
                    auto nf =
                        co_await env.read<std::uint32_t>(a + eNFan);
                    for (std::uint32_t f = 0; f < nf; ++f) {
                        auto tgt = co_await env.read<std::uint32_t>(
                            a + eFan + 4 * f);
                        co_await env.compute(4);
                        co_await activate(tgt);
                    }
                }
            }
        }

        // ---- Event-processing loop with barrier-based termination. ----
        bool cycle_done = false;
        while (!cycle_done) {
            if (rpt != PtT1 && rpt != PtT2 && rpt != PtT3) {
                // Drain our own task queues round-robin.
                bool drained_any = true;
                while (drained_any) {
                    drained_any = false;
                    for (std::uint32_t q = 0; q < nq; ++q) {
                        std::uint64_t item = 0;
                        bool ok = false;
                        co_await sync::pop(env, qref(pid, q), item, ok);
                        if (ok) {
                            co_await evaluate(
                                static_cast<std::uint32_t>(item));
                            drained_any = true;
                        }
                    }
                }

                // Out of tasks: spin on the task queues until new work
                // is scheduled. The spinning shows up as busy time
                // (Section 2.2); only after several fruitless polls do
                // we fall into a termination-detection round.
                bool worked = false;
                for (std::uint32_t sweep = 0;
                     sweep < cfg.idlePolls && !worked; ++sweep) {
                    if (cfg.workStealing) {
                        for (unsigned v = 1; v < nprocs && !worked;
                             ++v) {
                            unsigned victim = (pid + v) % nprocs;
                            std::uint32_t len = 0;
                            co_await sync::lengthEstimate(
                                env, qref(victim, pid), len);
                            co_await env.compute(8);
                            if (!len)
                                continue;
                            std::uint64_t item = 0;
                            bool ok = false;
                            co_await sync::pop(env, qref(victim, pid),
                                               item, ok);
                            if (ok) {
                                co_await evaluate(
                                    static_cast<std::uint32_t>(item));
                                worked = true;
                            }
                        }
                    }
                    // Poll our own queues (busy-wait loop).
                    for (std::uint32_t q = 0; q < nq; ++q) {
                        std::uint32_t own = 0;
                        co_await sync::lengthEstimate(env, qref(pid, q),
                                                      own);
                        co_await env.compute(10);
                        if (own)
                            worked = true;
                    }
                }
                if (worked)
                    continue;
            }

            // Termination round (three barriers; Table 2's barrier
            // count comes mostly from here).
            if (rpt != PtT1 && rpt != PtT2 && rpt != PtT3) {
                st.pt = PtT1;
                co_await env.barrier(barrierAddr, nprocs);
            }
            if (rpt != PtT2 && rpt != PtT3) {
                if (pid == 0)
                    co_await env.write<std::uint32_t>(anyWorkAddr, 0);
                st.pt = PtT2;
                co_await env.barrier(barrierAddr, nprocs);
            }
            if (rpt != PtT3) {
                std::uint32_t pending = 0;
                for (std::uint32_t q = 0; q < nq; ++q) {
                    std::uint32_t len = 0;
                    co_await sync::lengthEstimate(env, qref(pid, q),
                                                  len);
                    pending += len;
                }
                // Every process with pending work raises the same
                // flag; the concurrent same-value stores are
                // deliberate (labeled racy), saving a lock on the hot
                // termination path.
                if (pending)
                    co_await env.writeRacy<std::uint32_t>(anyWorkAddr,
                                                          1);
                st.pt = PtT3;
                co_await env.barrier(barrierAddr, nprocs);
            }
            rpt = PtStart;  // every resume point has been passed
            auto any = co_await env.read<std::uint32_t>(anyWorkAddr);
            if (!any)
                cycle_done = true;
        }
        st.pt = PtCycleEnd;
        st.cycle = cycle + 1;
        co_await env.barrier(barrierAddr, nprocs);
    }
}

void
Pthor::verify(Machine &m)
{
    SharedMemory &mem = m.memory();
    const std::uint32_t n = cfg.elements;
    const unsigned nprocs = setupProcs;

    // All task queues drained.
    for (const auto &q : queues) {
        auto head = mem.load<std::uint32_t>(q.headAddr());
        auto tail = mem.load<std::uint32_t>(q.tailAddr());
        if (head != tail)
            panic("PTHOR queue not drained: %u items", tail - head);
    }

    std::uint64_t total_evals = 0;
    for (std::uint32_t e = 0; e < n; ++e) {
        Addr a = elemAddr(e, nprocs);
        auto st = mem.load<std::uint32_t>(a + eState);
        if (st > 1)
            panic("PTHOR element %u has non-binary state %u", e, st);
        total_evals += mem.load<std::uint32_t>(a + eEvals);

        // Quiescence: a combinational gate whose input edges are both
        // registered in the sources' fanout lists must agree with its
        // inputs once the machine stops (every input change reactivates
        // it, and its final evaluation saw the final input values).
        const HostElem &he = net[e];
        if (he.type == FF || he.type == INPUT)
            continue;
        auto connected = [&](std::uint32_t src) {
            const auto &fo = net[src].fanout;
            return std::find(fo.begin(), fo.end(), e) != fo.end();
        };
        if (!connected(he.in0) || !connected(he.in1))
            continue;  // a dropped edge (full fanout list) breaks the
                       // guarantee for this gate
        if (mem.load<std::uint32_t>(a + eEvals) == 0)
            continue;  // never activated: still holds its initial value
        auto v0 = mem.load<std::uint32_t>(netAddr(he.in0) + nValue);
        auto v1 = mem.load<std::uint32_t>(netAddr(he.in1) + nValue);
        std::uint32_t want = evalGate(he.type, v0, v1);
        if (st != want) {
            panic("PTHOR gate %u inconsistent: state %u, inputs say %u",
                  e, st, want);
        }
    }
    if (total_evals == 0)
        panic("PTHOR performed no gate evaluations");
}

} // namespace dashsim
