/**
 * @file
 * PTHOR: a parallel distributed-time logic simulator in the style of
 * Soule & Gupta's Chandy-Misra simulator [27] (paper Section 2.2).
 *
 * The circuit is a synthetic RISC-processor-like netlist of 11,000
 * two-input gates: flip-flops, primary inputs, and combinational gates
 * arranged in levels. Element records and per-process task queues live
 * in shared memory; each process repeatedly pops an activated element
 * from its own task queue, evaluates it, and schedules the elements on
 * its fanout when the output changes. A process that runs out of tasks
 * spins on its queue - that time is charged as busy time, exactly as
 * the paper notes. Quiescence of each simulated clock cycle is detected
 * with barrier-based termination rounds (the source of PTHOR's large
 * barrier count in Table 2).
 *
 * Prefetch placement (Section 5.2): when an element is popped, its
 * record lines are prefetched (the mutable line read-exclusive, the
 * read-mostly lines read-shared) along with the records of its two
 * input elements - the "first several levels of the more important
 * linked lists".
 */

#ifndef APPS_PTHOR_HH
#define APPS_PTHOR_HH

#include <cstdint>
#include <vector>

#include "core/machine.hh"
#include "sim/random.hh"
#include "tango/sync.hh"

namespace dashsim {

/** PTHOR problem-size parameters (paper defaults). */
struct PthorConfig
{
    std::uint32_t elements = 11000;
    std::uint32_t flipflops = 1100;
    std::uint32_t primaryInputs = 64;
    std::uint32_t levels = 12;
    std::uint32_t clockCycles = 5;
    std::uint32_t maxFanout = 8;
    std::uint32_t queueCapacity = 16384;
    /** Task queues per process ("one of its task queues", Sec. 2.2);
     *  pushes from different activators spread across them. */
    std::uint32_t queuesPerProcess = 4;
    /** Idle polls / steal sweeps before a termination round; the
     *  polling is charged as busy time (spinning, Section 2.2). */
    std::uint32_t idlePolls = 6;

    /**
     * Scheduling policy ablation. false (default, the paper's PTHOR):
     * activations go to the element owner's task queue and only the
     * owner evaluates, so no element locks are needed and idle
     * processes spin on their own queue. true: activations stay on the
     * activating process's queue, idle processes steal, and
     * evaluations are serialized by per-element locks.
     */
    bool workStealing = false;
    std::uint64_t seed = 0x5054484fULL;  // "PTHO"
};

class Pthor : public Workload
{
  public:
    explicit Pthor(const PthorConfig &cfg = {});

    std::string name() const override { return "PTHOR"; }
    void setup(Machine &m) override;
    SimProcess run(Env env) override;
    void verify(Machine &m) override;

    // --- barrier-point checkpointing ---
    bool checkpointable() const override { return true; }

    /**
     * Conservative minimum: one initial barrier plus, per clock cycle,
     * the FF-sampling barrier, one termination round (three barriers),
     * and the cycle-end barrier. Extra termination rounds only add
     * barriers, so every episode in [1, this] is guaranteed to occur.
     */
    std::uint32_t checkpointEpisodes() const override
    {
        return 1 + 5 * cfg.clockCycles;
    }

    std::string checkpointKey() const override;
    void saveProcessState(unsigned pid, ckpt::Writer &w) const override;
    void loadProcessState(unsigned pid, ckpt::Reader &r) override;

    /** Element record: 80 bytes, five cache lines. */
    static constexpr unsigned elemBytes = 80;
    // line 0: mutable state
    static constexpr unsigned eState = 0;      ///< current output (u32)
    static constexpr unsigned eNext = 4;       ///< FF latched value (u32)
    static constexpr unsigned eEvals = 8;      ///< evaluation counter
    // line 1: read-mostly topology
    static constexpr unsigned eType = 16;      ///< GateType (u32)
    static constexpr unsigned eIn0 = 20;       ///< source element ids
    static constexpr unsigned eIn1 = 24;
    static constexpr unsigned eNFan = 28;      ///< fanout count
    // lines 2-3: inline fanout list (up to 8 element ids)
    static constexpr unsigned eFan = 32;
    // line 4: per-element lock (evaluations are serialized per element
    // because any process may steal the activation)
    static constexpr unsigned eLock = 64;

    enum GateType : std::uint32_t
    {
        AND = 0,
        OR = 1,
        XOR = 2,
        NAND = 3,
        NOR = 4,
        FF = 5,     ///< D flip-flop (latched at the clock edge)
        INPUT = 6,  ///< primary input (driven by the stimulus)
    };

    /** Host-side netlist mirror, used for setup and verification. */
    struct HostElem
    {
        GateType type;
        std::uint32_t in0, in1;
        std::vector<std::uint32_t> fanout;
    };

    static std::uint32_t evalGate(GateType t, std::uint32_t a,
                                  std::uint32_t b);

    const std::vector<HostElem> &netlist() const { return net; }

    /** Net record: one cache line carrying the driven value. */
    static constexpr unsigned netBytes = 16;
    static constexpr unsigned nValue = 0;   ///< current value (u32)
    static constexpr unsigned nEvents = 4;  ///< transition counter

  private:
    Addr
    elemAddr(std::uint32_t e, unsigned nprocs) const
    {
        return elemBase[e % nprocs] +
               static_cast<Addr>(e / nprocs) * elemBytes;
    }

    /** Net record of the wire driven by element e (distributed
     *  uniformly, like the rest of the undirected shared data). */
    Addr netAddr(std::uint32_t e) const
    {
        return netBase + static_cast<Addr>(e) * netBytes;
    }

    void buildCircuit();

    /**
     * Resume points: where a checkpointed process continues. Each is
     * named for the barrier whose completion it follows and is written
     * to the per-process state immediately before that barrier await
     * (barrier completion is the checkpoint park point).
     */
    enum ResumePoint : std::uint8_t
    {
        PtStart = 0,  ///< fresh run: before the initial barrier
        PtInit,       ///< initial barrier completed
        PtSample,     ///< FF-sampling (phase A) barrier completed
        PtT1,         ///< termination-round barrier 1 completed
        PtT2,         ///< termination-round barrier 2 completed
        PtT3,         ///< termination-round barrier 3 completed
        PtCycleEnd,   ///< cycle-end barrier completed (cycle bumped)
    };

    /**
     * Persistent per-process state, workload-owned for checkpointing.
     * The stimulus RNG lives here rather than as a coroutine local so
     * its consumed-stream position survives a checkpoint.
     */
    struct PerProc
    {
        ResumePoint pt = PtStart;
        std::uint32_t cycle = 0;  ///< next clock cycle to run
        Rng stim;                 ///< primary-input stimulus stream
    };

    PthorConfig cfg;
    std::vector<PerProc> pstate;         ///< per-process resume state
    std::vector<HostElem> net;
    std::vector<Addr> elemBase;          ///< per-process element arrays
    Addr netBase = 0;                    ///< net records, round-robin
    std::vector<sync::TaskQueue> queues; ///< queuesPerProcess per process
    Addr barrierAddr = 0;
    Addr anyWorkAddr = 0;
    unsigned setupProcs = 0;
};

} // namespace dashsim

#endif // APPS_PTHOR_HH
