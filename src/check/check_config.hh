/**
 * @file
 * Configuration for the protocol-verification layer (src/check): the
 * coherence-invariant checker and the happens-before race detector.
 *
 * Both verifiers are runtime-switchable. The default follows the build
 * type (on in debug builds, off in release builds, where the timing
 * model should run at full speed) and can be overridden either way
 * with the DASHSIM_CHECK environment variable; the test suite forces
 * DASHSIM_CHECK=1 so every test runs fully verified.
 */

#ifndef CHECK_CHECK_CONFIG_HH
#define CHECK_CHECK_CONFIG_HH

#include <cstdint>
#include <cstdlib>

namespace dashsim {

/**
 * Build/environment default for both verifiers. The environment lookup
 * runs once (Machines are constructed concurrently by the batch
 * experiment runner, and getenv is not guaranteed safe against
 * concurrent environment modification).
 */
inline bool
defaultChecksOn()
{
    static const bool on = [] {
        if (const char *e = std::getenv("DASHSIM_CHECK"))
            return e[0] != '\0' && e[0] != '0';
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }();
    return on;
}

/** Knobs for the verification layer owned by a Machine. */
struct CheckConfig
{
    /** Cross-validate directory / cache-tag / MSHR state. */
    bool coherence = defaultChecksOn();

    /** Run the happens-before race detector over the reference stream. */
    bool race = defaultChecksOn();

    /**
     * Cycle-conservation audit (src/obs): every transaction's phase
     * vector must sum to its latency, and every processor's accounting
     * buckets must sum to the run's elapsed ticks — no cycle charged
     * twice or dropped on the floor.
     */
    bool conservation = defaultChecksOn();

    /**
     * Full-state audit every this many protocol transitions (the
     * per-transition check only examines the affected line). 0 turns
     * the periodic audit off; the end-of-run audit always runs.
     */
    std::uint64_t auditInterval = 4096;

    /** panic() on the first coherence violation instead of collecting. */
    bool failFast = true;
};

} // namespace dashsim

#endif // CHECK_CHECK_CONFIG_HH
