#include "check/invariant.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace dashsim {

const char *
violationKindName(InvariantViolation::Kind k)
{
    switch (k) {
      case InvariantViolation::Kind::DirtyExclusive:
        return "dirty-exclusive";
      case InvariantViolation::Kind::SharedClean:
        return "shared-clean";
      case InvariantViolation::Kind::UncachedEmpty:
        return "uncached-empty";
      case InvariantViolation::Kind::Inclusion:
        return "inclusion";
      case InvariantViolation::Kind::MshrPresent:
        return "mshr-present";
    }
    return "?";
}

namespace {

const char *
stateName(DirEntry::State s)
{
    switch (s) {
      case DirEntry::State::Uncached:
        return "Uncached";
      case DirEntry::State::Shared:
        return "Shared";
      case DirEntry::State::Dirty:
        return "Dirty";
    }
    return "?";
}

const char *
stateName(LineState s)
{
    switch (s) {
      case LineState::Invalid:
        return "I";
      case LineState::Shared:
        return "S";
      case LineState::Dirty:
        return "D";
    }
    return "?";
}

} // namespace

std::string
CoherenceChecker::describeLine(Addr line, const DirEntry &e) const
{
    std::string s = detail::vformat(
        "dir=%s sharers=%s owner=%d wbPending=%d |", stateName(e.state),
        e.sharers.hex().c_str(),
        e.owner == invalidNode ? -1 : static_cast<int>(e.owner),
        msys.writebackPending(line) ? 1 : 0);
    for (NodeId n = 0; n < msys.config().numNodes; ++n) {
        LineState st = msys.secondaryStateOf(n, line);
        bool p = msys.primaryHolds(n, line);
        const MshrSet::Entry *m = msys.mshrEntryOf(n, line);
        if (st == LineState::Invalid && !p && !m)
            continue;
        s += detail::vformat(" n%u:L2=%s%s", n, stateName(st),
                             p ? "+L1" : "");
        if (m)
            s += detail::vformat(
                " mshr(%s%s)", m->exclusive ? "excl" : "shrd",
                m->poisoned ? ",poisoned" : "");
    }
    return s;
}

void
CoherenceChecker::report(InvariantViolation::Kind k, Addr line,
                         const DirEntry &e)
{
    if (!reported.emplace(static_cast<std::uint8_t>(k), line).second)
        return;
    InvariantViolation v;
    v.kind = k;
    v.line = line;
    v.dir = e;
    v.detail = describeLine(line, e);
    if (cfg.failFast)
        panic("coherence invariant '%s' violated at line %#llx: %s",
              violationKindName(k),
              static_cast<unsigned long long>(line), v.detail.c_str());
    viol.push_back(std::move(v));
}

void
CoherenceChecker::checkLine(Addr line)
{
    using Kind = InvariantViolation::Kind;
    const DirEntry e = msys.dirSnapshot(line);
    const NodeId nn = msys.config().numNodes;

    for (NodeId n = 0; n < nn; ++n) {
        LineState st = msys.secondaryStateOf(n, line);
        const MshrSet::Entry *m = msys.mshrEntryOf(n, line);

        // Inclusion: the primary cache only ever holds lines its
        // secondary also holds (fills go through L2; invalidations and
        // evictions drop both levels).
        if (msys.primaryHolds(n, line) && st == LineState::Invalid)
            report(Kind::Inclusion, line, e);

        // A live fill means the line has not installed yet; finding it
        // already in the secondary would double-install on response.
        if (m && !m->poisoned && st != LineState::Invalid)
            report(Kind::MshrPresent, line, e);
    }

    switch (e.state) {
      case DirEntry::State::Dirty: {
        if (e.owner == invalidNode || e.owner >= nn) {
            report(Kind::DirtyExclusive, line, e);
            break;
        }
        // The owner holds the only copy - either installed, still in
        // flight (exclusive fill), or just evicted with the writeback
        // message still traveling to the home.
        const MshrSet::Entry *om = msys.mshrEntryOf(e.owner, line);
        bool ownerOk =
            msys.secondaryStateOf(e.owner, line) == LineState::Dirty ||
            (om && !om->poisoned && om->exclusive) ||
            msys.writebackPending(line);
        if (!ownerOk)
            report(Kind::DirtyExclusive, line, e);
        for (NodeId n = 0; n < nn; ++n) {
            if (n == e.owner)
                continue;
            const MshrSet::Entry *m = msys.mshrEntryOf(n, line);
            if (msys.secondaryStateOf(n, line) != LineState::Invalid ||
                msys.primaryHolds(n, line) || (m && !m->poisoned))
                report(Kind::DirtyExclusive, line, e);
        }
        break;
      }
      case DirEntry::State::Shared: {
        if (e.owner != invalidNode)
            report(Kind::SharedClean, line, e);
        for (NodeId n = 0; n < nn; ++n) {
            LineState st = msys.secondaryStateOf(n, line);
            // Holders must appear in the sharers mask (the mask may be
            // a superset: clean evictions are silent).
            if (st == LineState::Dirty ||
                (st == LineState::Shared && !e.sharers.test(n)))
                report(Kind::SharedClean, line, e);
            // An in-flight *exclusive* fill under a Shared entry means
            // a sharing writeback failed to downgrade it.
            const MshrSet::Entry *m = msys.mshrEntryOf(n, line);
            if (m && !m->poisoned && m->exclusive)
                report(Kind::SharedClean, line, e);
        }
        break;
      }
      case DirEntry::State::Uncached: {
        for (NodeId n = 0; n < nn; ++n) {
            const MshrSet::Entry *m = msys.mshrEntryOf(n, line);
            if (msys.secondaryStateOf(n, line) != LineState::Invalid ||
                msys.primaryHolds(n, line) || (m && !m->poisoned))
                report(Kind::UncachedEmpty, line, e);
        }
        break;
      }
    }
}

void
CoherenceChecker::onTransition(Addr line)
{
    ++transitions;
    checkLine(lineAddr(line));
    if (cfg.auditInterval && transitions % cfg.auditInterval == 0)
        auditAll();
}

void
CoherenceChecker::auditAll()
{
    ++audits;
    std::unordered_set<Addr> lines;
    msys.forEachDirLine(
        [&](Addr line, const DirEntry &) { lines.insert(line); });
    msys.forEachCachedLine(
        [&](NodeId, Addr line, LineState) { lines.insert(line); });
    msys.forEachPrimaryLine(
        [&](NodeId, Addr line) { lines.insert(line); });
    msys.forEachMshr(
        [&](NodeId, Addr line, const MshrSet::Entry &) {
            lines.insert(line);
        });
    for (Addr line : lines)
        checkLine(line);
}

void
CoherenceChecker::finalAudit()
{
    auditAll();
    // Once the event queue drained, every fill response has been
    // delivered, so no MSHR (poisoned or not) may remain.
    msys.forEachMshr([&](NodeId, Addr line, const MshrSet::Entry &) {
        report(InvariantViolation::Kind::MshrPresent, line,
               msys.dirSnapshot(line));
    });
}

} // namespace dashsim
