/**
 * @file
 * Coherence-invariant checker: cross-validates the directory against
 * the per-node cache tags and MSHRs after every protocol transition.
 *
 * The memory system updates directory and cache state eagerly (at
 * transaction-walk time) while data values commit later, so the
 * invariants are phrased over that eager state plus the explicitly
 * modeled in-flight windows:
 *
 *  - a Dirty directory entry's owner may hold the line in its
 *    secondary cache, OR have a live exclusive fill in flight (MSHR),
 *    OR have a dirty-eviction writeback on its way to the home;
 *  - Shared entries list a *superset* of the actual holders, because
 *    clean evictions are silent (the directory is never told);
 *  - a line present in a primary cache must also be in that node's
 *    secondary cache (inclusion);
 *  - a live (non-poisoned) MSHR means the fill has not installed yet,
 *    so the line must not simultaneously be in the secondary cache.
 */

#ifndef CHECK_INVARIANT_HH
#define CHECK_INVARIANT_HH

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/check_config.hh"
#include "mem/mem_system.hh"
#include "sim/types.hh"

namespace dashsim {

/** One detected coherence-protocol inconsistency. */
struct InvariantViolation
{
    enum class Kind : std::uint8_t
    {
        DirtyExclusive, ///< Dirty line: owner lost it, or a second copy
        SharedClean,    ///< Shared line: Dirty copy / holder not in mask
        UncachedEmpty,  ///< Uncached line still cached or in flight
        Inclusion,      ///< primary holds a line its secondary lost
        MshrPresent,    ///< live MSHR for a line already in the secondary
    };

    Kind kind;
    Addr line = 0;      ///< line address the violation is about
    DirEntry dir;       ///< directory snapshot at detection time
    std::string detail; ///< formatted per-node cache/MSHR states
};

/** Human-readable name of a violation kind. */
const char *violationKindName(InvariantViolation::Kind k);

/**
 * The checker itself. Wire its onTransition into
 * MemorySystem::setCheckHook; call finalAudit() after the event queue
 * drains. Detection is O(numNodes) per transition; the periodic and
 * final audits sweep every line known to the directory, any cache, or
 * any MSHR.
 */
class CoherenceChecker
{
  public:
    CoherenceChecker(const MemorySystem &msys, const CheckConfig &cfg)
        : msys(msys), cfg(cfg)
    {}

    /** Incremental check of one line (the memory system's hook). */
    void onTransition(Addr line);

    /** Sweep every known line. */
    void auditAll();

    /** End-of-run audit; also flags MSHRs that never drained. */
    void finalAudit();

    const std::vector<InvariantViolation> &
    violations() const
    {
        return viol;
    }

    std::uint64_t transitionsChecked() const { return transitions; }
    std::uint64_t auditsRun() const { return audits; }

  private:
    void checkLine(Addr line);
    void report(InvariantViolation::Kind k, Addr line, const DirEntry &e);
    std::string describeLine(Addr line, const DirEntry &e) const;

    const MemorySystem &msys;
    CheckConfig cfg;
    std::vector<InvariantViolation> viol;
    /** (kind, line) pairs already reported, to avoid flooding. */
    std::set<std::pair<std::uint8_t, Addr>> reported;
    std::uint64_t transitions = 0;
    std::uint64_t audits = 0;
};

} // namespace dashsim

#endif // CHECK_INVARIANT_HH
