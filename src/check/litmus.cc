#include "check/litmus.hh"

#include <array>
#include <vector>

#include "core/machine.hh"
#include "sim/logging.hh"
#include "tango/sync.hh"

namespace dashsim {

const char *
litmusKindName(LitmusKind k)
{
    switch (k) {
      case LitmusKind::MessagePassing:
        return "message-passing";
      case LitmusKind::StoreBuffering:
        return "store-buffering";
      case LitmusKind::Iriw:
        return "iriw";
    }
    return "?";
}

namespace {

/**
 * All three kernels share the same shape: a reset phase, a barrier, the
 * racing phase with per-iteration delay perturbation (to scan the
 * relative timing of the two sides across the reordering window), and a
 * closing barrier. Observed register values land in regs[iteration].
 *
 * Variable placement engineers the latency gap the reordering needs:
 * the MP data line is home at the reader's node but owned dirty by a
 * third node, so the writer's store takes the full 3-hop remote path
 * (slow commit) while its flag store hits its own dirty line (fast).
 */
class LitmusWorkload : public Workload
{
  public:
    LitmusWorkload(LitmusKind k, unsigned iters) : kind(k), iters(iters) {}

    std::string
    name() const override
    {
        return std::string("litmus-") + litmusKindName(kind);
    }

    void
    setup(Machine &m) override
    {
        fatal_if(m.numProcesses() < 4, "litmus kernels need 4 processes");
        SharedMemory &mem = m.memory();
        switch (kind) {
          case LitmusKind::MessagePassing:
            // data: home at the reader (node 1), reset-owned by node 2.
            // flag: home at the writer (node 0).
            data = mem.allocLocal(lineBytes, 1, lineBytes);
            flag = mem.allocLocal(lineBytes, 0, lineBytes);
            break;
          case LitmusKind::StoreBuffering:
            // Each variable is home at the *other* writer's node, so a
            // store is a remote upgrade (slow) while the cross-read of
            // the locally-homed variable is fast.
            x = mem.allocLocal(lineBytes, 1, lineBytes);
            y = mem.allocLocal(lineBytes, 0, lineBytes);
            break;
          case LitmusKind::Iriw:
            x = mem.allocLocal(lineBytes, 0, lineBytes);
            y = mem.allocLocal(lineBytes, 1, lineBytes);
            break;
        }
        bar = sync::allocBarrier(mem);
        regs.assign(iters, {0, 0, 0, 0});
    }

    SimProcess
    run(Env env) override
    {
        // On machines larger than 4 nodes only the first four
        // processes participate; the rest idle (the scaling litmus
        // runs exercise the protocol paths of a big mesh, not a big
        // working set).
        if (env.pid() >= 4)
            return idle(env);
        switch (kind) {
          case LitmusKind::MessagePassing:
            return runMp(env);
          case LitmusKind::StoreBuffering:
            return runSb(env);
          case LitmusKind::Iriw:
          default:
            return runIriw(env);
        }
    }

    LitmusKind kind;
    unsigned iters;
    Addr data = 0, flag = 0, x = 0, y = 0, bar = 0;
    std::vector<std::array<std::uint32_t, 4>> regs;

  private:
    SimProcess
    idle(Env)
    {
        co_return;
    }

    SimProcess
    runMp(Env env)
    {
        const unsigned pid = env.pid();
        for (unsigned i = 0; i < iters; ++i) {
            if (pid == 2)
                co_await env.write<std::uint32_t>(data, 0);
            if (pid == 0)
                co_await env.write<std::uint32_t>(flag, 0);
            co_await env.barrier(bar, 4);
            if (pid == 0) {
                co_await env.compute(60);
                co_await env.write<std::uint32_t>(data, 1);
                co_await env.write<std::uint32_t>(flag, 1);
            } else if (pid == 1) {
                co_await env.compute(1 + i % 60);
                auto f = co_await env.readRacy<std::uint32_t>(flag);
                auto d = co_await env.readRacy<std::uint32_t>(data);
                regs[i][0] = f;
                regs[i][1] = d;
            }
            co_await env.barrier(bar, 4);
        }
    }

    SimProcess
    runSb(Env env)
    {
        const unsigned pid = env.pid();
        for (unsigned i = 0; i < iters; ++i) {
            if (pid == 0)
                co_await env.write<std::uint32_t>(x, 0);
            if (pid == 1)
                co_await env.write<std::uint32_t>(y, 0);
            co_await env.barrier(bar, 4);
            // Warm both variables into both testers' caches so the
            // cross-reads below can hit before the invalidations land.
            if (pid < 2) {
                (void)co_await env.readRacy<std::uint32_t>(x);
                (void)co_await env.readRacy<std::uint32_t>(y);
            }
            co_await env.barrier(bar, 4);
            if (pid == 0) {
                co_await env.write<std::uint32_t>(x, 1);
                regs[i][0] = co_await env.readRacy<std::uint32_t>(y);
            } else if (pid == 1) {
                co_await env.compute(1 + i % 32);
                co_await env.write<std::uint32_t>(y, 1);
                regs[i][1] = co_await env.readRacy<std::uint32_t>(x);
            }
            co_await env.barrier(bar, 4);
        }
    }

    SimProcess
    runIriw(Env env)
    {
        const unsigned pid = env.pid();
        for (unsigned i = 0; i < iters; ++i) {
            if (pid == 0)
                co_await env.write<std::uint32_t>(x, 0);
            if (pid == 1)
                co_await env.write<std::uint32_t>(y, 0);
            co_await env.barrier(bar, 4);
            if (pid == 0) {
                co_await env.compute(1 + i % 24);
                co_await env.write<std::uint32_t>(x, 1);
            } else if (pid == 1) {
                co_await env.compute(1 + (i * 5) % 24);
                co_await env.write<std::uint32_t>(y, 1);
            } else if (pid == 2) {
                co_await env.compute(1 + (i * 3) % 24);
                regs[i][0] = co_await env.readRacy<std::uint32_t>(x);
                regs[i][1] = co_await env.readRacy<std::uint32_t>(y);
            } else {
                co_await env.compute(1 + (i * 7) % 24);
                regs[i][2] = co_await env.readRacy<std::uint32_t>(y);
                regs[i][3] = co_await env.readRacy<std::uint32_t>(x);
            }
            co_await env.barrier(bar, 4);
        }
    }
};

} // namespace

LitmusResult
runLitmus(LitmusKind k, Consistency model, unsigned iterations,
          std::uint32_t num_nodes)
{
    MachineConfig cfg;
    cfg.mem.numNodes = num_nodes;
    cfg.cpu.consistency = model;
    cfg.check.race = false; // the kernels race on purpose

    // Stretch the remote write-ownership latencies far beyond Table 1.
    // Whether the forbidden outcome can appear is decided by the
    // consistency model (SC stalls on every store; RC pipelines them);
    // the latencies only decide whether the legal reordering window is
    // wide enough to observe at a practical iteration count. At the
    // paper's values the racing read completes a handful of cycles
    // after the slow store commits, so RC's reordering - while
    // architecturally permitted - would essentially never be sampled.
    cfg.mem.lat.writeHome = 200;
    cfg.mem.lat.writeRemote = 200;
    Machine m(cfg);
    LitmusWorkload w(k, iterations);
    m.run(w);

    LitmusResult r;
    r.iterations = iterations;
    for (const auto &v : w.regs) {
        std::string key;
        bool interesting = false;
        switch (k) {
          case LitmusKind::MessagePassing:
            key = detail::vformat("flag=%u data=%u", v[0], v[1]);
            interesting = v[0] == 1 && v[1] == 0;
            break;
          case LitmusKind::StoreBuffering:
            key = detail::vformat("r0=%u r1=%u", v[0], v[1]);
            interesting = v[0] == 0 && v[1] == 0;
            break;
          case LitmusKind::Iriw:
            key = detail::vformat("r1=%u r2=%u r3=%u r4=%u", v[0], v[1],
                                  v[2], v[3]);
            interesting =
                v[0] == 1 && v[1] == 0 && v[2] == 1 && v[3] == 0;
            break;
        }
        r.outcomes[key]++;
        if (interesting)
            r.reordered++;
    }
    return r;
}

} // namespace dashsim
