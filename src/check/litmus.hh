/**
 * @file
 * Memory-consistency litmus harness: small two/four-process kernels
 * run on the full simulated machine under a chosen consistency model,
 * with outcome counting across perturbed iterations.
 *
 *  - MessagePassing (MP):  P0: data=1; flag=1.   P1: spin(flag); r=data.
 *    flag=1 && data=0 is forbidden under SC; under RC the buffered
 *    data write (slow, dirty-remote line) commits after the flag
 *    write (fast, local line), so the stale outcome is observable.
 *  - StoreBuffering (SB):  P0: x=1; r0=y.        P1: y=1; r1=x.
 *    r0==0 && r1==0 is forbidden under SC; under RC reads bypass the
 *    write buffer and both can complete before either write commits.
 *  - Iriw: P0: x=1. P1: y=1. P2: r=x,y. P3: r=y,x. The exotic outcome
 *    (the two readers disagree on the write order) requires
 *    non-store-atomic writes; this machine commits values through a
 *    single arena in completion-time order, so it can never appear -
 *    under either model. The harness doubles as a store-atomicity
 *    check.
 */

#ifndef CHECK_LITMUS_HH
#define CHECK_LITMUS_HH

#include <cstdint>
#include <map>
#include <string>

#include "cpu/cpu_config.hh"

namespace dashsim {

enum class LitmusKind : std::uint8_t
{
    MessagePassing,
    StoreBuffering,
    Iriw,
};

const char *litmusKindName(LitmusKind k);

/** Outcome histogram of one litmus run. */
struct LitmusResult
{
    std::uint64_t iterations = 0;
    /** Iterations showing the SC-forbidden / exotic outcome. */
    std::uint64_t reordered = 0;
    /** Full histogram, keyed by a printable outcome string. */
    std::map<std::string, std::uint64_t> outcomes;
};

/**
 * Run @p iterations perturbed instances of litmus test @p k under
 * consistency model @p model (coherence checking on, race detection
 * off - the kernels race on purpose). @p num_nodes sizes the machine
 * (>= 4); only the first four processes participate, so larger
 * machines exercise the same races across a bigger directory/network.
 */
LitmusResult runLitmus(LitmusKind k, Consistency model,
                       unsigned iterations, std::uint32_t num_nodes = 4);

} // namespace dashsim

#endif // CHECK_LITMUS_HH
