#include "check/race.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dashsim {

RaceDetector::RaceDetector(unsigned nprocs)
    : nprocs(nprocs), vc(nprocs, VC(nprocs, 0))
{
    // Start each clock at 1 so epoch 0 means "never accessed".
    for (unsigned p = 0; p < nprocs; ++p)
        vc[p][p] = 1;
}

void
RaceDetector::joinInto(VC &dst, const VC &src)
{
    for (unsigned i = 0; i < nprocs; ++i)
        dst[i] = std::max(dst[i], src[i]);
}

void
RaceDetector::acquire(unsigned pid, Addr a)
{
    auto it = syncVC.find(a);
    if (it != syncVC.end())
        joinInto(vc[pid], it->second);
}

void
RaceDetector::release(unsigned pid, Addr a)
{
    VC &s = syncVC.try_emplace(a, nprocs, 0).first->second;
    joinInto(s, vc[pid]);
    vc[pid][pid]++;
}

void
RaceDetector::acquireRelease(unsigned pid, Addr a)
{
    VC &s = syncVC.try_emplace(a, nprocs, 0).first->second;
    joinInto(vc[pid], s);
    s = vc[pid];
    vc[pid][pid]++;
}

void
RaceDetector::barrierArrive(unsigned pid, Addr a, unsigned participants)
{
    BarrierState &bs = barriers[a];
    if (bs.acc.empty())
        bs.acc.assign(nprocs, 0);
    joinInto(bs.acc, vc[pid]);
    bs.pids.push_back(pid);
    if (++bs.count < participants)
        return;
    // Rendezvous complete: everyone's post-barrier clock is the join
    // of all arrivals. Arrivals are recorded at issue, so this runs
    // before any participant's first post-barrier operation reaches
    // the stream.
    for (unsigned p : bs.pids) {
        vc[p] = bs.acc;
        vc[p][p]++;
    }
    barriers.erase(a);
}

void
RaceDetector::flagAcquire(unsigned pid, Addr a)
{
    acquire(pid, a);
    // The releasing side of flag synchronization is a write to the
    // flag word. Release-classified writes publish their full clock
    // through syncVC (handled above); for a plain write we still have
    // its epoch in the access history, which orders the writer's
    // pre-flag operations before us.
    auto it = memState.find(a);
    if (it != memState.end() && it->second.wPid >= 0) {
        std::uint32_t &c = vc[pid][it->second.wPid];
        c = std::max(c, it->second.wClk);
    }
}

void
RaceDetector::reportRace(Addr a, unsigned firstPid, bool firstWrite,
                         unsigned secondPid, bool secondWrite)
{
    if (!reportedAddrs.insert(a).second)
        return;
    found.push_back({a, firstPid, secondPid, firstWrite, secondWrite});
}

void
RaceDetector::checkRead(unsigned pid, Addr a)
{
    MemState &s = memState[a];
    if (s.wPid >= 0 && s.wPid != static_cast<std::int32_t>(pid) &&
        s.wClk > vc[pid][s.wPid])
        reportRace(a, s.wPid, true, pid, false);

    std::uint32_t c = vc[pid][pid];
    if (s.rVec) {
        (*s.rVec)[pid] = c;
    } else if (s.rPid < 0 || s.rPid == static_cast<std::int32_t>(pid) ||
               s.rClk <= vc[pid][s.rPid]) {
        // The previous read happens-before this one: keep one epoch.
        s.rPid = static_cast<std::int32_t>(pid);
        s.rClk = c;
    } else {
        // Concurrent readers: escalate to a full read vector.
        s.rVec = std::make_unique<VC>(nprocs, 0);
        (*s.rVec)[s.rPid] = s.rClk;
        (*s.rVec)[pid] = c;
        s.rPid = -1;
    }
}

void
RaceDetector::checkWrite(unsigned pid, Addr a)
{
    MemState &s = memState[a];
    if (s.wPid >= 0 && s.wPid != static_cast<std::int32_t>(pid) &&
        s.wClk > vc[pid][s.wPid])
        reportRace(a, s.wPid, true, pid, true);
    if (s.rVec) {
        for (unsigned q = 0; q < nprocs; ++q)
            if (q != pid && (*s.rVec)[q] > vc[pid][q])
                reportRace(a, q, false, pid, true);
    } else if (s.rPid >= 0 && s.rPid != static_cast<std::int32_t>(pid) &&
               s.rClk > vc[pid][s.rPid]) {
        reportRace(a, s.rPid, false, pid, true);
    }
    s.wPid = static_cast<std::int32_t>(pid);
    s.wClk = vc[pid][pid];
    // Reads before this write are ordered or already reported; later
    // read-write checks only need reads that follow this write.
    s.rPid = -1;
    s.rVec.reset();
}

void
RaceDetector::record(unsigned pid, const TraceOp &op)
{
    panic_if(pid >= nprocs, "race detector saw pid %u of %u", pid, nprocs);
    ++ops;
    switch (op.kind) {
      case TraceOp::Kind::Read:
        checkRead(pid, op.addr);
        break;
      case TraceOp::Kind::Write:
        checkWrite(pid, op.addr);
        break;
      case TraceOp::Kind::WriteRelease:
        checkWrite(pid, op.addr);
        release(pid, op.addr);
        break;
      case TraceOp::Kind::Lock:
      case TraceOp::Kind::QueuedLock:
        acquire(pid, op.addr);
        break;
      case TraceOp::Kind::Unlock:
      case TraceOp::Kind::QueuedUnlock:
        release(pid, op.addr);
        break;
      case TraceOp::Kind::Barrier:
        barrierArrive(pid, op.addr,
                      static_cast<unsigned>(op.operand));
        break;
      case TraceOp::Kind::WaitFlag:
        flagAcquire(pid, op.addr);
        break;
      case TraceOp::Kind::FetchAdd:
      case TraceOp::Kind::TestAndSet:
        acquireRelease(pid, op.addr);
        break;
      case TraceOp::Kind::Prefetch:
      case TraceOp::Kind::PrefetchEx:
      case TraceOp::Kind::ReadRacy:
      case TraceOp::Kind::WriteRacy:
        // Prefetches move no values; ReadRacy/WriteRacy are the
        // proper-labeling annotations for deliberate races - all
        // benign.
        break;
    }
}

} // namespace dashsim
