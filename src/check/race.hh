/**
 * @file
 * Happens-before data-race detector over the typed reference stream.
 *
 * The detector consumes the same TraceSink stream a TraceRecorder
 * does. It maintains one vector clock per Tango process, advanced at
 * the labeled synchronization operations:
 *
 *  - Lock / QueuedLock acquire at the grant (the stream records
 *    acquires at resume time, after the release that handed the lock
 *    over), Unlock / QueuedUnlock release at issue;
 *  - barrier rendezvous: arrivals accumulate, the Nth arrival joins
 *    every participant's clock (arrivals are recorded at issue, so the
 *    join lands before any participant's post-barrier operation);
 *  - WaitFlag acquires from the flag's last releasing write;
 *  - atomic FetchAdd / TestAndSet act as acquire+release on their
 *    word (work counters and ad-hoc flags synchronize through them).
 *
 * Per-address access metadata follows FastTrack: a last-write epoch, a
 * last-read epoch that escalates to a full read vector only when reads
 * are genuinely concurrent. ReadRacy operations - the annotation that
 * makes a program with intentional races "properly labeled" in the
 * paper's sense - are ignored entirely.
 */

#ifndef CHECK_RACE_HH
#define CHECK_RACE_HH

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "tango/trace_sink.hh"

namespace dashsim {

/** One detected unsynchronized conflicting access pair. */
struct DataRace
{
    Addr addr = 0;
    unsigned firstPid = 0;  ///< earlier access (not ordered before...)
    unsigned secondPid = 0; ///< ...the later one
    bool firstWrite = false;
    bool secondWrite = false;
};

class RaceDetector : public TraceSink
{
  public:
    explicit RaceDetector(unsigned nprocs);

    void record(unsigned pid, const TraceOp &op) override;
    void computeCycles(unsigned, Tick) override {}

    /** Detected races, deduplicated by address. */
    const std::vector<DataRace> &races() const { return found; }

    std::uint64_t opsSeen() const { return ops; }

  private:
    using VC = std::vector<std::uint32_t>;

    /** Per-address access history (FastTrack-style). */
    struct MemState
    {
        std::uint32_t wClk = 0;
        std::int32_t wPid = -1;
        std::uint32_t rClk = 0;
        std::int32_t rPid = -1;
        std::unique_ptr<VC> rVec; ///< escalated concurrent-read clocks
    };

    /** In-progress barrier episode at one barrier address. */
    struct BarrierState
    {
        VC acc;
        unsigned count = 0;
        std::vector<unsigned> pids;
    };

    void joinInto(VC &dst, const VC &src);
    void acquire(unsigned pid, Addr a);
    void release(unsigned pid, Addr a);
    void acquireRelease(unsigned pid, Addr a);
    void barrierArrive(unsigned pid, Addr a, unsigned participants);
    void flagAcquire(unsigned pid, Addr a);
    void checkRead(unsigned pid, Addr a);
    void checkWrite(unsigned pid, Addr a);
    void reportRace(Addr a, unsigned firstPid, bool firstWrite,
                    unsigned secondPid, bool secondWrite);

    unsigned nprocs;
    std::vector<VC> vc;                         ///< per-pid clocks
    std::unordered_map<Addr, VC> syncVC;        ///< per sync object
    std::unordered_map<Addr, BarrierState> barriers;
    std::unordered_map<Addr, MemState> memState;
    std::vector<DataRace> found;
    std::set<Addr> reportedAddrs;
    std::uint64_t ops = 0;
};

} // namespace dashsim

#endif // CHECK_RACE_HH
