#include "core/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "core/machine.hh"

namespace dashsim::ckpt {

std::uint64_t
fnv1a(const void *p, std::size_t n, std::uint64_t h)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
writeFile(const std::string &path, const std::vector<std::uint8_t> &blob)
{
    // Per-thread temp name: concurrent batch jobs that miss on the same
    // key each write their own temp file; the renames are atomic and
    // the blobs are byte-identical, so last-rename-wins is harmless.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(std::hash<std::thread::id>{}(
            std::this_thread::get_id()));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("checkpoint: cannot open %s for writing", tmp.c_str());
            return false;
        }
        os.write(reinterpret_cast<const char *>(blob.data()),
                 static_cast<std::streamsize>(blob.size()));
        if (!os) {
            warn("checkpoint: short write to %s", tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("checkpoint: rename %s -> %s failed", tmp.c_str(),
             path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        return false;
    const auto size = is.tellg();
    if (size < 0)
        return false;
    out.resize(static_cast<std::size_t>(size));
    is.seekg(0);
    is.read(reinterpret_cast<char *>(out.data()),
            static_cast<std::streamsize>(out.size()));
    return static_cast<bool>(is);
}

} // namespace dashsim::ckpt

namespace dashsim {

std::uint64_t
configHash(const MachineConfig &cfg)
{
    // Every field that changes simulated behavior goes into the hash in
    // a fixed order. Observability and checker settings are *excluded*:
    // results are byte-identical across them by construction, so a
    // checkpoint captured with them off is valid for any of those
    // settings a warm-started run is eligible under (eligibility
    // independently requires them off).
    ckpt::Writer w;
    const MemConfig &m = cfg.mem;
    w.u32(m.numNodes);
    w.u32(m.primary.sizeBytes);
    w.u32(m.primary.ways);
    w.u32(m.secondary.sizeBytes);
    w.u32(m.secondary.ways);
    w.u32(m.writeBufferDepth);
    w.u32(m.prefetchBufferDepth);
    w.u32(m.mshrs);
    w.u8(m.cacheSharedData ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(m.dirFormat));
    w.u32(m.dirPointers);
    w.u32(m.dirRegionSize);
    const LatencyConfig &l = m.lat;
    w.u64(l.readPrimaryHit);
    w.u64(l.readSecondary);
    w.u64(l.readLocal);
    w.u64(l.readHome);
    w.u64(l.readRemote);
    w.u64(l.writeSecondary);
    w.u64(l.writeLocal);
    w.u64(l.writeHome);
    w.u64(l.writeRemote);
    w.u64(l.busOccupancy);
    w.u64(l.busCtlOccupancy);
    w.u64(l.dirOccupancy);
    w.u64(l.netDataOccupancy);
    w.u64(l.netCtlOccupancy);
    w.u64(l.netHop);
    w.u8(l.mesh ? 1 : 0);
    w.u64(l.meshBase);
    w.u64(l.meshPerHop);
    w.u8(l.torus ? 1 : 0);
    w.u64(l.invalAckLatency);
    w.u64(l.uncachedDiscount);
    w.u64(l.primaryFillBusy);
    const CpuConfig &c = cfg.cpu;
    w.u8(static_cast<std::uint8_t>(c.consistency));
    w.u32(c.numContexts);
    w.u64(c.switchCycles);
    w.u8(c.prefetch ? 1 : 0);
    w.u64(c.switchThreshold);
    w.u64(c.prefetchIssueCost);
    // cpu.fastPath and cpu.fastPathFuzzSeed are deliberately excluded:
    // the fast path is byte-identical by construction, so one
    // checkpoint serves both settings (fastpath_diff_test relies on
    // this when it byte-compares warm-started runs across the knob).
    // cfg.shards is excluded too: checkpoints require the sequential
    // kernel, and eligibility enforces that separately.
    return ckpt::fnv1a(w.data().data(), w.data().size());
}

} // namespace dashsim
