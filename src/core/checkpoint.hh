/**
 * @file
 * Barrier-point checkpoint serialization: a small, explicit binary
 * format (little-endian, tagged sections) used by Machine::captureRun /
 * Machine::resumeRun to save a quiescent machine + workload state and
 * warm-start later runs that share the same configuration prefix.
 *
 * The format is deliberately dumb: fixed-width scalars written in call
 * order, with u32 section tags sprinkled in so that a reader/writer
 * mismatch fails loudly at the first divergent tag instead of
 * misinterpreting bytes. Checkpoints are an on-disk cache keyed by
 * (workload key, config hash); any format change bumps ckptVersion and
 * silently invalidates old files.
 */

#ifndef CORE_CHECKPOINT_HH
#define CORE_CHECKPOINT_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace dashsim::ckpt {

/** Bump on any layout change; readers reject other versions. */
/** v2: SharerSet directory encoding (variable-width sharer words +
 *  overflow flag), mesh link calendars, and directory-format
 *  accounting counters. v1 images are rejected at the header check. */
inline constexpr std::uint32_t ckptVersion = 2;

/** Magic number leading every checkpoint blob ("DSCK"). */
inline constexpr std::uint32_t ckptMagic = 0x4453434bu;

/** Append-only little-endian scalar writer. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf.insert(buf.end(), b, b + n);
    }

    /** Section marker; the Reader asserts it back with expect(). */
    void tag(std::uint32_t t) { u32(t); }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked reader over a checkpoint blob; fatal on overrun. */
class Reader
{
  public:
    Reader(const std::uint8_t *p, std::size_t n) : p(p), end(p + n) {}

    explicit Reader(const std::vector<std::uint8_t> &v)
        : Reader(v.data(), v.size())
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*p++) << (8 * i);
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }

    void
    bytes(void *out, std::size_t n)
    {
        need(n);
        std::memcpy(out, p, n);
        p += n;
    }

    /** Assert the next u32 equals @p t (section-tag cross-check). */
    void
    expect(std::uint32_t t)
    {
        std::uint32_t got = u32();
        fatal_if(got != t,
                 "checkpoint section tag mismatch: want %#x got %#x", t,
                 got);
    }

    bool done() const { return p == end; }
    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  private:
    void
    need(std::size_t n)
    {
        fatal_if(static_cast<std::size_t>(end - p) < n,
                 "checkpoint blob truncated (need %zu, have %zu)", n,
                 static_cast<std::size_t>(end - p));
    }

    const std::uint8_t *p;
    const std::uint8_t *end;
};

/** FNV-1a over @p n bytes, chained through @p h. */
std::uint64_t fnv1a(const void *p, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL);

/**
 * Write @p blob to @p path atomically (temp file + rename), so a
 * concurrent reader never sees a half-written checkpoint. Returns false
 * (with a warn) on I/O error.
 */
bool writeFile(const std::string &path,
               const std::vector<std::uint8_t> &blob);

/** Read @p path into @p out; false if missing or unreadable. */
bool readFile(const std::string &path, std::vector<std::uint8_t> &out);

} // namespace dashsim::ckpt

#endif // CORE_CHECKPOINT_HH
