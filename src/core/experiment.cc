#include "core/experiment.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"
#include "core/shard.hh"
#include "sim/logging.hh"

namespace dashsim {

std::string
Technique::label() const
{
    std::string s;
    if (!caches)
        s += "NoCache ";
    switch (consistency) {
      case Consistency::SC:
        s += "SC";
        break;
      case Consistency::PC:
        s += "PC";
        break;
      case Consistency::WC:
        s += "WC";
        break;
      case Consistency::RC:
        s += "RC";
        break;
    }
    if (prefetch)
        s += "+PF";
    if (contexts > 1) {
        s += " " + std::to_string(contexts) + "ctx/sw" +
             std::to_string(switchCycles);
    }
    return s;
}

Technique
Technique::noCache()
{
    Technique t;
    t.caches = false;
    return t;
}

Technique
Technique::sc()
{
    return Technique{};
}

Technique
Technique::rc()
{
    Technique t;
    t.consistency = Consistency::RC;
    return t;
}

Technique
Technique::pc()
{
    Technique t;
    t.consistency = Consistency::PC;
    return t;
}

Technique
Technique::wc()
{
    Technique t;
    t.consistency = Consistency::WC;
    return t;
}

Technique
Technique::scPrefetch()
{
    Technique t;
    t.prefetch = true;
    return t;
}

Technique
Technique::rcPrefetch()
{
    Technique t;
    t.consistency = Consistency::RC;
    t.prefetch = true;
    return t;
}

Technique
Technique::multiContext(std::uint32_t n, Tick switch_cycles, Consistency c,
                        bool prefetch)
{
    Technique t;
    t.contexts = n;
    t.switchCycles = switch_cycles;
    t.consistency = c;
    t.prefetch = prefetch;
    return t;
}

MachineConfig
makeMachineConfig(const Technique &t, const MemConfig &base)
{
    MachineConfig cfg;
    cfg.mem = base;
    cfg.mem.cacheSharedData = t.caches;
    cfg.cpu.consistency = t.consistency;
    cfg.cpu.prefetch = t.prefetch;
    cfg.cpu.numContexts = t.contexts;
    cfg.cpu.switchCycles = t.switchCycles;
    return cfg;
}

RunResult
runExperiment(const WorkloadFactory &factory, const Technique &t,
              const MemConfig &base)
{
    Machine m(makeMachineConfig(t, base));
    auto w = factory();
    return m.run(*w);
}

unsigned
defaultJobs()
{
    if (const char *e = std::getenv("DASHSIM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(e, &end, 10);
        if (end != e && *end == '\0' && v > 0 && v <= 1024)
            return static_cast<unsigned>(v);
        warn("ignoring invalid DASHSIM_JOBS=%s", e);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::size_t
RunBatch::add(RunPoint p)
{
    points.push_back(std::move(p));
    return points.size() - 1;
}

std::size_t
RunBatch::add(WorkloadFactory factory, const Technique &t,
              const MemConfig &base, std::string label)
{
    return add(RunPoint{std::move(factory), t, base, std::move(label),
                        {}, {}});
}

unsigned
RunBatch::jobs() const
{
    return njobs ? njobs : defaultJobs();
}

namespace {

/**
 * Checkpoint cache key for warm starts (DASHSIM_CKPT_DIR): the
 * workload's checkpointKey() hashed together with configHash(). The
 * config hash deliberately excludes the fast-path, fuzz-seed, shard,
 * checker, and observability knobs - results are byte-identical across
 * those by construction, so sweep points that differ only in them
 * share one checkpoint.
 */
std::string
ckptCachePath(const char *dir, const Workload &w, const MachineConfig &cfg)
{
    const std::string key = w.checkpointKey();
    std::uint64_t h = ckpt::fnv1a(key.data(), key.size());
    const std::uint64_t ch = configHash(cfg);
    h = ckpt::fnv1a(&ch, sizeof(ch), h);
    char name[24];
    std::snprintf(name, sizeof(name), "%016llx.ckpt",
                  static_cast<unsigned long long>(h));
    return std::string(dir) + "/" + name;
}

/**
 * A cached blob is usable only when its header carries this build's
 * magic and version. Stale entries (an image from a build with a
 * different serialization format, e.g. the pre-SharerSet u32 sharer
 * encoding) are rejected here and recaptured in place rather than
 * reaching resumeRun, which would fatal on them.
 */
bool
ckptHeaderCurrent(const std::vector<std::uint8_t> &blob)
{
    if (blob.size() < 8)
        return false;
    ckpt::Reader r(blob);
    return r.u32() == ckpt::ckptMagic && r.u32() == ckpt::ckptVersion;
}

/**
 * Execute one point start-to-finish on the calling thread. Errors are
 * captured into the outcome instead of terminating, and warn/inform
 * output is buffered per run so concurrent points never interleave.
 *
 * When DASHSIM_CKPT_DIR is set and the point is checkpoint-eligible,
 * the run warm-starts: a cache miss simulates the common prefix once,
 * captures it at the workload's last guaranteed barrier episode, and
 * publishes the blob; hits (including every later point of the sweep
 * that shares the prefix) resume from the blob instead of
 * re-simulating it. Both paths produce the result through resumeRun()
 * on a fresh machine, so a miss and a hit are byte-identical.
 */
RunOutcome
runPoint(const RunPoint &p)
{
    RunOutcome o;
    o.label = p.label;
    ScopedErrorCapture errors;
    ScopedLogCapture logs;
    try {
        if (!p.factory)
            throw SimError(SimError::Kind::Fatal, "null workload factory");
        auto w = p.factory();
        MachineConfig cfg = makeMachineConfig(p.technique, p.base);
        if (p.configure)
            p.configure(cfg);
        Machine m(cfg);
        const char *ckdir = std::getenv("DASHSIM_CKPT_DIR");
        const bool warm =
            ckdir && *ckdir && w->checkpointable() &&
            Machine::checkpointEligible(cfg) && !m.shardPlan().sharded() &&
            !std::getenv("DASHSIM_TIMELINE") &&
            !std::getenv("DASHSIM_REGISTRY");
        if (!warm) {
            o.result = m.run(*w);
            if (p.inspect)
                p.inspect(m, o.result);
        } else {
            const std::string path = ckptCachePath(ckdir, *w, cfg);
            std::vector<std::uint8_t> blob;
            if (!ckpt::readFile(path, blob) || !ckptHeaderCurrent(blob)) {
                blob = m.captureRun(*w, w->checkpointEpisodes());
                if (!ckpt::writeFile(path, blob))
                    warn("checkpoint cache write failed: %s",
                         path.c_str());
            }
            // The capturing machine (if any) is spent; resume on a
            // fresh machine with a fresh workload instance.
            auto w2 = p.factory();
            Machine m2(cfg);
            o.result = m2.resumeRun(*w2, blob);
            if (p.inspect)
                p.inspect(m2, o.result);
        }
        o.ok = true;
    } catch (const SimError &e) {
        o.error = std::string(e.kind() == SimError::Kind::Panic
                                  ? "panic: " : "fatal: ") + e.what();
    } catch (const std::exception &e) {
        o.error = e.what();
    }
    o.log = logs.take();
    return o;
}

} // namespace

std::vector<RunOutcome>
RunBatch::run() const
{
    std::vector<RunOutcome> outcomes(points.size());
    if (points.empty())
        return outcomes;

    // Resolve the worker count under a log capture: defaultJobs() warns
    // about an invalid DASHSIM_JOBS value, and that warning must flow
    // through the same buffered path as every per-point message instead
    // of hitting stderr uncaptured mid-batch.
    unsigned nworkers;
    std::string setup_log;
    {
        ScopedLogCapture logs;
        nworkers = jobs();
        // Nested-parallelism guard: with DASHSIM_SHARDS > 1 every run
        // owns that many kernel shards, so clamp the batch so that
        // jobs x shards never exceeds the host-thread budget.
        const std::uint32_t shards = shardsFromEnv();
        if (shards > 1 && nworkers > 1) {
            const unsigned budget = defaultJobs();
            const unsigned cap =
                std::max(1u, budget / static_cast<unsigned>(shards));
            if (nworkers > cap) {
                warn("DASHSIM_SHARDS=%u with %u jobs oversubscribes the "
                     "%u-thread host budget; clamping jobs to %u",
                     shards, nworkers, budget, cap);
                nworkers = cap;
            }
        }
        setup_log = logs.take();
    }

    // No point spinning up more workers than points.
    if (nworkers > points.size())
        nworkers = static_cast<unsigned>(points.size());

    if (nworkers <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i)
            outcomes[i] = runPoint(points[i]);
    } else {
        // Each worker claims the next unstarted point; every outcome
        // lands in its submission slot, so the schedule never affects
        // the output.
        std::atomic<std::size_t> next{0};
        auto work = [this, &next, &outcomes] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= points.size())
                    return;
                outcomes[i] = runPoint(points[i]);
            }
        };

        std::vector<std::thread> workers;
        workers.reserve(nworkers);
        for (unsigned w = 0; w < nworkers; ++w)
            workers.emplace_back(work);
        for (auto &t : workers)
            t.join();
    }

    if (!setup_log.empty())
        outcomes.front().log.insert(0, setup_log);
    return outcomes;
}

std::vector<RunOutcome>
runBatch(std::vector<RunPoint> points, unsigned jobs)
{
    RunBatch b(jobs);
    for (auto &p : points)
        b.add(std::move(p));
    return b.run();
}

std::vector<RunResult>
runExperiments(const WorkloadFactory &factory,
               const std::vector<Technique> &ts, const MemConfig &base,
               unsigned jobs)
{
    RunBatch b(jobs);
    for (const auto &t : ts)
        b.add(factory, t, base, t.label());
    auto outcomes = b.run();

    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (auto &o : outcomes) {
        if (!o.log.empty())
            std::fputs(o.log.c_str(), stderr);
        fatal_if(!o.ok, "experiment '%s' failed: %s", o.label.c_str(),
                 o.error.c_str());
        results.push_back(std::move(o.result));
    }
    return results;
}

std::vector<std::pair<std::string, WorkloadFactory>>
paperWorkloads()
{
    return {
        {"MP3D", [] { return std::make_unique<Mp3d>(); }},
        {"LU", [] { return std::make_unique<Lu>(); }},
        {"PTHOR", [] { return std::make_unique<Pthor>(); }},
    };
}

std::vector<std::pair<std::string, WorkloadFactory>>
testWorkloads()
{
    return {
        {"MP3D", testWorkload("MP3D")},
        {"LU", testWorkload("LU")},
        {"PTHOR", testWorkload("PTHOR")},
    };
}

WorkloadFactory
testWorkload(const std::string &name, std::uint64_t seed)
{
    if (name == "MP3D") {
        return [seed] {
            Mp3dConfig c;
            c.particles = 800;
            c.steps = 2;
            if (seed)
                c.seed = seed;
            return std::make_unique<Mp3d>(c);
        };
    }
    if (name == "LU") {
        return [seed] {
            LuConfig c;
            c.n = 48;
            if (seed)
                c.seed = seed;
            return std::make_unique<Lu>(c);
        };
    }
    fatal_if(name != "PTHOR", "unknown test workload '%s'", name.c_str());
    return [seed] {
        // Sized so the paper's qualitative shapes survive the scale-down
        // (smaller circuits under-express the caching benefit: the
        // fixed sync costs dominate and the Figure 2 speedup collapses).
        PthorConfig c;
        c.elements = 2400;
        c.flipflops = 240;
        c.primaryInputs = 32;
        c.levels = 6;
        c.clockCycles = 2;
        if (seed)
            c.seed = seed;
        return std::make_unique<Pthor>(c);
    };
}

} // namespace dashsim
