#include "core/experiment.hh"

#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"

namespace dashsim {

std::string
Technique::label() const
{
    std::string s;
    if (!caches)
        s += "NoCache ";
    switch (consistency) {
      case Consistency::SC:
        s += "SC";
        break;
      case Consistency::PC:
        s += "PC";
        break;
      case Consistency::WC:
        s += "WC";
        break;
      case Consistency::RC:
        s += "RC";
        break;
    }
    if (prefetch)
        s += "+PF";
    if (contexts > 1) {
        s += " " + std::to_string(contexts) + "ctx/sw" +
             std::to_string(switchCycles);
    }
    return s;
}

Technique
Technique::noCache()
{
    Technique t;
    t.caches = false;
    return t;
}

Technique
Technique::sc()
{
    return Technique{};
}

Technique
Technique::rc()
{
    Technique t;
    t.consistency = Consistency::RC;
    return t;
}

Technique
Technique::pc()
{
    Technique t;
    t.consistency = Consistency::PC;
    return t;
}

Technique
Technique::wc()
{
    Technique t;
    t.consistency = Consistency::WC;
    return t;
}

Technique
Technique::scPrefetch()
{
    Technique t;
    t.prefetch = true;
    return t;
}

Technique
Technique::rcPrefetch()
{
    Technique t;
    t.consistency = Consistency::RC;
    t.prefetch = true;
    return t;
}

Technique
Technique::multiContext(std::uint32_t n, Tick switch_cycles, Consistency c,
                        bool prefetch)
{
    Technique t;
    t.contexts = n;
    t.switchCycles = switch_cycles;
    t.consistency = c;
    t.prefetch = prefetch;
    return t;
}

MachineConfig
makeMachineConfig(const Technique &t, const MemConfig &base)
{
    MachineConfig cfg;
    cfg.mem = base;
    cfg.mem.cacheSharedData = t.caches;
    cfg.cpu.consistency = t.consistency;
    cfg.cpu.prefetch = t.prefetch;
    cfg.cpu.numContexts = t.contexts;
    cfg.cpu.switchCycles = t.switchCycles;
    return cfg;
}

RunResult
runExperiment(const WorkloadFactory &factory, const Technique &t,
              const MemConfig &base)
{
    Machine m(makeMachineConfig(t, base));
    auto w = factory();
    return m.run(*w);
}

std::vector<std::pair<std::string, WorkloadFactory>>
paperWorkloads()
{
    return {
        {"MP3D", [] { return std::make_unique<Mp3d>(); }},
        {"LU", [] { return std::make_unique<Lu>(); }},
        {"PTHOR", [] { return std::make_unique<Pthor>(); }},
    };
}

std::vector<std::pair<std::string, WorkloadFactory>>
testWorkloads()
{
    return {
        {"MP3D",
         [] {
             Mp3dConfig c;
             c.particles = 800;
             c.steps = 2;
             return std::make_unique<Mp3d>(c);
         }},
        {"LU",
         [] {
             LuConfig c;
             c.n = 48;
             return std::make_unique<Lu>(c);
         }},
        {"PTHOR",
         [] {
             PthorConfig c;
             c.elements = 1200;
             c.flipflops = 120;
             c.primaryInputs = 32;
             c.levels = 6;
             c.clockCycles = 2;
             return std::make_unique<Pthor>(c);
         }},
    };
}

} // namespace dashsim
