/**
 * @file
 * The technique-configuration layer: the paper's experimental knobs
 * (caching, consistency model, prefetching, multiple contexts) and a
 * runner that builds a machine and executes a workload under them.
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hh"

namespace dashsim {

/**
 * One point in the paper's technique space.
 */
struct Technique
{
    bool caches = true;                          ///< Section 3
    Consistency consistency = Consistency::SC;   ///< Section 4
    bool prefetch = false;                       ///< Section 5
    std::uint32_t contexts = 1;                  ///< Section 6
    Tick switchCycles = 4;

    /** Human-readable label, e.g. "RC+PF 4ctx". */
    std::string label() const;

    // Named points used throughout the benches.
    static Technique noCache();
    static Technique sc();
    static Technique rc();
    static Technique pc();  ///< processor consistency (extension)
    static Technique wc();  ///< weak consistency (extension)
    static Technique scPrefetch();
    static Technique rcPrefetch();
    static Technique multiContext(std::uint32_t n, Tick switch_cycles,
                                  Consistency c = Consistency::SC,
                                  bool prefetch = false);
};

/** Build a machine configuration for a technique point. */
MachineConfig makeMachineConfig(const Technique &t,
                                const MemConfig &base = {});

/** Factory so each run gets a fresh workload instance. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** Run @p factory's workload under technique @p t. */
RunResult runExperiment(const WorkloadFactory &factory, const Technique &t,
                        const MemConfig &base = {});

/** The paper's three benchmarks with their Section 2 data sets. */
std::vector<std::pair<std::string, WorkloadFactory>> paperWorkloads();

/** Scaled-down variants for unit/integration tests (fast). */
std::vector<std::pair<std::string, WorkloadFactory>> testWorkloads();

} // namespace dashsim

#endif // CORE_EXPERIMENT_HH
