/**
 * @file
 * The technique-configuration layer: the paper's experimental knobs
 * (caching, consistency model, prefetching, multiple contexts) and a
 * runner that builds a machine and executes a workload under them.
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hh"

namespace dashsim {

/**
 * One point in the paper's technique space.
 */
struct Technique
{
    bool caches = true;                          ///< Section 3
    Consistency consistency = Consistency::SC;   ///< Section 4
    bool prefetch = false;                       ///< Section 5
    std::uint32_t contexts = 1;                  ///< Section 6
    Tick switchCycles = 4;

    /** Human-readable label, e.g. "RC+PF 4ctx". */
    std::string label() const;

    // Named points used throughout the benches.
    static Technique noCache();
    static Technique sc();
    static Technique rc();
    static Technique pc();  ///< processor consistency (extension)
    static Technique wc();  ///< weak consistency (extension)
    static Technique scPrefetch();
    static Technique rcPrefetch();
    static Technique multiContext(std::uint32_t n, Tick switch_cycles,
                                  Consistency c = Consistency::SC,
                                  bool prefetch = false);
};

/** Build a machine configuration for a technique point. */
MachineConfig makeMachineConfig(const Technique &t,
                                const MemConfig &base = {});

/** Factory so each run gets a fresh workload instance. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** Run @p factory's workload under technique @p t. */
RunResult runExperiment(const WorkloadFactory &factory, const Technique &t,
                        const MemConfig &base = {});

/** One point of a batch: @p factory's workload under @p technique. */
struct RunPoint
{
    WorkloadFactory factory;
    Technique technique{};
    MemConfig base{};
    std::string label;  ///< carried through to the outcome, optional

    /** Optional last-mile adjustment of the built machine config, for
     *  knobs outside the technique space (e.g. switchThreshold). */
    std::function<void(MachineConfig &)> configure;

    /**
     * Optional observer invoked after a successful run, while the
     * machine is still alive (post-run inspection). Runs on the worker
     * thread executing this point; it must not touch state shared with
     * other points.
     */
    std::function<void(Machine &, const RunResult &)> inspect;
};

/** What one batch point produced: a result or a captured error. */
struct RunOutcome
{
    std::string label;
    RunResult result{};
    bool ok = false;
    std::string error;  ///< why the run failed (empty when ok)
    std::string log;    ///< warn()/inform() output captured by the run
};

/**
 * Worker count for a batch: the DASHSIM_JOBS environment variable when
 * set to a positive integer, otherwise the host's hardware concurrency
 * (at least 1).
 */
unsigned defaultJobs();

/**
 * A batch of independent experiment points executed concurrently on a
 * host thread pool.
 *
 * Every point is fully self-contained (its own Machine, workload
 * instance, and per-run RNGs), so results are bit-identical at any job
 * count and across repeated runs. A point that panics, fatals, or
 * throws reports its error in its outcome; sibling points complete
 * normally. Outcomes always come back in submission order.
 */
class RunBatch
{
  public:
    /** @p jobs worker threads; 0 means defaultJobs(). */
    explicit RunBatch(unsigned jobs = 0) : njobs(jobs) {}

    /** Queue a point; returns its index in the outcome vector. */
    std::size_t add(RunPoint p);
    std::size_t add(WorkloadFactory factory, const Technique &t,
                    const MemConfig &base = {}, std::string label = {});

    std::size_t size() const { return points.size(); }

    /** Worker threads run() will use (resolves 0 to defaultJobs()). */
    unsigned jobs() const;

    /**
     * Execute all queued points and return their outcomes in
     * submission order. The queue is kept, so a batch can be re-run.
     */
    std::vector<RunOutcome> run() const;

  private:
    unsigned njobs;
    std::vector<RunPoint> points;
};

/** One-shot convenience over RunBatch. */
std::vector<RunOutcome> runBatch(std::vector<RunPoint> points,
                                 unsigned jobs = 0);

/**
 * Run @p factory's workload under each technique concurrently and
 * return the RunResults in order; fatal() on any failed point.
 */
std::vector<RunResult> runExperiments(const WorkloadFactory &factory,
                                      const std::vector<Technique> &ts,
                                      const MemConfig &base = {},
                                      unsigned jobs = 0);

/** The paper's three benchmarks with their Section 2 data sets. */
std::vector<std::pair<std::string, WorkloadFactory>> paperWorkloads();

/** Scaled-down variants for unit/integration tests (fast). */
std::vector<std::pair<std::string, WorkloadFactory>> testWorkloads();

/**
 * Scaled-down factory for one app ("MP3D", "LU", or "PTHOR") with the
 * app's RNG reseeded: @p seed = 0 keeps the app's default seed, any
 * other value perturbs workload generation (particle placement,
 * circuit topology, stimulus) deterministically.
 */
WorkloadFactory testWorkload(const std::string &name,
                             std::uint64_t seed = 0);

} // namespace dashsim

#endif // CORE_EXPERIMENT_HH
