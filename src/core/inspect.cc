#include "core/inspect.hh"

#include <cstdio>

namespace dashsim {

const char *
serviceLevelName(ServiceLevel lvl)
{
    switch (lvl) {
      case ServiceLevel::PrimaryHit:
        return "primary hit";
      case ServiceLevel::SecondaryHit:
        return "secondary fill";
      case ServiceLevel::LocalNode:
        return "local node";
      case ServiceLevel::HomeNode:
        return "home node";
      case ServiceLevel::RemoteNode:
        return "dirty remote";
      case ServiceLevel::Combined:
        return "combined";
      case ServiceLevel::Uncached:
        return "uncached";
    }
    return "?";
}

MemoryInspection
inspectMemory(Machine &m, Tick exec_time)
{
    MemoryInspection mi;
    MemorySystem &ms = m.memSystem();
    const std::uint32_t nodes = m.config().mem.numNodes;

    double util_sum = 0.0;
    for (NodeId n = 0; n < nodes; ++n) {
        const auto &st = ms.stats(n);
        for (int i = 0; i < 7; ++i)
            mi.serviceCounts[static_cast<std::size_t>(i)] +=
                st.serviceCount[i];
        mi.invalidations += st.invalidationsReceived;
        mi.prefetchesIssued += st.prefetchesIssued;
        mi.prefetchesDropped += st.prefetchesDropped;

        double u = ms.busUtilization(n, exec_time);
        util_sum += u;
        if (u > mi.maxBusUtilization) {
            mi.maxBusUtilization = u;
            mi.busiestNode = n;
        }
    }
    mi.avgBusUtilization = nodes ? util_sum / nodes : 0.0;

    auto lvl = [&](ServiceLevel l) {
        return mi.serviceCounts[static_cast<std::size_t>(l)];
    };
    std::uint64_t misses = lvl(ServiceLevel::LocalNode) +
                           lvl(ServiceLevel::HomeNode) +
                           lvl(ServiceLevel::RemoteNode);
    std::uint64_t remote = lvl(ServiceLevel::HomeNode) +
                           lvl(ServiceLevel::RemoteNode);
    mi.remoteMissFraction =
        misses ? static_cast<double>(remote) /
                     static_cast<double>(misses)
               : 0.0;

    if (CoherenceChecker *cc = m.coherenceChecker()) {
        mi.checksEnabled = true;
        mi.checkTransitions = cc->transitionsChecked();
        mi.checkAudits = cc->auditsRun();
        mi.coherenceViolations = cc->violations().size();
    }
    if (RaceDetector *rd = m.raceDetector()) {
        mi.checksEnabled = true;
        mi.racesDetected = rd->races().size();
    }
    return mi;
}

void
printInspection(std::ostream &os, const MemoryInspection &mi)
{
    char buf[128];
    std::uint64_t total = 0;
    for (auto c : mi.serviceCounts)
        total += c;

    os << "memory-system inspection\n";
    for (int i = 0; i < 7; ++i) {
        auto c = mi.serviceCounts[static_cast<std::size_t>(i)];
        if (!c)
            continue;
        std::snprintf(buf, sizeof(buf), "  %-16s %12llu  (%5.1f%%)\n",
                      serviceLevelName(static_cast<ServiceLevel>(i)),
                      static_cast<unsigned long long>(c),
                      total ? 100.0 * static_cast<double>(c) /
                                  static_cast<double>(total)
                            : 0.0);
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  remote-miss share %6.1f%%   invalidations %llu\n",
                  100.0 * mi.remoteMissFraction,
                  static_cast<unsigned long long>(mi.invalidations));
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  bus utilization   %6.1f%% avg, %5.1f%% peak "
                  "(node %u)\n",
                  100.0 * mi.avgBusUtilization,
                  100.0 * mi.maxBusUtilization, mi.busiestNode);
    os << buf;
    if (mi.prefetchesIssued) {
        std::snprintf(buf, sizeof(buf),
                      "  prefetches        %12llu issued, %llu dropped\n",
                      static_cast<unsigned long long>(
                          mi.prefetchesIssued),
                      static_cast<unsigned long long>(
                          mi.prefetchesDropped));
        os << buf;
    }
    if (mi.checksEnabled) {
        std::snprintf(
            buf, sizeof(buf),
            "  verification      %12llu checks, %llu audits, "
            "%llu violations, %llu races\n",
            static_cast<unsigned long long>(mi.checkTransitions),
            static_cast<unsigned long long>(mi.checkAudits),
            static_cast<unsigned long long>(mi.coherenceViolations),
            static_cast<unsigned long long>(mi.racesDetected));
        os << buf;
    }
}

} // namespace dashsim
