/**
 * @file
 * Machine inspection: post-run reports that look inside the memory
 * system - per-node bus/directory utilization, the distribution of
 * accesses over the service levels of Table 1, and coherence-protocol
 * activity. Used by examples/technique_explorer and handy when
 * debugging a workload's placement.
 */

#ifndef CORE_INSPECT_HH
#define CORE_INSPECT_HH

#include <array>
#include <ostream>
#include <string>

#include "core/machine.hh"

namespace dashsim {

/** Aggregated per-run memory-system view. */
struct MemoryInspection
{
    /** Access counts by ServiceLevel (PrimaryHit..Uncached). */
    std::array<std::uint64_t, 7> serviceCounts{};

    double avgBusUtilization = 0.0;   ///< mean over nodes, in [0,1]
    double maxBusUtilization = 0.0;
    NodeId busiestNode = 0;

    std::uint64_t invalidations = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesDropped = 0;

    /** Fraction of misses serviced beyond the local node. */
    double remoteMissFraction = 0.0;

    // --- verification layer (src/check), when enabled ---
    bool checksEnabled = false;
    std::uint64_t checkTransitions = 0; ///< incremental invariant checks
    std::uint64_t checkAudits = 0;      ///< full-state sweeps
    std::uint64_t coherenceViolations = 0;
    std::uint64_t racesDetected = 0;
};

/** Gather the inspection from a machine after a run. */
MemoryInspection inspectMemory(Machine &m, Tick exec_time);

/** Pretty-print the inspection (one block, fixed width). */
void printInspection(std::ostream &os, const MemoryInspection &mi);

/** Human-readable name of a service level. */
const char *serviceLevelName(ServiceLevel lvl);

} // namespace dashsim

#endif // CORE_INSPECT_HH
