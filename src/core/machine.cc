#include "core/machine.hh"

#include <algorithm>

namespace dashsim {

Machine::Machine(const MachineConfig &cfg)
    : cfg(cfg), mem(cfg.mem.numNodes), msys(eq, mem, cfg.mem)
{
    procs.reserve(cfg.mem.numNodes);
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        procs.push_back(
            std::make_unique<Processor>(eq, msys, n, cfg.cpu));

    msys.setFillHook(
        [](void *m, NodeId n, Tick when, bool prefetch) {
            static_cast<Machine *>(m)->procs[n]->onFillLockout(when,
                                                              prefetch);
        },
        this);

    if (cfg.check.coherence) {
        coherence = std::make_unique<CoherenceChecker>(msys, cfg.check);
        msys.setCheckHook(
            [](void *c, Addr line) {
                static_cast<CoherenceChecker *>(c)->onTransition(line);
            },
            coherence.get());
    }
    if (cfg.check.race)
        race = std::make_unique<RaceDetector>(numProcesses());
}

RunResult
Machine::run(Workload &w)
{
    w.setup(*this);

    const std::uint32_t nprocs = numProcesses();
    std::vector<SimProcess> processes;
    processes.reserve(nprocs);

    Tick end_tick = 0;
    std::uint32_t done = 0;
    for (auto &p : procs) {
        p->onContextDone = [&end_tick, &done](Tick t) {
            end_tick = std::max(end_tick, t);
            ++done;
        };
    }

    // The race detector listens to the same reference stream a trace
    // recorder does; fan the stream out when both want it.
    TeeSink tee(traceSink, race.get());
    TraceSink *sink = traceSink;
    if (race)
        sink = traceSink ? static_cast<TraceSink *>(&tee) : race.get();

    for (unsigned pid = 0; pid < nprocs; ++pid) {
        NodeId node = nodeOfProcess(pid);
        ContextId ctx = pid / cfg.mem.numNodes;
        Context &c = procs[node]->context(ctx);
        Env env(&c, &msys, pid, nprocs, sink);
        processes.push_back(w.run(env));
        procs[node]->bindProcess(ctx, processes.back().handle());
    }

    for (auto &p : procs)
        p->start();

    eq.run();

    if (done != nprocs) {
        // Dump scheduler state to make deadlocks diagnosable.
        for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
            for (ContextId c = 0; c < cfg.cpu.numContexts; ++c) {
                const Context &ctx = procs[n]->context(c);
                std::fprintf(stderr,
                             "  node %2u ctx %u: state=%d reason=%d "
                             "blockedSince=%llu waitAddr=%llu val=%llu\n",
                             n, c, static_cast<int>(ctx.state),
                             static_cast<int>(ctx.blockReason),
                             static_cast<unsigned long long>(
                                 ctx.blockedSince),
                             static_cast<unsigned long long>(ctx.waitAddr),
                             static_cast<unsigned long long>(
                                 ctx.waitAddr ? mem.loadRaw(ctx.waitAddr, 4)
                                              : 0));
            }
        }
        panic("deadlock: %u of %u processes finished, %zu events executed",
              done, nprocs,
              static_cast<std::size_t>(eq.executed()));
    }

    for (auto &p : procs)
        p->finalize(end_tick);

    // With the event queue drained the protocol must be quiescent.
    if (coherence)
        coherence->finalAudit();

    w.verify(*this);

    // --- collect results ---
    RunResult r;
    r.workload = w.name();
    r.execTime = end_tick;
    r.numProcessors = cfg.mem.numNodes;
    r.numContexts = cfg.cpu.numContexts;
    r.sharedDataBytes = mem.footprint();

    SampleStat run_lengths;
    SampleStat miss_lat;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
        const auto &ps = procs[n]->stats();
        for (std::size_t b = 0; b < numBuckets; ++b)
            r.buckets[b] += ps.buckets[b];
        r.locks += ps.locks;
        r.lockRetries += ps.lockRetries;
        r.barriers += ps.barriers;
        r.contextSwitches += ps.contextSwitches;
        r.prefetchesIssued += ps.prefetchesIssued;

        const auto &ms = msys.stats(n);
        r.sharedReads += ms.reads;
        r.sharedWrites += ms.writes;
        r.prefetchesDropped += ms.prefetchesDropped;
        r.prefetchesCombined += ms.prefetchesCombined;
        r.invalidations += ms.invalidationsReceived;
    }
    r.busyCycles = r.bucket(Bucket::Busy);
    r.readHitPct = msys.totalReadHits().percent();
    r.writeHitPct = msys.totalWriteHits().percent();
    if (coherence)
        r.coherenceViolations = coherence->violations().size();
    if (race)
        r.racesDetected = race->races().size();

    // Median run length / mean miss latency, pooled across processors.
    // (SampleStat cannot merge medians exactly; use the widest node as
    // representative and average the means.)
    double mean_lat_sum = 0.0;
    std::uint64_t lat_nodes = 0;
    double median_sum = 0.0;
    std::uint64_t rl_nodes = 0;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
        const auto &ps = procs[n]->stats();
        if (ps.runLength.count()) {
            median_sum += ps.runLength.median();
            ++rl_nodes;
        }
        const auto &ms = msys.stats(n);
        if (ms.readMissLatency.count()) {
            mean_lat_sum += ms.readMissLatency.mean();
            ++lat_nodes;
        }
    }
    r.medianRunLength = rl_nodes ? median_sum / rl_nodes : 0.0;
    r.avgReadMissLatency = lat_nodes ? mean_lat_sum / lat_nodes : 0.0;

    return r;
}

} // namespace dashsim
