#include "core/machine.hh"

#include <algorithm>
#include <cstdlib>

#include "core/report.hh"

namespace dashsim {

namespace {

/** DASHSIM_FASTPATH=0 disables the direct-execution fast path
 *  process-wide (re-read per machine so tests can toggle it). */
bool
fastPathEnvAllows()
{
    const char *e = std::getenv("DASHSIM_FASTPATH");
    return !(e && e[0] == '0' && e[1] == '\0');
}

} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg(cfg),
      plan(makeShardPlan(cfg.mem, cfg.shards == 0 ? shardsFromEnv()
                                                  : cfg.shards)),
      mem(cfg.mem.numNodes), msys(eq, mem, cfg.mem)
{
    if (plan.sharded())
        eq.enableShards(plan.nodeShard, plan.shards);

    procs.reserve(cfg.mem.numNodes);
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        procs.push_back(
            std::make_unique<Processor>(eq, msys, n, cfg.cpu));

    msys.setFillHook(
        [](void *m, NodeId n, Tick when, bool prefetch) {
            static_cast<Machine *>(m)->procs[n]->onFillLockout(when,
                                                              prefetch);
        },
        this);

    if (cfg.check.coherence) {
        coherence = std::make_unique<CoherenceChecker>(msys, cfg.check);
        msys.setCheckHook(
            [](void *c, Addr line) {
                static_cast<CoherenceChecker *>(c)->onTransition(line);
            },
            coherence.get());
    }
    if (cfg.check.race)
        race = std::make_unique<RaceDetector>(numProcesses());

    // --- observability layer (src/obs) ---
    // Programmatic paths always win; otherwise the first Machine in the
    // process claims the DASHSIM_TIMELINE / DASHSIM_REGISTRY variables,
    // so a batch run writes exactly one file instead of overwriting it
    // once per grid point.
    obs::ObsConfig &oc = this->cfg.obs;
    if (oc.timelinePath.empty())
        oc.timelinePath = obs::claimTimelineEnv();
    if (oc.registryPath.empty())
        oc.registryPath = obs::claimRegistryEnv();

    // Attribution never perturbs timing, so it is safe to turn on
    // whenever any consumer needs it (including the conservation
    // checker, which audits each record as it arrives).
    const bool want_attrib = oc.attribution || cfg.check.conservation ||
                             !oc.timelinePath.empty() ||
                             !oc.registryPath.empty();
    if (want_attrib)
        attrib = std::make_unique<obs::Attribution>(
            cfg.check.conservation);

    if (!oc.timelinePath.empty()) {
        tl = std::make_unique<obs::Timeline>(oc.timelinePath,
                                             oc.timelineTxnCap);
        for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
            tl->nameProcess(obs::Timeline::cpuPid(n),
                            "cpu" + std::to_string(n));
            tl->nameThread(obs::Timeline::cpuPid(n),
                           obs::Timeline::schedTid, "sched");
            for (ContextId c = 0; c < cfg.cpu.numContexts; ++c)
                tl->nameThread(obs::Timeline::cpuPid(n), 1 + c,
                               "ctx" + std::to_string(c));
            tl->nameThread(obs::Timeline::cpuPid(n),
                           obs::Timeline::txnTid, "txn");
            tl->nameProcess(obs::Timeline::memPid(n),
                            "mem" + std::to_string(n));
        }
        msys.forEachResource([this](NodeId n, std::uint32_t idx,
                                    const char *name, Resource &res) {
            tl->nameThread(obs::Timeline::memPid(n), idx, name);
            res.setTraceHook(
                [](void *t, std::uint32_t id, Tick start, Tick occ) {
                    static_cast<obs::Timeline *>(t)->resSpan(id, start,
                                                             occ);
                },
                tl.get(),
                n * obs::Timeline::resourcesPerNode + idx);
        });
        for (auto &p : procs) {
            p->setChargeHook(
                [](void *m, NodeId n, const Context *who, Bucket b,
                   Tick from, Tick to) {
                    static_cast<Machine *>(m)->tl->cpuSpan(
                        n, who ? 1 + who->id : obs::Timeline::schedTid,
                        b, from, to);
                },
                this);
        }
    }

    if (attrib || tl) {
        msys.setTxnHook(
            [](void *m, const obs::TxnRecord &r) {
                auto *self = static_cast<Machine *>(m);
                if (self->attrib)
                    self->attrib->record(r);
                if (self->tl)
                    self->tl->txnSpan(r);
            },
            this);
    }

    // Direct-execution fast path: only when nothing can observe the
    // difference. Observability consumers see per-reference transaction
    // and charge hooks, the protocol checkers audit every transition,
    // and the multi-context scheduler needs the general dispatch path —
    // any of them forces the byte-identical general path.
    dx = this->cfg.cpu.fastPath && fastPathEnvAllows() &&
         this->cfg.cpu.numContexts == 1 && !want_attrib &&
         !this->cfg.check.coherence && !this->cfg.check.race;
    if (dx) {
        for (auto &p : procs)
            p->setDirectExec(true);
    }
}

void
Machine::spawnProcesses(Workload &w, TraceSink *sink,
                        std::vector<SimProcess> &processes)
{
    const std::uint32_t nprocs = numProcesses();
    processes.reserve(nprocs);
    for (unsigned pid = 0; pid < nprocs; ++pid) {
        NodeId node = nodeOfProcess(pid);
        ContextId ctx = pid / cfg.mem.numNodes;
        Context &c = procs[node]->context(ctx);
        Env env(&c, &msys, pid, nprocs, sink);
        processes.push_back(w.run(env));
        procs[node]->bindProcess(ctx, processes.back().handle());
    }
}

RunResult
Machine::run(Workload &w)
{
    w.setup(*this);

    Tick end_tick = 0;
    std::uint32_t done = 0;
    for (auto &p : procs) {
        p->onContextDone = [&end_tick, &done](Tick t) {
            end_tick = std::max(end_tick, t);
            ++done;
        };
    }

    // The race detector listens to the same reference stream a trace
    // recorder does; fan the stream out when both want it.
    TeeSink tee(traceSink, race.get());
    TraceSink *sink = traceSink;
    if (race)
        sink = traceSink ? static_cast<TraceSink *>(&tee) : race.get();

    std::vector<SimProcess> processes;
    spawnProcesses(w, sink, processes);

    for (auto &p : procs)
        p->start();

    if (plan.sharded())
        eq.runWindowed(plan.lookahead);
    else
        eq.run();

    return finishRun(w, end_tick, done);
}

RunResult
Machine::finishRun(Workload &w, Tick end_tick, std::uint32_t done)
{
    const std::uint32_t nprocs = numProcesses();

    // Fold batched fast-path hit counters into the regular statistics
    // before anything reads them (no-op with the fast path off).
    msys.flushDirectExec();

    if (done != nprocs) {
        // Dump scheduler state to make deadlocks diagnosable.
        for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
            for (ContextId c = 0; c < cfg.cpu.numContexts; ++c) {
                const Context &ctx = procs[n]->context(c);
                std::fprintf(stderr,
                             "  node %2u ctx %u: state=%d reason=%d "
                             "blockedSince=%llu waitAddr=%llu val=%llu\n",
                             n, c, static_cast<int>(ctx.state),
                             static_cast<int>(ctx.blockReason),
                             static_cast<unsigned long long>(
                                 ctx.blockedSince),
                             static_cast<unsigned long long>(ctx.waitAddr),
                             static_cast<unsigned long long>(
                                 ctx.waitAddr ? mem.loadRaw(ctx.waitAddr, 4)
                                              : 0));
            }
        }
        panic("deadlock: %u of %u processes finished, %zu events executed",
              done, nprocs,
              static_cast<std::size_t>(eq.executed()));
    }

    for (auto &p : procs)
        p->finalize(end_tick);

    // Stall-accounting conservation: after finalize every cycle between
    // tick 0 and the end of the run must sit in exactly one bucket.
    if (cfg.check.conservation) {
        for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
            const auto &ps = procs[n]->stats();
            panic_if(ps.total() != end_tick,
                     "stall-accounting conservation violation: node %u "
                     "buckets sum to %llu over %llu elapsed ticks "
                     "(delta %lld)",
                     n, static_cast<unsigned long long>(ps.total()),
                     static_cast<unsigned long long>(end_tick),
                     static_cast<long long>(end_tick) -
                         static_cast<long long>(ps.total()));
        }
    }

    // With the event queue drained the protocol must be quiescent.
    if (coherence)
        coherence->finalAudit();

    w.verify(*this);

    // --- collect results ---
    RunResult r;
    r.workload = w.name();
    r.execTime = end_tick;
    r.numProcessors = cfg.mem.numNodes;
    r.numContexts = cfg.cpu.numContexts;
    r.sharedDataBytes = mem.footprint();

    SampleStat run_lengths;
    SampleStat miss_lat;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
        const auto &ps = procs[n]->stats();
        for (std::size_t b = 0; b < numBuckets; ++b)
            r.buckets[b] += ps.buckets[b];
        r.locks += ps.locks;
        r.lockRetries += ps.lockRetries;
        r.barriers += ps.barriers;
        r.contextSwitches += ps.contextSwitches;
        r.prefetchesIssued += ps.prefetchesIssued;

        const auto &ms = msys.stats(n);
        r.sharedReads += ms.reads;
        r.sharedWrites += ms.writes;
        r.prefetchesDropped += ms.prefetchesDropped;
        r.prefetchesCombined += ms.prefetchesCombined;
        r.invalidations += ms.invalidationsReceived;
    }
    r.busyCycles = r.bucket(Bucket::Busy);
    r.readHitPct = msys.totalReadHits().percent();
    r.writeHitPct = msys.totalWriteHits().percent();
    if (coherence)
        r.coherenceViolations = coherence->violations().size();
    if (race)
        r.racesDetected = race->races().size();

    // Median run length / mean miss latency, pooled across processors.
    // (SampleStat cannot merge medians exactly; use the widest node as
    // representative and average the means.)
    double mean_lat_sum = 0.0;
    std::uint64_t lat_nodes = 0;
    double median_sum = 0.0;
    std::uint64_t rl_nodes = 0;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
        const auto &ps = procs[n]->stats();
        if (ps.runLength.count()) {
            median_sum += ps.runLength.median();
            ++rl_nodes;
        }
        const auto &ms = msys.stats(n);
        if (ms.readMissLatency.count()) {
            mean_lat_sum += ms.readMissLatency.mean();
            ++lat_nodes;
        }
    }
    r.medianRunLength = rl_nodes ? median_sum / rl_nodes : 0.0;
    r.avgReadMissLatency = lat_nodes ? mean_lat_sum / lat_nodes : 0.0;

    if (tl)
        tl->write();
    if (!cfg.obs.registryPath.empty())
        writeRegistryJson(cfg.obs.registryPath, *this, r);

    return r;
}

// ---------------------------------------------------------------------
// Barrier-point checkpointing.
// ---------------------------------------------------------------------

namespace {
constexpr std::uint32_t tagMemImage = 0x696d656du;  // 'memi'
constexpr std::uint32_t tagParks = 0x6b726170u;     // 'park'
constexpr std::uint32_t tagEnd = 0x646e6565u;       // 'eend'
} // namespace

bool
Machine::checkpointEligible(const MachineConfig &cfg)
{
    return cfg.cpu.numContexts == 1 && !cfg.cpu.prefetch &&
           cfg.mem.cacheSharedData && !cfg.check.coherence &&
           !cfg.check.race && !cfg.check.conservation &&
           !cfg.obs.attribution && cfg.obs.timelinePath.empty() &&
           cfg.obs.registryPath.empty();
}

std::vector<std::uint8_t>
Machine::captureRun(Workload &w, std::uint32_t episodes)
{
    fatal_if(!checkpointEligible(cfg),
             "captureRun: config is not checkpoint-eligible");
    fatal_if(plan.sharded(),
             "captureRun: the sharded kernel cannot checkpoint");
    fatal_if(attrib || tl || coherence || race,
             "captureRun: observability or checkers active");
    fatal_if(!w.checkpointable(), "captureRun: workload %s is not "
             "checkpointable", w.name().c_str());
    fatal_if(episodes == 0 || episodes > w.checkpointEpisodes(),
             "captureRun: episode %u out of range [1,%u]", episodes,
             w.checkpointEpisodes());

    w.setup(*this);
    fatal_if(traceSink != nullptr, "captureRun: trace sink active");

    const std::uint32_t nprocs = numProcesses();
    Tick end_tick = 0;
    std::uint32_t done = 0;
    for (auto &p : procs) {
        p->onContextDone = [&end_tick, &done](Tick t) {
            end_tick = std::max(end_tick, t);
            ++done;
        };
    }

    // Park every context at its `episodes`-th barrier completion,
    // recording the parks in execution order. Once the last context
    // parks, the remaining queue is stale wake probes (generation
    // guarded no-ops) plus in-flight writeback arrivals, which the
    // memory system records for replay.
    struct Park
    {
        NodeId node;
        Tick tick;
    };
    std::vector<Park> parks;
    std::vector<std::uint32_t> completed(cfg.mem.numNodes, 0);
    std::uint32_t parked = 0;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
        procs[n]->setBarrierHook(
            [this, n, episodes, nprocs, &parks, &completed,
             &parked](Context *) -> bool {
                if (++completed[n] < episodes)
                    return false;
                parks.push_back({n, eq.now()});
                if (++parked == nprocs)
                    msys.beginCaptureDrain();
                return true;
            });
    }

    std::vector<SimProcess> processes;
    spawnProcesses(w, nullptr, processes);
    for (auto &p : procs)
        p->start();
    eq.run();

    fatal_if(parked != nprocs,
             "captureRun: only %u of %u processes reached barrier "
             "episode %u (%u finished) - checkpointEpisodes() lied",
             parked, nprocs, episodes, done);

    ckpt::Writer wtr;
    wtr.u32(ckpt::ckptMagic);
    wtr.u32(ckpt::ckptVersion);
    wtr.u64(configHash(cfg));
    wtr.str(w.checkpointKey());
    wtr.u32(nprocs);
    wtr.u32(episodes);

    wtr.tag(tagMemImage);
    {
        auto img = mem.imageSnapshot();
        wtr.u64(img.size());
        wtr.bytes(img.data(), img.size());
    }

    wtr.tag(tagParks);
    wtr.u32(parked);
    for (const Park &pk : parks) {
        wtr.u32(pk.node);
        wtr.u64(pk.tick);
    }

    for (const auto &p : procs)
        p->saveState(wtr);
    msys.saveState(wtr);
    for (unsigned pid = 0; pid < nprocs; ++pid)
        w.saveProcessState(pid, wtr);
    wtr.tag(tagEnd);

    // This machine is spent: its coroutines are permanently suspended
    // at their barriers (destroyed safely with the SimProcess objects)
    // and its event clock cannot rewind. The caller destroys it.
    return wtr.take();
}

RunResult
Machine::resumeRun(Workload &w, const std::vector<std::uint8_t> &blob)
{
    fatal_if(!checkpointEligible(cfg),
             "resumeRun: config is not checkpoint-eligible");
    fatal_if(plan.sharded(),
             "resumeRun: the sharded kernel cannot resume a checkpoint");
    fatal_if(attrib || tl || coherence || race,
             "resumeRun: observability or checkers active");

    ckpt::Reader r(blob);
    fatal_if(r.u32() != ckpt::ckptMagic, "resumeRun: bad magic");
    fatal_if(r.u32() != ckpt::ckptVersion,
             "resumeRun: checkpoint version mismatch");
    fatal_if(r.u64() != configHash(cfg),
             "resumeRun: config hash mismatch");
    const std::string key = r.str();
    fatal_if(key != w.checkpointKey(),
             "resumeRun: workload key mismatch (\"%s\" vs \"%s\")",
             key.c_str(), w.checkpointKey().c_str());
    const std::uint32_t nprocs = numProcesses();
    fatal_if(r.u32() != nprocs, "resumeRun: process count mismatch");
    (void)r.u32();  // capture episode, informational

    // Deterministically rebuild the shared-data layout, then overwrite
    // the arena contents with the captured image.
    w.setup(*this);
    fatal_if(traceSink != nullptr, "resumeRun: trace sink active");
    r.expect(tagMemImage);
    {
        std::vector<std::uint8_t> img(r.u64());
        r.bytes(img.data(), img.size());
        mem.restoreImage(img);
    }

    Tick end_tick = 0;
    std::uint32_t done = 0;
    for (auto &p : procs) {
        p->onContextDone = [&end_tick, &done](Tick t) {
            end_tick = std::max(end_tick, t);
            ++done;
        };
    }

    // Bind fresh coroutines first (their host-side dispatch skips the
    // completed phases), then overwrite the scheduler state with the
    // captured image; the parked context comes back Running with no
    // pending continuation, waiting for its park-resume event.
    std::vector<SimProcess> processes;
    spawnProcesses(w, nullptr, processes);

    // Park resumes are scheduled before the memory system re-schedules
    // its recorded writeback arrivals, so at equal ticks a park keeps
    // its original (tick, seq) precedence.
    r.expect(tagParks);
    const std::uint32_t parked = r.u32();
    fatal_if(parked != nprocs, "resumeRun: park count mismatch");
    for (std::uint32_t i = 0; i < parked; ++i) {
        NodeId n = r.u32();
        Tick at = r.u64();
        fatal_if(n >= cfg.mem.numNodes, "resumeRun: bad park node %u", n);
        procs[n]->scheduleParkResume(0, at);
    }

    for (const auto &p : procs)
        p->loadState(r);
    msys.loadState(r);
    for (unsigned pid = 0; pid < nprocs; ++pid)
        w.loadProcessState(pid, r);
    r.expect(tagEnd);
    fatal_if(!r.done(), "resumeRun: %zu trailing bytes in checkpoint",
             r.remaining());

    eq.run();
    return finishRun(w, end_tick, done);
}

void
Machine::fillRegistry(obs::Registry &reg, const RunResult &r) const
{
    reg.set("machine.exec_time", r.execTime);
    reg.set("machine.processors", r.numProcessors);
    reg.set("machine.contexts", r.numContexts);
    reg.set("machine.shared_data_bytes", r.sharedDataBytes);

    // Event-kernel shape: how the sharded kernel carved the run up.
    reg.set("machine.kernel.shards", plan.shards);
    reg.set("machine.kernel.lookahead", plan.lookahead);
    reg.set("machine.kernel.windows", eq.windows());
    reg.set("machine.kernel.cross_inline", eq.crossInline());
    reg.set("machine.kernel.cross_deferred", eq.crossDeferred());

    // Directory-format accounting (limited-pointer overflows, inexact
    // invalidation cost). Zero under the full-bit-vector default.
    reg.set("machine.dir.overflows", msys.dirOverflowCount());
    reg.set("machine.dir.over_invalidations",
            msys.overInvalidationCount());

    // Stable dotted-name mapping of each service level; see
    // docs/OBSERVABILITY.md before renaming anything here.
    static constexpr const char *levelKey[7] = {
        "l1.hit",                // PrimaryHit
        "l2.hit",                // SecondaryHit
        "l2.miss.local",         // LocalNode
        "l2.miss.home",          // HomeNode
        "l2.miss.remote_dirty",  // RemoteNode
        "l2.miss.combined",      // Combined
        "mem.uncached",          // Uncached
    };

    for (NodeId n = 0; n < cfg.mem.numNodes; ++n) {
        const std::string p = "p" + std::to_string(n) + ".";
        const auto &ps = procs[n]->stats();
        for (std::size_t b = 0; b < numBuckets; ++b) {
            reg.set(p + "cpu.bucket." +
                        obs::Timeline::bucketName(
                            static_cast<Bucket>(b)),
                    ps.buckets[b]);
        }
        reg.set(p + "cpu.locks", ps.locks);
        reg.set(p + "cpu.lock_retries", ps.lockRetries);
        reg.set(p + "cpu.barriers", ps.barriers);
        reg.set(p + "cpu.context_switches", ps.contextSwitches);
        reg.set(p + "cpu.prefetches_issued", ps.prefetchesIssued);

        const auto &ms = msys.stats(n);
        reg.set(p + "mem.reads", ms.reads);
        reg.set(p + "mem.writes", ms.writes);
        reg.set(p + "mem.rmws", ms.rmws);
        reg.set(p + "mem.prefetches_dropped", ms.prefetchesDropped);
        reg.set(p + "mem.prefetches_combined", ms.prefetchesCombined);
        reg.set(p + "mem.invalidations_received",
                ms.invalidationsReceived);
        for (int l = 0; l < 7; ++l)
            reg.set(p + levelKey[l], ms.serviceCount[l]);
    }

    // Resource utilization counters (FCFS contention calendars).
    const_cast<MemorySystem &>(msys).forEachResource(
        [&reg](NodeId n, std::uint32_t, const char *name,
               Resource &res) {
            const std::string base = "p" + std::to_string(n) + ".res." +
                                     name + ".";
            reg.set(base + "busy_cycles", res.busyCycles());
            reg.set(base + "requests", res.requests());
        });

    if (attrib)
        attrib->registerInto(reg);
}

} // namespace dashsim
