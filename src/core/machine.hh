/**
 * @file
 * The top-level simulated machine and the Workload interface: the
 * public API of the library.
 *
 * A Machine assembles the event kernel, the distributed shared memory,
 * the DASH-style memory system, and one processor per node, then runs a
 * Workload's processes (one coroutine per hardware context) to
 * completion and reports the execution-time breakdown.
 */

#ifndef CORE_MACHINE_HH
#define CORE_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check_config.hh"
#include "check/invariant.hh"
#include "check/race.hh"
#include "core/checkpoint.hh"
#include "core/shard.hh"
#include "cpu/processor.hh"
#include "mem/mem_system.hh"
#include "mem/shared_memory.hh"
#include "obs/attribution.hh"
#include "obs/obs_config.hh"
#include "obs/registry.hh"
#include "obs/timeline.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "tango/env.hh"
#include "tango/process.hh"

namespace dashsim {

class Machine;

/**
 * A parallel application. setup() allocates and initializes shared
 * data (untimed, like program load); run() is the per-process body.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name for reports ("MP3D", "LU", "PTHOR"). */
    virtual std::string name() const = 0;

    /** Allocate and initialize shared data structures. */
    virtual void setup(Machine &m) = 0;

    /** The body executed by process env.pid(). */
    virtual SimProcess run(Env env) = 0;

    /** Optional post-run correctness check; panic/fatal on failure. */
    virtual void verify(Machine &) {}

    // --- barrier-point checkpointing (core/checkpoint.hh) ---
    //
    // A checkpointable workload keeps all persistent per-process state
    // in workload-owned structures (not coroutine locals) and updates
    // it to the post-barrier value immediately *before* each
    // env.barrier() await, so a fresh coroutine restored from a
    // checkpoint can re-dispatch host-side to the first operation after
    // the barrier it parked at, without issuing any simulated access.

    /** True when this workload supports capture/resume. */
    virtual bool checkpointable() const { return false; }

    /**
     * Number of per-process barrier completions that can serve as a
     * park point (a conservative lower bound every run reaches).
     */
    virtual std::uint32_t checkpointEpisodes() const { return 0; }

    /**
     * Key identifying the workload *and its parameters* for checkpoint
     * reuse; two workloads with equal keys and equal configHash() run
     * identically up to any barrier.
     */
    virtual std::string checkpointKey() const { return name(); }

    /** Serialize per-process persistent state for process @p pid. */
    virtual void saveProcessState(unsigned pid, ckpt::Writer &) const
    {
        (void)pid;
    }

    /** Restore per-process persistent state for process @p pid. */
    virtual void loadProcessState(unsigned pid, ckpt::Reader &)
    {
        (void)pid;
    }
};

/** Full machine configuration. */
struct MachineConfig
{
    MemConfig mem{};
    CpuConfig cpu{};
    CheckConfig check{};  ///< protocol-verification layer (src/check)
    obs::ObsConfig obs{}; ///< observability layer (src/obs)

    /**
     * Event-kernel shards (core/shard.hh): 0 resolves the
     * DASHSIM_SHARDS environment knob, 1 forces the sequential
     * single-queue kernel, >1 shards the machine into that many
     * node groups (clamped to the node count). Results are
     * byte-identical at any value.
     */
    std::uint32_t shards = 0;
};

/**
 * Hash of every configuration field that can affect simulated timing
 * or results (core/checkpoint.cc). Deliberately EXCLUDES the knobs
 * that are byte-identical by construction: fastPath, fastPathFuzzSeed,
 * shards, and the check/obs layers — a checkpoint captured under one
 * setting of those restores correctly under any other, and the
 * differential tests rely on the hashes matching across them.
 */
std::uint64_t configHash(const MachineConfig &cfg);

/** Everything a run produces. */
struct RunResult
{
    std::string workload;
    Tick execTime = 0;  ///< tick at which the last process finished

    /** Summed per-category cycles across all processors. */
    std::array<std::uint64_t, numBuckets> buckets{};

    std::uint64_t
    bucket(Bucket b) const
    {
        return buckets[static_cast<std::size_t>(b)];
    }

    // --- Table 2 style statistics ---
    std::uint64_t busyCycles = 0;     ///< "useful cycles"
    std::uint64_t sharedReads = 0;
    std::uint64_t sharedWrites = 0;
    std::uint64_t locks = 0;
    std::uint64_t lockRetries = 0;
    std::uint64_t barriers = 0;
    std::size_t sharedDataBytes = 0;

    // --- Section 3 / 5 / 6 statistics ---
    double readHitPct = 0.0;
    double writeHitPct = 0.0;
    double medianRunLength = 0.0;
    double avgReadMissLatency = 0.0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesDropped = 0;
    std::uint64_t prefetchesCombined = 0;
    std::uint64_t invalidations = 0;

    std::uint32_t numProcessors = 0;
    std::uint32_t numContexts = 1;

    // --- verification-layer results (0 when the checkers are off) ---
    std::uint64_t coherenceViolations = 0;
    std::uint64_t racesDetected = 0;

    /** Sum of all buckets (>= numProcessors * execTime). */
    std::uint64_t
    totalCycles() const
    {
        std::uint64_t t = 0;
        for (auto v : buckets)
            t += v;
        return t;
    }

    /** Processor utilization: busy / (P * T). */
    double
    utilization() const
    {
        if (!execTime || !numProcessors)
            return 0.0;
        return static_cast<double>(busyCycles) /
               (static_cast<double>(execTime) * numProcessors);
    }
};

/**
 * The simulated multiprocessor.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Run @p w to completion and return the result breakdown. */
    RunResult run(Workload &w);

    // --- barrier-point checkpointing ---

    /**
     * True when @p cfg permits capture/resume: sequential kernel, one
     * context per node, no prefetching, shared data cached, checkers
     * and observability off, and no trace sink (checked at run time).
     * Everything the excluded knobs change is byte-identical anyway.
     */
    static bool checkpointEligible(const MachineConfig &cfg);

    /**
     * Run @p w until every process has completed @p episodes barrier
     * episodes, park each process at that barrier, drain the event
     * queue, and serialize the whole machine + workload state. The
     * machine is spent afterwards: destroy it and resumeRun() the blob
     * on a fresh one. Fatals if the config is ineligible or the
     * workload finishes before reaching the requested episode.
     */
    std::vector<std::uint8_t> captureRun(Workload &w,
                                         std::uint32_t episodes);

    /**
     * Restore a captureRun() blob into this (fresh) machine and run to
     * completion, producing a RunResult byte-identical to a straight
     * run() of the same workload/config. Fatals on any header mismatch
     * (magic, version, configHash, workload key, process count).
     */
    RunResult resumeRun(Workload &w,
                        const std::vector<std::uint8_t> &blob);

    // --- component access (setup code and tests) ---
    EventQueue &eventQueue() { return eq; }
    SharedMemory &memory() { return mem; }
    MemorySystem &memSystem() { return msys; }
    Processor &processor(NodeId n) { return *procs[n]; }
    const MachineConfig &config() const { return cfg; }

    /** The resolved event-kernel shard topology for this machine. */
    const ShardPlan &shardPlan() const { return plan; }

    /**
     * True when this machine runs with the direct-execution fast path.
     * Requires cfg.cpu.fastPath, a single context per processor, no
     * observability consumer (attribution, conservation checking,
     * timeline, registry), no protocol checkers, and DASHSIM_FASTPATH
     * not set to "0". Results are byte-identical either way.
     */
    bool directExecActive() const { return dx; }

    /** The coherence-invariant checker (null when disabled). */
    CoherenceChecker *coherenceChecker() { return coherence.get(); }

    /** The happens-before race detector (null when disabled). */
    RaceDetector *raceDetector() { return race.get(); }

    /** Per-class latency attribution (null when observability is off). */
    obs::Attribution *attribution() { return attrib.get(); }

    /** The timeline sink (null unless a timeline path is configured). */
    obs::Timeline *timeline() { return tl.get(); }

    /**
     * Populate @p reg with the full hierarchical counter tree for the
     * finished run @p r (machine.*, p<N>.cpu.*, p<N>.l1/l2.*,
     * p<N>.res.*, attrib.*). run() calls this itself when a registry
     * path is configured; exposed for tests and embedding code.
     */
    void fillRegistry(obs::Registry &reg, const RunResult &r) const;

    /**
     * Install (or clear) a trace sink: every process's Env reports its
     * shared-memory operations there (tango/trace.hh). Must be set in
     * Workload::setup (before the processes are created).
     */
    void setTraceSink(TraceSink *sink) { traceSink = sink; }

    /** Total processes a workload runs: nodes x contexts. */
    std::uint32_t
    numProcesses() const
    {
        return cfg.mem.numNodes * cfg.cpu.numContexts;
    }

    /** Node a given process runs on (processes are dealt round-robin
     *  across nodes, so each node hosts `numContexts` of them). */
    NodeId
    nodeOfProcess(unsigned pid) const
    {
        return pid % cfg.mem.numNodes;
    }

  private:
    /** Create Envs, spawn the workload coroutines, bind them. */
    void spawnProcesses(Workload &w, TraceSink *sink,
                        std::vector<SimProcess> &processes);

    /** Everything after the event queue drains: finalize, verify,
     *  collect the RunResult, emit observability artifacts. */
    RunResult finishRun(Workload &w, Tick end_tick, std::uint32_t done);

    MachineConfig cfg;
    ShardPlan plan;
    EventQueue eq;
    SharedMemory mem;
    MemorySystem msys;
    std::vector<std::unique_ptr<Processor>> procs;
    bool dx = false;  ///< direct-execution fast path (directExecActive)
    TraceSink *traceSink = nullptr;
    std::unique_ptr<CoherenceChecker> coherence;
    std::unique_ptr<RaceDetector> race;
    std::unique_ptr<obs::Attribution> attrib;
    std::unique_ptr<obs::Timeline> tl;
};

} // namespace dashsim

#endif // CORE_MACHINE_HH
