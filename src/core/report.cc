#include "core/report.hh"

#include "sim/logging.hh"

#include <cstdio>
#include <iomanip>

namespace dashsim {

double
normalizedTime(const RunResult &r, const RunResult &baseline)
{
    if (!baseline.execTime)
        return 0.0;
    return 100.0 * static_cast<double>(r.execTime) /
           static_cast<double>(baseline.execTime);
}

double
speedup(const RunResult &r, const RunResult &baseline)
{
    if (!r.execTime)
        return 0.0;
    return static_cast<double>(baseline.execTime) /
           static_cast<double>(r.execTime);
}

double
normalizedBucket(const RunResult &r, Bucket b, const RunResult &baseline)
{
    double denom = static_cast<double>(baseline.execTime) *
                   baseline.numProcessors;
    if (denom == 0.0)
        return 0.0;
    return 100.0 * static_cast<double>(r.bucket(b)) / denom;
}

namespace {

void
printRow(std::ostream &os, const std::string &label,
         const std::vector<double> &cells, double total, double speedup)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-18s", label.c_str());
    os << buf;
    std::snprintf(buf, sizeof(buf), "%8.1f", total);
    os << buf;
    for (double c : cells) {
        std::snprintf(buf, sizeof(buf), "%8.1f", c);
        os << buf;
    }
    std::snprintf(buf, sizeof(buf), "%9.2f", speedup);
    os << buf << '\n';
}

} // namespace

void
printBreakdown(std::ostream &os, const std::string &title,
               const std::vector<BreakdownRow> &rows,
               std::size_t baseline_idx, bool multi_context_mode)
{
    if (rows.empty())
        return;
    const RunResult &base = rows[baseline_idx].result;

    os << title << '\n';
    os << std::string(title.size(), '-') << '\n';
    os << "                      Total    Busy";
    if (multi_context_mode)
        os << "  Switch AllIdle NoSwtch";
    else
        os << "    Read   Write    Sync";
    os << "   PfOvh  Speedup\n";

    for (const auto &row : rows) {
        const RunResult &r = row.result;
        std::vector<double> cells;
        cells.push_back(normalizedBucket(r, Bucket::Busy, base));
        if (multi_context_mode) {
            cells.push_back(normalizedBucket(r, Bucket::Switching, base));
            // In multi-context reporting, single-context stalls land in
            // the read/write/sync buckets; fold them into "all idle" so
            // single- and multi-context bars are comparable (Figure 6).
            double idle = normalizedBucket(r, Bucket::AllIdle, base) +
                          normalizedBucket(r, Bucket::Read, base) +
                          normalizedBucket(r, Bucket::Write, base) +
                          normalizedBucket(r, Bucket::Sync, base);
            cells.push_back(idle);
            cells.push_back(normalizedBucket(r, Bucket::NoSwitch, base));
        } else {
            cells.push_back(normalizedBucket(r, Bucket::Read, base));
            cells.push_back(normalizedBucket(r, Bucket::Write, base));
            double sync = normalizedBucket(r, Bucket::Sync, base) +
                          normalizedBucket(r, Bucket::AllIdle, base) +
                          normalizedBucket(r, Bucket::Switching, base) +
                          normalizedBucket(r, Bucket::NoSwitch, base);
            cells.push_back(sync);
        }
        cells.push_back(normalizedBucket(r, Bucket::PfOverhead, base));
        printRow(os, row.label, cells, normalizedTime(r, base),
                 speedup(r, base));
    }
    os << '\n';
}

void
printTable2(std::ostream &os, const std::vector<RunResult> &results)
{
    os << "Table 2: General statistics for the benchmarks\n";
    os << "----------------------------------------------\n";
    os << "Program     Useful    Shared   Shared     Locks  Barriers"
          "   Shared Data\n";
    os << "          Cycles(K)  Reads(K) Writes(K)                  "
          "   Size(KB)\n";
    char buf[160];
    for (const auto &r : results) {
        std::snprintf(buf, sizeof(buf),
                      "%-8s %9.0f %9.0f %9.0f %9llu %9llu %12.0f\n",
                      r.workload.c_str(),
                      static_cast<double>(r.busyCycles) / 1000.0,
                      static_cast<double>(r.sharedReads) / 1000.0,
                      static_cast<double>(r.sharedWrites) / 1000.0,
                      static_cast<unsigned long long>(r.locks),
                      static_cast<unsigned long long>(r.barriers),
                      static_cast<double>(r.sharedDataBytes) / 1024.0);
        os << buf;
    }
    os << '\n';
}

void
writeCsv(const std::string &path, const std::string &title,
         const std::vector<BreakdownRow> &rows)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", path.c_str());
        return;
    }
    std::fprintf(f, "# %s\n", title.c_str());
    std::fprintf(f,
                 "config,exec_cycles,busy,read,write,sync,pf_overhead,"
                 "switching,all_idle,no_switch,read_hit_pct,"
                 "write_hit_pct,locks,barriers,context_switches,"
                 "prefetches_issued,utilization\n");
    for (const auto &row : rows) {
        const RunResult &r = row.result;
        std::fprintf(
            f,
            "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%.2f,%.2f,%llu,%llu,%llu,%llu,%.4f\n",
            row.label.c_str(),
            static_cast<unsigned long long>(r.execTime),
            static_cast<unsigned long long>(r.bucket(Bucket::Busy)),
            static_cast<unsigned long long>(r.bucket(Bucket::Read)),
            static_cast<unsigned long long>(r.bucket(Bucket::Write)),
            static_cast<unsigned long long>(r.bucket(Bucket::Sync)),
            static_cast<unsigned long long>(
                r.bucket(Bucket::PfOverhead)),
            static_cast<unsigned long long>(
                r.bucket(Bucket::Switching)),
            static_cast<unsigned long long>(r.bucket(Bucket::AllIdle)),
            static_cast<unsigned long long>(r.bucket(Bucket::NoSwitch)),
            r.readHitPct, r.writeHitPct,
            static_cast<unsigned long long>(r.locks),
            static_cast<unsigned long long>(r.barriers),
            static_cast<unsigned long long>(r.contextSwitches),
            static_cast<unsigned long long>(r.prefetchesIssued),
            r.utilization());
    }
    std::fclose(f);
}

std::string
paperVsMeasured(double paper_value, double measured)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "paper %5.2f / measured %5.2f",
                  paper_value, measured);
    return buf;
}

std::string
serializeResult(const RunResult &r)
{
    std::string out;
    out.reserve(512);
    char buf[64];
    auto u = [&](const char *name, std::uint64_t v) {
        std::snprintf(buf, sizeof(buf), "%s=%llu\n", name,
                      static_cast<unsigned long long>(v));
        out += buf;
    };
    auto d = [&](const char *name, double v) {
        // %a round-trips the exact bit pattern of the double.
        std::snprintf(buf, sizeof(buf), "%s=%a\n", name, v);
        out += buf;
    };

    out += "workload=" + r.workload + "\n";
    u("exec_time", r.execTime);
    for (std::size_t b = 0; b < numBuckets; ++b) {
        std::snprintf(buf, sizeof(buf), "bucket%zu=%llu\n", b,
                      static_cast<unsigned long long>(r.buckets[b]));
        out += buf;
    }
    u("busy_cycles", r.busyCycles);
    u("shared_reads", r.sharedReads);
    u("shared_writes", r.sharedWrites);
    u("locks", r.locks);
    u("lock_retries", r.lockRetries);
    u("barriers", r.barriers);
    u("shared_data_bytes", r.sharedDataBytes);
    d("read_hit_pct", r.readHitPct);
    d("write_hit_pct", r.writeHitPct);
    d("median_run_length", r.medianRunLength);
    d("avg_read_miss_latency", r.avgReadMissLatency);
    u("context_switches", r.contextSwitches);
    u("prefetches_issued", r.prefetchesIssued);
    u("prefetches_dropped", r.prefetchesDropped);
    u("prefetches_combined", r.prefetchesCombined);
    u("invalidations", r.invalidations);
    u("num_processors", r.numProcessors);
    u("num_contexts", r.numContexts);
    u("coherence_violations", r.coherenceViolations);
    u("races_detected", r.racesDetected);
    return out;
}

bool
writeRegistryJson(const std::string &path, const Machine &m,
                  const RunResult &r)
{
    obs::Registry reg;
    m.fillRegistry(reg, r);
    return reg.writeJson(path);
}

} // namespace dashsim
