/**
 * @file
 * Paper-style reporting: normalized execution-time breakdowns (the bar
 * charts of Figures 2-6) and the Table 2 benchmark statistics, printed
 * as fixed-width text tables.
 */

#ifndef CORE_REPORT_HH
#define CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/machine.hh"

namespace dashsim {

/** One bar of a figure. */
struct BreakdownRow
{
    std::string label;
    RunResult result;
};

/**
 * Print a normalized execution-time breakdown. Every row is scaled so
 * the row at @p baseline_idx totals 100. With @p multi_context_mode the
 * sections are busy / switching / all-idle / no-switch (+ prefetch
 * overhead), matching Figures 5-6; otherwise busy / read / write / sync
 * (+ prefetch overhead), matching Figures 2-4.
 */
void printBreakdown(std::ostream &os, const std::string &title,
                    const std::vector<BreakdownRow> &rows,
                    std::size_t baseline_idx, bool multi_context_mode);

/** Print Table 2 ("General statistics for the benchmarks"). */
void printTable2(std::ostream &os, const std::vector<RunResult> &results);

/** Normalized total of @p r against @p baseline (baseline = 100). */
double normalizedTime(const RunResult &r, const RunResult &baseline);

/** Speedup of @p r over @p baseline (>1 means r is faster). */
double speedup(const RunResult &r, const RunResult &baseline);

/** Share of @p bucket in @p r, normalized the same way (baseline=100). */
double normalizedBucket(const RunResult &r, Bucket b,
                        const RunResult &baseline);

/**
 * Compare a measured speedup against the paper's value; returns a
 * one-line "paper X.XX / measured Y.YY" annotation.
 */
std::string paperVsMeasured(double paper_value, double measured);

/**
 * Write a breakdown series as CSV (one row per configuration, raw
 * cycle counts plus the derived statistics), for plotting. Creates or
 * truncates @p path.
 */
void writeCsv(const std::string &path, const std::string &title,
              const std::vector<BreakdownRow> &rows);

/**
 * Canonical byte-exact serialization of every RunResult field (doubles
 * in hex-float form, so no rounding ambiguity). Two results serialize
 * identically iff they are bit-identical; the determinism suite
 * compares these strings across job counts and repeated batches.
 */
std::string serializeResult(const RunResult &r);

/**
 * Dump the machine's full counter registry as nested JSON at @p path -
 * the observability companion to writeCsv, meant to land next to the
 * figure CSVs (see docs/OBSERVABILITY.md for the name schema). Returns
 * false (with a warn) on I/O error.
 */
bool writeRegistryJson(const std::string &path, const Machine &m,
                       const RunResult &r);

} // namespace dashsim

#endif // CORE_REPORT_HH
