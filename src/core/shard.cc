#include "core/shard.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace dashsim {

ShardPlan
makeShardPlan(const MemConfig &mem, std::uint32_t requested)
{
    ShardPlan plan;
    std::uint32_t shards = requested == 0 ? 1 : requested;
    if (shards > mem.numNodes) {
        warn("DASHSIM_SHARDS=%u exceeds the %u simulated nodes; "
             "clamping to one shard per node",
             shards, mem.numNodes);
        shards = mem.numNodes;
    }
    plan.shards = shards;

    // lookahead = min(network hop latency, bus arbitration latency):
    // the shortest delay any cross-node interaction carries. With the
    // mesh topology the cheapest hop is base + one switch traversal.
    const Tick hop = mem.lat.mesh ? mem.lat.meshBase + mem.lat.meshPerHop
                                  : mem.lat.netHop;
    plan.lookahead = std::max<Tick>(1, std::min(hop, mem.lat.busOccupancy));

    // Contiguous partition: node n -> shard n * S / N. Directory homes
    // are round-robin by line, so any even split balances home traffic;
    // contiguity keeps each node's processor and memory-side resources
    // on one shard.
    plan.nodeShard.resize(mem.numNodes);
    for (std::uint32_t n = 0; n < mem.numNodes; ++n) {
        plan.nodeShard[n] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(n) * shards) / mem.numNodes);
    }
    return plan;
}

std::uint32_t
shardsFromEnv()
{
    const char *env = std::getenv("DASHSIM_SHARDS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1) {
        warn("ignoring invalid DASHSIM_SHARDS=%s (want a positive "
             "integer)", env);
        return 1;
    }
    return static_cast<std::uint32_t>(v);
}

} // namespace dashsim
