/**
 * @file
 * Shard topology for the sharded machine event kernel.
 *
 * A ShardPlan partitions the simulated nodes into contiguous groups
 * (one event-queue shard each) and derives the conservative lookahead
 * from the machine's latency parameters: the minimum of the one-way
 * network hop latency and the bus arbitration (occupancy) latency —
 * the shortest simulated delay a cross-node interaction can have, and
 * therefore the widest time-window shards can execute independently.
 */

#ifndef CORE_SHARD_HH
#define CORE_SHARD_HH

#include <cstdint>
#include <vector>

#include "mem/mem_config.hh"
#include "sim/types.hh"

namespace dashsim {

/** A resolved shard topology for one machine. */
struct ShardPlan
{
    /** Shard count after clamping to the node count (>= 1). */
    std::uint32_t shards = 1;

    /** Conservative window width in ticks (>= 1). */
    Tick lookahead = 1;

    /** Owning shard of each node (size = numNodes). */
    std::vector<std::uint32_t> nodeShard;

    bool sharded() const { return shards > 1; }
};

/**
 * Build the plan for @p mem with @p requested shards (0/1 = sequential).
 * Requests beyond the node count are clamped with a warning.
 */
ShardPlan makeShardPlan(const MemConfig &mem, std::uint32_t requested);

/**
 * The DASHSIM_SHARDS environment knob: shard count for every machine
 * whose MachineConfig leaves `shards` at 0. Unset or empty means 1
 * (sequential); invalid values warn (through any active log capture)
 * and fall back to 1. Re-read on each call, like defaultJobs().
 */
std::uint32_t shardsFromEnv();

} // namespace dashsim

#endif // CORE_SHARD_HH
