/**
 * @file
 * Per-processor technique configuration: the four knobs the paper
 * evaluates (Sections 3-6).
 */

#ifndef CPU_CPU_CONFIG_HH
#define CPU_CPU_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace dashsim {

/**
 * Memory consistency model (Section 4). The paper evaluates SC and RC
 * and notes that processor consistency [8,10], weak consistency [5],
 * and DRF0 [1] "fall between sequential and release consistency"; we
 * implement PC and WC as well so the claim can be checked
 * (bench/ablation_consistency_models).
 */
enum class Consistency : std::uint8_t
{
    SC,  ///< sequential: stall on every shared write
    PC,  ///< processor consistency: buffered writes retire in order,
         ///< reads bypass the write buffer
    WC,  ///< weak consistency: pipelined writes, but every
         ///< synchronization access is a full fence
    RC,  ///< release consistency: pipelined writes, releases fence
};

/** True when shared writes go through the write buffer. */
constexpr bool
buffersWrites(Consistency c)
{
    return c != Consistency::SC;
}

/** Processor-side configuration. */
struct CpuConfig
{
    Consistency consistency = Consistency::SC;

    /** Hardware contexts per processor: 1, 2, or 4 (Section 6). */
    std::uint32_t numContexts = 1;

    /** Context switch overhead in cycles: 4 or 16 (Section 6). */
    Tick switchCycles = 4;

    /** Applications insert software prefetches (Section 5). */
    bool prefetch = false;

    /**
     * A blocked context is switched out only if its expected stall is at
     * least this long; shorter stalls (secondary-cache fills, 2-cycle
     * write hits) show up as "no switch" idle time instead.
     */
    Tick switchThreshold = 26;

    /**
     * Instruction overhead charged per software prefetch (address
     * computation, the conditional, and the prefetch instruction
     * itself, Section 5.2).
     */
    Tick prefetchIssueCost = 3;

    /**
     * Direct-execution fast path (Tango-style): guaranteed L1 hits are
     * validated against a per-context window and charged without
     * re-probing the cache, and single-context blocking operations
     * resume through allocation-free scheduler events. Results are
     * byte-identical with the flag on or off; the Machine additionally
     * forces it off whenever observability or the protocol checkers
     * are enabled, and the DASHSIM_FASTPATH=0 environment knob
     * disables it globally.
     */
    bool fastPath = true;

    /**
     * Test-only fuzz knob: when nonzero, every direct-execution
     * eligibility decision (the five fast-path suspend seams and the
     * per-context read-window probe) is additionally gated by one bit
     * of a deterministic xorshift stream seeded from this value, so a
     * run interleaves fast-path and event-kernel servicing of the same
     * reference stream at random. Results must stay byte-identical for
     * any seed; the differential suite sweeps several.
     */
    std::uint64_t fastPathFuzzSeed = 0;
};

} // namespace dashsim

#endif // CPU_CPU_CONFIG_HH
