#include "cpu/processor.hh"

#include <memory>

namespace dashsim {

Processor::Processor(EventQueue &eq, MemorySystem &mem, NodeId node,
                     const CpuConfig &cfg)
    : eq(eq), mem(mem), node(node), cfg(cfg)
{
    fatal_if(cfg.numContexts == 0 || cfg.numContexts > 8,
             "numContexts must be in [1,8]");
    if (cfg.fastPathFuzzSeed != 0) {
        // Per-node decorrelated, never zero (xorshift64 fixed point).
        fuzzState = cfg.fastPathFuzzSeed ^
                    (0x9e3779b97f4a7c15ULL * (std::uint64_t{node} + 1));
        if (fuzzState == 0)
            fuzzState = 1;
    }
    for (ContextId i = 0; i < cfg.numContexts; ++i) {
        auto c = std::make_unique<Context>();
        c->proc = this;
        c->id = i;
        c->state = Context::State::Done;  // until a process is bound
        contexts.push_back(std::move(c));
    }
}

void
Processor::bindProcess(ContextId id, std::coroutine_handle<> top)
{
    panic_if(id >= contexts.size(), "bad context id %u", id);
    Context *c = contexts[id].get();
    panic_if(c->top, "context %u already bound", id);
    c->top = top;
    c->state = Context::State::Ready;
    c->onRun = resumeContinuation(c, top);
    ++live;
}

void
Processor::start()
{
    maybeDispatch(eq.now());
}

// ---------------------------------------------------------------------
// Accounting.
// ---------------------------------------------------------------------

void
Processor::charge(Bucket b, Tick from, Tick to, const Context *who)
{
    if (to <= from)
        return;
    _stats.buckets[static_cast<std::size_t>(b)] += to - from;
    cursor = std::max(cursor, to);
    if (chargeHookFn) [[unlikely]]
        chargeHookFn(chargeHookCtx, node, who, b, from, to);
}

Bucket
Processor::stallBucket(StallReason r) const
{
    switch (r) {
      case StallReason::Read:
        return Bucket::Read;
      case StallReason::Write:
        return Bucket::Write;
      case StallReason::Sync:
        return Bucket::Sync;
      case StallReason::Prefetch:
        return Bucket::PfOverhead;
    }
    return Bucket::Read;
}

bool
Processor::shouldSwitch(Tick stall, StallReason r) const
{
    if (r == StallReason::Sync)
        return true;  // unbounded wait: always yield the processor
    return stall >= cfg.switchThreshold;
}

Tick
Processor::flushPending(Context *c)
{
    Tick t = grantCursor;
    if (c->pendingBusy) {
        charge(Bucket::Busy, t, t + c->pendingBusy, c);
        t += c->pendingBusy;
        _stats.runLength.sample(static_cast<double>(c->pendingBusy));
        c->pendingBusy = 0;
    }
    if (c->pendingPf) {
        charge(Bucket::PfOverhead, t, t + c->pendingPf, c);
        t += c->pendingPf;
        c->pendingPf = 0;
    }
    if (lockoutNs) {
        charge(Bucket::NoSwitch, t, t + lockoutNs, c);
        t += lockoutNs;
        lockoutNs = 0;
    }
    if (lockoutPf) {
        charge(Bucket::PfOverhead, t, t + lockoutPf, c);
        t += lockoutPf;
        lockoutPf = 0;
    }
    cursor = std::max(cursor, t);
    grantCursor = t;
    return t;
}

void
Processor::finalize(Tick end_tick)
{
    if (cursor >= end_tick)
        return;
    Bucket b = cfg.numContexts == 1 ? Bucket::Sync : Bucket::AllIdle;
    const Context *who = nullptr;
    if (cfg.numContexts == 1 &&
        contexts[0]->state == Context::State::Blocked) {
        b = stallBucket(contexts[0]->blockReason);
        who = contexts[0].get();
    }
    charge(b, cursor, end_tick, who);
}

// ---------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------

void
Processor::grant(Context *c, Tick at)
{
    eq.scheduleAtNode(node, at, [this, c]() {
        panic_if(running != c, "grant to a context that lost the CPU");
        grantTick = eq.now();
        grantCursor = grantTick;
        panic_if(!c->onRun, "grant with no continuation");
        auto f = std::move(c->onRun);
        c->onRun = nullptr;
        f();
    });
}

void
Processor::maybeDispatch(Tick now)
{
    if (running || live == 0)
        return;
    // Round-robin scan for a ready context.
    Context *pick = nullptr;
    for (std::uint32_t i = 0; i < contexts.size(); ++i) {
        Context *c = contexts[(rrNext + i) % contexts.size()].get();
        if (c->state == Context::State::Ready) {
            pick = c;
            break;
        }
    }
    if (!pick)
        return;

    // The processor may be logically occupied past the current event
    // time (bursts are executed ahead of the event clock); never grant
    // before it is actually free.
    Tick t = std::max(now, freeSince);

    // Attribute the idle gap since the processor became free.
    if (t > freeSince) {
        Bucket idle = cfg.numContexts == 1 ? stallBucket(pick->blockReason)
                                           : Bucket::AllIdle;
        charge(idle, freeSince, t,
               cfg.numContexts == 1 ? pick : nullptr);
    }

    Tick start = t;
    if (resident && resident != pick) {
        charge(Bucket::Switching, t, t + cfg.switchCycles);
        _stats.contextSwitches++;
        start = t + cfg.switchCycles;
    }
    resident = pick;
    running = pick;
    pick->state = Context::State::Running;
    rrNext = pick->id + 1;
    grant(pick, start);
}

void
Processor::makeReady(Context *c, Tick now)
{
    if (c->state != Context::State::Blocked)
        return;
    c->state = Context::State::Ready;
    maybeDispatch(now);
}

void
Processor::makeReadyIf(Context *c, std::uint64_t gen, Tick now)
{
    if (c->wakeGen == gen)
        makeReady(c, now);
}

void
Processor::blockContext(Context *c, Tick stop,
                        std::optional<Tick> wake_at, StallReason reason,
                        std::function<void()> on_run)
{
    panic_if(running != c, "blocking a context that is not running");
    c->onRun = std::move(on_run);
    c->blockedSince = stop;
    c->blockReason = reason;
    ++c->wakeGen;

    if (wake_at && cfg.numContexts > 1 &&
        !shouldSwitch(*wake_at - stop, reason)) {
        // Short stall: keep the processor, charge "no switch" idle
        // (or prefetch overhead for prefetch-buffer stalls).
        Bucket b = reason == StallReason::Prefetch ? Bucket::PfOverhead
                                                   : Bucket::NoSwitch;
        charge(b, stop, *wake_at, c);
        grant(c, *wake_at);
        return;
    }

    c->state = Context::State::Blocked;
    running = nullptr;
    freeSince = stop;
    if (wake_at) {
        eq.scheduleAtNode(node, *wake_at, [this, c, gen = c->wakeGen]() {
            makeReadyIf(c, gen, eq.now());
        });
    }
    maybeDispatch(stop);
}

void
Processor::resumeNow(Context *c, std::coroutine_handle<> h)
{
    h.resume();
    if (c->top.done()) {
        Tick s = flushPending(c);
        c->state = Context::State::Done;
        running = nullptr;
        freeSince = s;
        --live;
        if (onContextDone)
            onContextDone(s);
        maybeDispatch(s);
    }
}

std::function<void()>
Processor::resumeContinuation(Context *c, std::coroutine_handle<> h)
{
    return [this, c, h]() { resumeNow(c, h); };
}

template <typename Fn>
void
Processor::blockFast(Context *c, Tick stop, Tick wake, StallReason reason,
                     Fn &&body)
{
    // Replicates blockContext() + makeReadyIf() + maybeDispatch() +
    // grant() for the only shape a single-context direct-executed
    // processor can take: the context blocks, nothing else can run,
    // and the wake tick is known. State changes, charges, and the two
    // scheduled events (wake, grant) match the general path exactly;
    // the std::function continuation and the scheduler scan are gone.
    c->blockedSince = stop;
    c->blockReason = reason;
    ++c->wakeGen;
    c->state = Context::State::Blocked;
    running = nullptr;
    freeSince = stop;
    eq.scheduleAtNode(node, wake,
                      [this, c, body = std::forward<Fn>(body)]() {
        // No other wake source exists on this path: watches are never
        // registered and stale scheduled wakeups are generation-guarded.
        panic_if(c->state != Context::State::Blocked,
                 "direct-exec wake of a non-blocked context");
        Tick t = eq.now();
        if (t > freeSince)
            charge(stallBucket(c->blockReason), freeSince, t, c);
        resident = c;
        running = c;
        c->state = Context::State::Running;
        rrNext = c->id + 1;
        eq.scheduleAtNode(node, t, [this, c, body]() {
            grantTick = eq.now();
            grantCursor = grantTick;
            body(*this, *c);
        });
    });
}

// ---------------------------------------------------------------------
// Fast (non-suspending) operations.
// ---------------------------------------------------------------------


bool
Processor::fastRead(Context *c, Addr a, unsigned size)
{
    const unsigned off = static_cast<unsigned>(a) & (lineBytes - 1);
    const bool windowable =
        directExec && off + size <= lineBytes && fastOk();
    if (windowable) {
        // Window probe: the line was a validated guaranteed L1 hit with
        // no store-forwarding candidate; two epoch compares re-prove
        // both facts without touching the cache or the stats (batched
        // by noteWindowHit, folded in after the run).
        Context::FastWin &w = c->win[lineIndex(a) & 7];
        const auto need =
            static_cast<std::uint16_t>(((1u << size) - 1) << off);
        if (w.line == lineAddr(a) &&
            w.cacheEpochV == mem.cacheEpoch(node) &&
            (w.mask & need) == need) {
            bool clean = w.storeEpochV == mem.storeEpoch(node);
            if (!clean && !mem.pendingStoreValue(node, a)) {
                // Stores entered the buffer since validation, but none
                // to this word: re-stamp and keep the window.
                w.storeEpochV = mem.storeEpoch(node);
                clean = true;
            }
            if (clean) {
                mem.noteWindowHit(node);
                c->readValue = mem.memory().loadRaw(a, size);
                c->pendingBusy += 1;
                return true;
            }
        }
    }
    if (auto v = mem.pendingStoreValue(node, a)) {
        mem.noteForwardedRead(node);
        if (mem.txnHookActive()) [[unlikely]]
            mem.noteFastReadHit(node, fastIssueTick(c));
        c->readValue = *v;
        c->pendingBusy += 1;
        return true;
    }
    if (mem.tryFastRead(node, a)) {
        if (mem.txnHookActive()) [[unlikely]]
            mem.noteFastReadHit(node, fastIssueTick(c));
        if (windowable) {
            // Validated just now: primary hit, and the forwarding probe
            // above came back empty. Remember both (with their epochs).
            Context::FastWin &w = c->win[lineIndex(a) & 7];
            const auto need =
                static_cast<std::uint16_t>(((1u << size) - 1) << off);
            if (w.line == lineAddr(a) &&
                w.cacheEpochV == mem.cacheEpoch(node) &&
                w.storeEpochV == mem.storeEpoch(node)) {
                w.mask |= need;
            } else {
                w.line = lineAddr(a);
                w.mask = need;
                w.cacheEpochV = mem.cacheEpoch(node);
                w.storeEpochV = mem.storeEpoch(node);
            }
        }
        c->readValue = mem.memory().loadRaw(a, size);
        c->pendingBusy += 1;
        return true;
    }
    return false;
}

bool
Processor::fastWrite(Context *c, Addr a, std::uint64_t v, unsigned size,
                     bool release)
{
    panic_if(!buffersWrites(cfg.consistency),
             "fastWrite requires a buffered consistency model");
    Tick s = grantCursor + c->pendingBusy + c->pendingPf + lockoutNs +
             lockoutPf;
    const bool in_order = cfg.consistency == Consistency::PC;
    BufferOutcome o =
        mem.writeRc(node, a, v, size, s, release, c->id, in_order);
    if (o.acceptTick <= s) {
        c->pendingBusy += 1;
        return true;
    }
    c->stallUntil = o.acceptTick;
    return false;
}

bool
Processor::fastPrefetch(Context *c, Addr a, bool exclusive)
{
    Tick s = grantCursor + c->pendingBusy + c->pendingPf + lockoutNs +
             lockoutPf + cfg.prefetchIssueCost;
    c->pendingPf += cfg.prefetchIssueCost;
    _stats.prefetchesIssued++;
    BufferOutcome o = mem.prefetch(node, a, exclusive, s);
    if (o.acceptTick <= s)
        return true;
    c->stallUntil = o.acceptTick;
    return false;
}

// ---------------------------------------------------------------------
// Suspending operations.
// ---------------------------------------------------------------------

void
Processor::suspendRead(Context *c, Addr a, unsigned size,
                       std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    AccessOutcome o = mem.read(node, a, s);
    if (directExec && fastOk()) {
        blockFast(c, s, o.complete, StallReason::Read,
                  [a, size, h](Processor &p, Context &cc) {
                      cc.readValue = p.mem.memory().loadRaw(a, size);
                      p.resumeNow(&cc, h);
                  });
        return;
    }
    blockContext(c, s, o.complete, StallReason::Read,
                 [this, c, a, size, h]() {
                     c->readValue = mem.memory().loadRaw(a, size);
                     resumeContinuation(c, h)();
                 });
}

void
Processor::suspendWrite(Context *c, Addr a, std::uint64_t v, unsigned size,
                        bool release, std::coroutine_handle<> h)
{
    // Under RC this path is reached only via fastWrite()'s stall; under
    // SC every shared write stalls the processor until it completes.
    (void)release;  // a release needs no extra handling when stalling
    Tick s = flushPending(c);
    AccessOutcome o = mem.writeSc(node, a, v, size, s);
    if (directExec && fastOk()) {
        blockFast(c, s, o.complete, StallReason::Write,
                  [h](Processor &p, Context &cc) { p.resumeNow(&cc, h); });
        return;
    }
    blockContext(c, s, o.complete, StallReason::Write,
                 resumeContinuation(c, h));
}

void
Processor::suspendWriteStall(Context *c, std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    Tick wake = std::max(s, c->stallUntil);
    if (directExec && fastOk()) {
        blockFast(c, s, wake, StallReason::Write,
                  [h](Processor &p, Context &cc) { p.resumeNow(&cc, h); });
        return;
    }
    blockContext(c, s, wake, StallReason::Write, resumeContinuation(c, h));
}

void
Processor::suspendPrefetchStall(Context *c, std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    Tick wake = std::max(s, c->stallUntil);
    if (directExec && fastOk()) {
        blockFast(c, s, wake, StallReason::Prefetch,
                  [h](Processor &p, Context &cc) { p.resumeNow(&cc, h); });
        return;
    }
    blockContext(c, s, wake, StallReason::Prefetch,
                 resumeContinuation(c, h));
}

void
Processor::suspendPause(Context *c, Tick n, std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    if (directExec && fastOk()) {
        blockFast(c, s, s + n, StallReason::Sync,
                  [h](Processor &p, Context &cc) { p.resumeNow(&cc, h); });
        return;
    }
    blockContext(c, s, s + n, StallReason::Sync, resumeContinuation(c, h));
}

Tick
Processor::syncFenceTick(Context *c, Tick s) const
{
    // Weak consistency: every synchronization access waits for the
    // context's outstanding writes to drain (a full fence). Processor
    // consistency: an atomic operation contains a write, and PC keeps
    // writes in program order, so it too waits for the context's
    // buffered writes.
    if (cfg.consistency == Consistency::WC)
        return std::max(s, mem.writeDrainTick(node, c->id));
    if (cfg.consistency == Consistency::PC)
        return std::max(s, mem.writeAllDoneTick(node, c->id));
    return s;
}

void
Processor::suspendRmw(Context *c, Addr a, RmwOp op, std::uint64_t operand,
                      unsigned size, std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    AccessOutcome o = mem.rmw(node, a, op, operand, size,
                              syncFenceTick(c, s),
                              [c](std::uint64_t old) { c->rmwOld = old; });
    blockContext(c, s, o.complete, StallReason::Sync,
                 resumeContinuation(c, h));
}

// ---------------------------------------------------------------------
// Lock primitive: test&set with invalidation-wakeup spinning.
// ---------------------------------------------------------------------

void
Processor::suspendLock(Context *c, Addr a, std::coroutine_handle<> h)
{
    lockAttempt(c, a, h);
}

void
Processor::lockWait(Context *c, Addr a, std::coroutine_handle<> h)
{
    // Spin on the cached copy: block until a commit to the lock line
    // (the holder's release) invalidates it, then retry. A waiter that
    // finds the lock already free when it checks (lost-wakeup guard)
    // becomes ready immediately.
    Tick s = flushPending(c);
    c->waitAddr = a;
    blockContext(c, s, std::nullopt, StallReason::Sync, [this, c, a, h]() {
        // test&test&set: re-read the lock word before attempting the
        // exclusive test&set, so a herd of waiters shares the line
        // instead of serializing ownership transfers.
        Tick s2 = flushPending(c);
        AccessOutcome o = mem.read(node, a, s2);
        blockContext(c, s2, o.complete, StallReason::Sync,
                     [this, c, a, h]() {
                         c->pendingBusy += 2;  // spin-loop test & branch
                         if (mem.memory().loadRaw(a, 4) == 0)
                             lockAttempt(c, a, h);
                         else
                             lockWait(c, a, h);
                     });
    });
    if (!mem.config().cacheSharedData) {
        // Without caches there is no invalidation to wake us: the spin
        // loop polls memory. Re-arm the retest after a short backoff;
        // the uncached read latency itself paces the polling.
        eq.scheduleAtNode(node, std::max(s + 4, eq.now()),
                          [this, c, gen = c->wakeGen]() {
                              makeReadyIf(c, gen, eq.now());
                          });
        return;
    }
    std::uint64_t gen = c->wakeGen;
    mem.watchLine(a, [this, c, gen]() { makeReadyIf(c, gen, eq.now()); });
    // The release may have committed before the watch was placed; probe
    // the authoritative value to avoid a lost wakeup.
    if (mem.memory().loadRaw(a, 4) == 0)
        makeReadyIf(c, gen, eq.now());
}

void
Processor::lockAttempt(Context *c, Addr a, std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    AccessOutcome o = mem.rmw(node, a, RmwOp::TestAndSet, 0, 4,
                              syncFenceTick(c, s),
                              [c](std::uint64_t old) { c->rmwOld = old; });
    blockContext(c, s, o.complete, StallReason::Sync, [this, c, a, h]() {
        if (c->rmwOld == 0) {
            // Acquired.
            _stats.locks++;
            c->pendingBusy += 1;
            resumeContinuation(c, h)();
            return;
        }
        _stats.lockRetries++;
        lockWait(c, a, h);
    });
}

// ---------------------------------------------------------------------
// Barrier primitive: fetch&add arrival plus sense-reversing release.
// ---------------------------------------------------------------------

void
Processor::suspendBarrier(Context *c, Addr a, std::uint32_t participants,
                          std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    _stats.barriers++;
    // Barrier arrival has release semantics: under RC the arrival
    // increment must not become visible before the writes of the phase
    // it terminates, so it is issued only once the write buffer has
    // drained. The extra wait is charged as synchronization time.
    Tick arrive = s;
    if (buffersWrites(cfg.consistency))
        arrive = std::max(arrive, mem.writeDrainTick(node, c->id));
    std::uint32_t my = c->barrierSense[a] ^ 1u;
    c->barrierSense[a] = my;
    const Addr count_addr = a;
    const Addr sense_addr = a + lineBytes;

    AccessOutcome o =
        mem.rmw(node, count_addr, RmwOp::FetchAdd, 1, 4, arrive,
                [c](std::uint64_t old) { c->rmwOld = old; });
    blockContext(
        c, s, o.complete, StallReason::Sync,
        [this, c, count_addr, sense_addr, my, participants, h]() {
            if (c->rmwOld + 1 == participants) {
                // Last arriver: reset the count, then release the sense
                // flag (a release-classified write under RC).
                Tick s2 = flushPending(c);
                c->pendingBusy += 2;
                s2 = flushPending(c);
                if (buffersWrites(cfg.consistency)) {
                    mem.writeRc(node, count_addr, 0, 4, s2, false,
                                c->id);
                    mem.writeRc(node, sense_addr, my, 4, s2, true,
                                c->id);
                    barrierFinish(c, h);
                } else {
                    AccessOutcome o1 =
                        mem.writeSc(node, count_addr, 0, 4, s2);
                    AccessOutcome o2 =
                        mem.writeSc(node, sense_addr, my, 4, o1.complete);
                    blockContext(c, s2, o2.complete, StallReason::Sync,
                                 [this, c, h]() { barrierFinish(c, h); });
                }
            } else {
                barrierSpin(c, sense_addr, my, h, true);
            }
        });
}

void
Processor::suspendWaitFlag(Context *c, Addr a, std::uint32_t value,
                           std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    _stats.locks++;
    AccessOutcome o = mem.read(node, a, syncFenceTick(c, s));
    blockContext(c, s, o.complete, StallReason::Sync,
                 [this, c, a, value, h]() {
                     c->pendingBusy += 2;
                     if (mem.memory().loadRaw(a, 4) == value)
                         resumeContinuation(c, h)();
                     else
                         barrierSpin(c, a, value, h, false);
                 });
}

void
Processor::suspendQueuedLock(Context *c, Addr a, std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    c->waitAddr = a;
    // The grant tick is unknown until the home directory decides;
    // block without a scheduled wake and let the grant wake us.
    blockContext(c, s, std::nullopt, StallReason::Sync,
                 [this, c, h]() {
                     _stats.locks++;
                     c->pendingBusy += 1;
                     resumeContinuation(c, h)();
                 });
    std::uint64_t gen = c->wakeGen;
    mem.queuedLockAcquire(node, a, syncFenceTick(c, s),
                          [this, c, gen](Tick when) {
                              // Grant runs home-side; the wake is ours.
                              eq.scheduleAtNode(node,
                                                std::max(when, eq.now()),
                                            [this, c, gen]() {
                                                makeReadyIf(c, gen,
                                                            eq.now());
                                            });
                          });
}

void
Processor::suspendQueuedUnlock(Context *c, Addr a,
                               std::coroutine_handle<> h)
{
    Tick s = flushPending(c);
    // Release semantics: the unlock leaves only after this context's
    // writes drain under any buffered model.
    Tick issue = s;
    if (buffersWrites(cfg.consistency))
        issue = std::max(issue, mem.writeDrainTick(node, c->id));
    mem.queuedLockRelease(node, a, issue);
    // The releasing processor does not wait for the home to process
    // the release; it only pays the local issue (2 cycles).
    blockContext(c, s, s + 2, StallReason::Write,
                 resumeContinuation(c, h));
}

void
Processor::barrierSpin(Context *c, Addr sense_addr, std::uint32_t my_sense,
                       std::coroutine_handle<> h, bool is_barrier)
{
    Tick s = flushPending(c);
    c->waitAddr = sense_addr;
    blockContext(c, s, std::nullopt, StallReason::Sync,
                 [this, c, sense_addr, my_sense, h, is_barrier]() {
                     // Woken by a commit on the sense line: refetch it.
                     Tick s2 = flushPending(c);
                     AccessOutcome o = mem.read(node, sense_addr, s2);
                     blockContext(
                         c, s2, o.complete, StallReason::Sync,
                         [this, c, sense_addr, my_sense, h, is_barrier]() {
                             c->pendingBusy += 2;
                             if (mem.memory().loadRaw(sense_addr, 4) ==
                                 my_sense) {
                                 if (is_barrier)
                                     barrierFinish(c, h);
                                 else
                                     resumeContinuation(c, h)();
                             } else {
                                 barrierSpin(c, sense_addr, my_sense, h,
                                             is_barrier);
                             }
                         });
                 });
    if (!mem.config().cacheSharedData) {
        eq.scheduleAtNode(node, std::max(s + 4, eq.now()),
                          [this, c, gen = c->wakeGen]() {
                              makeReadyIf(c, gen, eq.now());
                          });
        return;
    }
    std::uint64_t gen = c->wakeGen;
    mem.watchLine(sense_addr,
                  [this, c, gen]() { makeReadyIf(c, gen, eq.now()); });
    if (mem.memory().loadRaw(sense_addr, 4) == my_sense)
        makeReadyIf(c, gen, eq.now());
}

// ---------------------------------------------------------------------
// Checkpoint park/resume.
// ---------------------------------------------------------------------

void
Processor::barrierFinish(Context *c, std::coroutine_handle<> h)
{
    // A barrier completion is the only point where a checkpoint may
    // park the context: returning true from the hook swallows the
    // resume, leaving the coroutine suspended at the barrier await
    // with its post-barrier pendingBusy already accumulated.
    if (barrierHook && barrierHook(c))
        return;
    resumeNow(c, h);
}

void
Processor::scheduleParkResume(ContextId id, Tick at)
{
    panic_if(id >= contexts.size(), "bad context id %u", id);
    Context *c = contexts[id].get();
    eq.scheduleAtNode(node, at, [this, c]() {
        // grantTick/grantCursor were restored by loadState (at the RC
        // last-arriver park site grantCursor has already advanced past
        // the park tick); do not reset them here.
        resumeNow(c, c->top);
    });
}

// ---------------------------------------------------------------------
// Fill lockout hook.
// ---------------------------------------------------------------------

void
Processor::onFillLockout(Tick when, bool prefetch)
{
    // Charge the 4-cycle primary-cache lockout only if the processor is
    // occupied when the fill returns (Section 5.1 / Section 6.1).
    bool occupied = running != nullptr || cursor > when;
    if (!occupied)
        return;
    Tick fill = mem.config().lat.primaryFillBusy;
    if (prefetch)
        lockoutPf += fill;
    else if (cfg.numContexts > 1)
        lockoutNs += fill;
}

} // namespace dashsim
