/**
 * @file
 * The processor model: blocking reads, SC/RC write handling, software
 * prefetch issue, multiple hardware contexts with switch overhead, and
 * the per-category execution-time accounting behind every figure in the
 * paper (busy / read / write / sync / prefetch overhead for the
 * single-context figures; busy / switching / all-idle / no-switch for
 * the multiple-context figures).
 */

#ifndef CPU_PROCESSOR_HH
#define CPU_PROCESSOR_HH

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cpu/cpu_config.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dashsim {

class Processor;

/** Execution-time categories (the bar sections of Figures 2-6). */
enum class Bucket : std::uint8_t
{
    Busy,        ///< useful instructions (including spinning, Sec. 2.2)
    Read,        ///< stalled on read misses
    Write,       ///< stalled on writes (SC) or a full write buffer (RC)
    Sync,        ///< stalled on locks and barriers
    PfOverhead,  ///< prefetch instructions, buffer stalls, fill stalls
    Switching,   ///< context-switch cycles (multi-context)
    AllIdle,     ///< every context blocked (multi-context)
    NoSwitch,    ///< stalled but not switched out (multi-context)
    NumBuckets,
};

inline constexpr std::size_t numBuckets =
    static_cast<std::size_t>(Bucket::NumBuckets);

/** Why a context stopped executing (chooses the accounting bucket). */
enum class StallReason : std::uint8_t
{
    Read,
    Write,
    Sync,
    Prefetch,
};

/**
 * One hardware context: a register set the processor can switch to when
 * the running context encounters a long-latency operation.
 */
class Context
{
  public:
    Processor *proc = nullptr;
    ContextId id = 0;

    /** Top-level coroutine of the simulated process bound here. */
    std::coroutine_handle<> top;

    enum class State : std::uint8_t { Ready, Running, Blocked, Done };
    State state = State::Ready;

    /** Busy cycles accumulated since the last suspension. */
    Tick pendingBusy = 0;
    /** Prefetch-overhead cycles accumulated since the last suspension. */
    Tick pendingPf = 0;

    /** Result slots the awaitables read on resume. */
    std::uint64_t readValue = 0;
    std::uint64_t rmwOld = 0;

    /** Deferred-stall info for a write that must suspend. */
    Tick stallUntil = 0;

    /** Logical tick at which this context last blocked. */
    Tick blockedSince = 0;

    /** Address being watched while spin-blocked (debug aid). */
    Addr waitAddr = 0;
    StallReason blockReason = StallReason::Read;

    /**
     * Wake generation: incremented on every block. Scheduled wake
     * events and watch callbacks capture the generation they were
     * created for and are ignored if the context has since been woken
     * and re-blocked - otherwise a stale wakeup (e.g. a line-watch
     * firing while the context already waits on a new access) would
     * resume a continuation before its operation completed.
     */
    std::uint64_t wakeGen = 0;

    /** What to execute when the scheduler grants us the processor. */
    std::function<void()> onRun;

    /** Local sense per barrier address (sense-reversing barriers). */
    std::unordered_map<Addr, std::uint32_t> barrierSense;

    /**
     * Direct-execution read window: one recently-validated guaranteed-
     * L1-hit line per slot. A hit re-proves itself with two epoch
     * compares (mem_system.hh) instead of re-probing the cache and
     * re-recording statistics per reference. `mask` marks the bytes of
     * the line actually validated (probes are per-address).
     */
    struct FastWin
    {
        Addr line = ~Addr{0};
        std::uint16_t mask = 0;
        std::uint64_t cacheEpochV = 0;
        std::uint64_t storeEpochV = 0;
    };
    std::array<FastWin, 8> win{};

    bool done() const { return state == State::Done; }
};

/**
 * A single processing node's CPU.
 *
 * Owns up to four contexts and a deterministic round-robin scheduler.
 * All simulated-time accounting happens here: every cycle between tick
 * 0 and the end of the run is attributed to exactly one Bucket.
 */
class Processor
{
  public:
    struct Stats
    {
        std::array<std::uint64_t, numBuckets> buckets{};
        std::uint64_t locks = 0;          ///< successful lock acquires
        std::uint64_t lockRetries = 0;    ///< failed test&set attempts
        std::uint64_t barriers = 0;       ///< barrier arrivals
        std::uint64_t contextSwitches = 0;
        std::uint64_t prefetchesIssued = 0;
        SampleStat runLength;             ///< busy cycles between stalls

        std::uint64_t
        bucket(Bucket b) const
        {
            return buckets[static_cast<std::size_t>(b)];
        }

        std::uint64_t
        total() const
        {
            std::uint64_t t = 0;
            for (auto v : buckets)
                t += v;
            return t;
        }
    };

    Processor(EventQueue &eq, MemorySystem &mem, NodeId node,
              const CpuConfig &cfg);

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /**
     * Observability hook (src/obs): fired on every accounting charge
     * with the context the cycles belong to (@p who null for charges
     * that are not attributable to one context: switching, multi-
     * context idle). Devirtualized fn-pointer + ctx; disabled cost is
     * one predictable branch inside charge().
     */
    using ChargeHookFn = void (*)(void *ctx, NodeId node,
                                  const Context *who, Bucket b, Tick from,
                                  Tick to);

    void
    setChargeHook(ChargeHookFn fn, void *ctx)
    {
        chargeHookFn = fn;
        chargeHookCtx = ctx;
    }

    NodeId nodeId() const { return node; }
    const CpuConfig &config() const { return cfg; }
    bool isRc() const { return cfg.consistency == Consistency::RC; }

    /**
     * Enable the direct-execution fast path. Only the Machine calls
     * this, and only when the run is eligible (single context, no
     * observability, no protocol checkers); results are byte-identical
     * either way.
     */
    void setDirectExec(bool on) { directExec = on; }

    /** True for every model whose writes go through the write buffer
     *  (PC, WC, RC); false only for sequential consistency. */
    bool
    buffered() const
    {
        return buffersWrites(cfg.consistency);
    }
    std::uint32_t numContexts() const { return cfg.numContexts; }

    /** Bind a process coroutine to context @p id. Call before start(). */
    void bindProcess(ContextId id, std::coroutine_handle<> top);

    /** Kick the scheduler at tick 0 (all bound contexts are Ready). */
    void start();

    /** Number of bound contexts that have not finished. */
    std::uint32_t liveContexts() const { return live; }

    /** Set by the Machine: called with the logical finish tick whenever
     *  one of this processor's contexts runs to completion. */
    std::function<void(Tick)> onContextDone;

    // ------------------------------------------------------------------
    // Fast (non-suspending) operations, called from awaitables.
    // ------------------------------------------------------------------

    /** Charge @p n busy cycles to the running context. */
    void
    addBusy(Context *c, Tick n)
    {
        c->pendingBusy += n;
    }

    /**
     * Try to satisfy a shared read without suspending (store forward
     * from the write buffer, or a primary-cache hit). On success the
     * value is in c->readValue and one busy cycle has been charged.
     */
    bool fastRead(Context *c, Addr a, unsigned size);

    /**
     * Try to retire a shared write without suspending (RC only: the
     * write buffer has room). Returns false when the caller must
     * suspend; c->stallUntil then holds the buffer-slot tick.
     */
    bool fastWrite(Context *c, Addr a, std::uint64_t v, unsigned size,
                   bool release);

    /**
     * Issue a software prefetch. Returns false when the prefetch buffer
     * is full and the processor must stall (c->stallUntil set).
     */
    bool fastPrefetch(Context *c, Addr a, bool exclusive);

    // ------------------------------------------------------------------
    // Suspending operations, called from await_suspend.
    // ------------------------------------------------------------------

    void suspendRead(Context *c, Addr a, unsigned size,
                     std::coroutine_handle<> h);
    void suspendWrite(Context *c, Addr a, std::uint64_t v, unsigned size,
                      bool release, std::coroutine_handle<> h);
    void suspendWriteStall(Context *c, std::coroutine_handle<> h);
    void suspendPrefetchStall(Context *c, std::coroutine_handle<> h);

    /**
     * Yield the processor for @p n cycles. Unlike compute(), which only
     * accrues busy time within the current grant, this genuinely blocks
     * the context and lets the event queue (and other contexts) run —
     * required by anything that polls simulator-level state.
     */
    void suspendPause(Context *c, Tick n, std::coroutine_handle<> h);
    void suspendRmw(Context *c, Addr a, RmwOp op, std::uint64_t operand,
                    unsigned size, std::coroutine_handle<> h);
    void suspendLock(Context *c, Addr a, std::coroutine_handle<> h);
    void suspendBarrier(Context *c, Addr a, std::uint32_t participants,
                        std::coroutine_handle<> h);

    /**
     * Acquire-style wait until the 32-bit flag at @p a equals @p value
     * (LU's produced-column flags). Counted as a lock acquisition.
     */
    void suspendWaitFlag(Context *c, Addr a, std::uint32_t value,
                         std::coroutine_handle<> h);

    /** Acquire a DASH queue-based lock (directory-granted handoff). */
    void suspendQueuedLock(Context *c, Addr a, std::coroutine_handle<> h);

    /** Release a DASH queue-based lock. */
    void suspendQueuedUnlock(Context *c, Addr a,
                             std::coroutine_handle<> h);

    // ------------------------------------------------------------------
    // Hooks and results.
    // ------------------------------------------------------------------

    /** Primary-cache fill lockout (wired to MemorySystem::setFillHook). */
    void onFillLockout(Tick when, bool prefetch);

    /** Flush open stall spans when the whole run ends at @p end_tick. */
    void finalize(Tick end_tick);

    const Stats &stats() const { return _stats; }

    Context &context(ContextId id) { return *contexts[id]; }

    // ------------------------------------------------------------------
    // Barrier-point checkpoints (core/checkpoint.hh). The hook fires at
    // every barrier completion, right before the completing context
    // would resume; returning true *parks* the context (it is simply
    // never resumed, staying consistent mid-grant) so the Machine can
    // capture the quiescent state. Only Machine::captureRun installs
    // one.
    // ------------------------------------------------------------------

    /** Install (or clear) the barrier-completion park hook. */
    void
    setBarrierHook(std::function<bool(Context *)> hook)
    {
        barrierHook = std::move(hook);
    }

    /**
     * Serialize scheduler + accounting + per-context state. Every
     * context must be parked at a barrier (captureRun guarantees it).
     */
    template <class W>
    void saveState(W &w) const;

    /**
     * Restore state saved by saveState() onto freshly bound contexts.
     * The parked context is left Running and resident, exactly as it
     * was mid-grant at capture; scheduleParkResume() re-arms its
     * resumption.
     */
    template <class R>
    void loadState(R &r);

    /** Resume context @p id from the top of its (fresh) coroutine at
     *  tick @p at — the tick it originally completed its barrier. */
    void scheduleParkResume(ContextId id, Tick at);

  private:
    /**
     * Logical tick a non-suspending access issued right now would
     * occupy: the grant cursor plus every cycle already accumulated but
     * not yet flushed (cf. fastWrite's buffer-slot computation).
     */
    Tick
    fastIssueTick(const Context *c) const
    {
        return grantCursor + c->pendingBusy + c->pendingPf + lockoutNs +
               lockoutPf;
    }

    /**
     * Charge the running context's accumulated busy / prefetch cycles
     * (and any pending fill lockout) and return the logical tick at
     * which the context actually stops executing.
     */
    Tick flushPending(Context *c);

    /**
     * Stop executing @p c. If @p wake_at is known and short (or this is
     * a single-context processor) the context keeps the processor and
     * resumes in place; otherwise it is switched out and the scheduler
     * picks another ready context.
     */
    void blockContext(Context *c, Tick stop, std::optional<Tick> wake_at,
                      StallReason reason, std::function<void()> on_run);

    /** Make a blocked context runnable and dispatch if possible. */
    void makeReady(Context *c, Tick now);

    /** makeReady guarded by the wake generation captured at block time. */
    void makeReadyIf(Context *c, std::uint64_t gen, Tick now);

    /** Grant the processor to a ready context if it is free. */
    void maybeDispatch(Tick now);

    /** Run a context's continuation at @p at (scheduled as an event). */
    void grant(Context *c, Tick at);

    /** Coroutine-resume continuation with completion detection. */
    std::function<void()> resumeContinuation(Context *c,
                                             std::coroutine_handle<> h);

    /** resumeContinuation's body, invoked directly (fast path). */
    void resumeNow(Context *c, std::coroutine_handle<> h);

    /**
     * Direct-execution replacement for blockContext() + the wake /
     * dispatch / grant event chain when the wake tick is known and
     * this is a single-context processor: two small-buffer events, no
     * std::function allocation, no scheduler scan. @p body runs under
     * the grant exactly where the blocked continuation would have.
     */
    template <typename Fn>
    void blockFast(Context *c, Tick stop, Tick wake, StallReason reason,
                   Fn &&body);

    /** Lock-acquire attempt (the exclusive test&set). */
    void lockAttempt(Context *c, Addr a, std::coroutine_handle<> h);

    /** Spin on a cached lock copy until it is invalidated, then retest. */
    void lockWait(Context *c, Addr a, std::coroutine_handle<> h);

    /**
     * Barrier spin step: re-read the sense flag after a wakeup.
     * @p is_barrier distinguishes true barrier waits from waitFlag()
     * spins (which share this machinery but must never trip the
     * checkpoint park hook).
     */
    void barrierSpin(Context *c, Addr sense_addr, std::uint32_t my_sense,
                     std::coroutine_handle<> h, bool is_barrier);

    /** Barrier completion: consult the park hook, then resume. */
    void barrierFinish(Context *c, std::coroutine_handle<> h);

    /** One deterministic eligibility coin-flip of the fuzz stream
     *  (cpu_config.hh fastPathFuzzSeed); always true when not fuzzing. */
    bool
    fastOk()
    {
        if (fuzzState == 0) [[likely]]
            return true;
        fuzzState ^= fuzzState << 13;
        fuzzState ^= fuzzState >> 7;
        fuzzState ^= fuzzState << 17;
        return (fuzzState & 1) != 0;
    }

    void charge(Bucket b, Tick from, Tick to,
                const Context *who = nullptr);

    /** Bucket used for a non-switched stall of the given reason. */
    Bucket stallBucket(StallReason r) const;

    /** Issue tick of a synchronization access after any model-mandated
     *  write-drain fence (weak consistency). */
    Tick syncFenceTick(Context *c, Tick s) const;

    bool shouldSwitch(Tick stall, StallReason r) const;

    EventQueue &eq;
    MemorySystem &mem;
    NodeId node;
    CpuConfig cfg;

    std::vector<std::unique_ptr<Context>> contexts;
    Context *running = nullptr;   ///< context currently granted the CPU
    Context *resident = nullptr;  ///< context whose state is loaded
    std::uint32_t rrNext = 0;     ///< round-robin scan position
    std::uint32_t live = 0;

    Tick cursor = 0;       ///< all time before this tick is attributed
    Tick freeSince = 0;    ///< processor idle since (when running==null)
    Tick grantTick = 0;    ///< when the running context got the CPU
    /** Logical time consumed within the current grant; flushPending
     *  resumes from here so it can be called repeatedly per grant. */
    Tick grantCursor = 0;
    Tick lockoutNs = 0;    ///< pending no-switch fill-lockout cycles
    Tick lockoutPf = 0;    ///< pending prefetch fill-lockout cycles

    ChargeHookFn chargeHookFn = nullptr;
    void *chargeHookCtx = nullptr;

    bool directExec = false;  ///< direct-execution fast path enabled
    std::uint64_t fuzzState = 0;  ///< nonzero iff eligibility fuzzing

    std::function<bool(Context *)> barrierHook;  ///< checkpoint capture

    Stats _stats;
};

// ---------------------------------------------------------------------
// Checkpoint serialization. Template bodies live in the header so the
// Writer/Reader types stay decoupled from this file's includes.
// ---------------------------------------------------------------------

template <class W>
void
Processor::saveState(W &w) const
{
    w.u64(cursor);
    w.u64(freeSince);
    w.u64(grantTick);
    w.u64(grantCursor);
    w.u64(lockoutNs);
    w.u64(lockoutPf);
    w.u32(rrNext);
    for (auto v : _stats.buckets)
        w.u64(v);
    w.u64(_stats.locks);
    w.u64(_stats.lockRetries);
    w.u64(_stats.barriers);
    w.u64(_stats.contextSwitches);
    w.u64(_stats.prefetchesIssued);
    _stats.runLength.saveState(w);
    w.u32(static_cast<std::uint32_t>(contexts.size()));
    for (const auto &cp : contexts) {
        const Context &c = *cp;
        w.u8(static_cast<std::uint8_t>(c.state));
        w.u64(c.pendingBusy);
        w.u64(c.pendingPf);
        w.u64(c.readValue);
        w.u64(c.rmwOld);
        w.u64(c.stallUntil);
        w.u64(c.blockedSince);
        w.u64(c.waitAddr);
        w.u8(static_cast<std::uint8_t>(c.blockReason));
        w.u64(c.wakeGen);
        // Deterministic order for the sense map.
        std::vector<std::pair<Addr, std::uint32_t>> senses(
            c.barrierSense.begin(), c.barrierSense.end());
        std::sort(senses.begin(), senses.end());
        w.u32(static_cast<std::uint32_t>(senses.size()));
        for (const auto &[addr, sense] : senses) {
            w.u64(addr);
            w.u32(sense);
        }
        // The direct-execution windows are deliberately not saved: a
        // window only memoizes a provable primary hit, so starting
        // cold is observationally identical (the first re-probe
        // revalidates through tryFastRead, which by the fast path's
        // identity proof records the same statistics either way).
    }
}

template <class R>
void
Processor::loadState(R &r)
{
    cursor = r.u64();
    freeSince = r.u64();
    grantTick = r.u64();
    grantCursor = r.u64();
    lockoutNs = r.u64();
    lockoutPf = r.u64();
    rrNext = r.u32();
    for (auto &v : _stats.buckets)
        v = r.u64();
    _stats.locks = r.u64();
    _stats.lockRetries = r.u64();
    _stats.barriers = r.u64();
    _stats.contextSwitches = r.u64();
    _stats.prefetchesIssued = r.u64();
    _stats.runLength.loadState(r);
    std::uint32_t n = r.u32();
    fatal_if(n != contexts.size(),
             "processor checkpoint context-count mismatch");
    for (auto &cp : contexts) {
        Context &c = *cp;
        c.state = static_cast<Context::State>(r.u8());
        c.pendingBusy = r.u64();
        c.pendingPf = r.u64();
        c.readValue = r.u64();
        c.rmwOld = r.u64();
        c.stallUntil = r.u64();
        c.blockedSince = r.u64();
        c.waitAddr = r.u64();
        c.blockReason = static_cast<StallReason>(r.u8());
        c.wakeGen = r.u64();
        c.barrierSense.clear();
        for (std::uint32_t i = 0, m = r.u32(); i < m; ++i) {
            Addr addr = r.u64();
            c.barrierSense[addr] = r.u32();
        }
        c.win = {};
        if (c.state == Context::State::Running) {
            // Parked mid-grant at capture: make it resident again and
            // drop the bind-time continuation (a park happens after the
            // grant consumed it).
            running = &c;
            resident = &c;
            c.onRun = nullptr;
        }
    }
}

} // namespace dashsim

#endif // CPU_PROCESSOR_HH
