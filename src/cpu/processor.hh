/**
 * @file
 * The processor model: blocking reads, SC/RC write handling, software
 * prefetch issue, multiple hardware contexts with switch overhead, and
 * the per-category execution-time accounting behind every figure in the
 * paper (busy / read / write / sync / prefetch overhead for the
 * single-context figures; busy / switching / all-idle / no-switch for
 * the multiple-context figures).
 */

#ifndef CPU_PROCESSOR_HH
#define CPU_PROCESSOR_HH

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cpu/cpu_config.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dashsim {

class Processor;

/** Execution-time categories (the bar sections of Figures 2-6). */
enum class Bucket : std::uint8_t
{
    Busy,        ///< useful instructions (including spinning, Sec. 2.2)
    Read,        ///< stalled on read misses
    Write,       ///< stalled on writes (SC) or a full write buffer (RC)
    Sync,        ///< stalled on locks and barriers
    PfOverhead,  ///< prefetch instructions, buffer stalls, fill stalls
    Switching,   ///< context-switch cycles (multi-context)
    AllIdle,     ///< every context blocked (multi-context)
    NoSwitch,    ///< stalled but not switched out (multi-context)
    NumBuckets,
};

inline constexpr std::size_t numBuckets =
    static_cast<std::size_t>(Bucket::NumBuckets);

/** Why a context stopped executing (chooses the accounting bucket). */
enum class StallReason : std::uint8_t
{
    Read,
    Write,
    Sync,
    Prefetch,
};

/**
 * One hardware context: a register set the processor can switch to when
 * the running context encounters a long-latency operation.
 */
class Context
{
  public:
    Processor *proc = nullptr;
    ContextId id = 0;

    /** Top-level coroutine of the simulated process bound here. */
    std::coroutine_handle<> top;

    enum class State : std::uint8_t { Ready, Running, Blocked, Done };
    State state = State::Ready;

    /** Busy cycles accumulated since the last suspension. */
    Tick pendingBusy = 0;
    /** Prefetch-overhead cycles accumulated since the last suspension. */
    Tick pendingPf = 0;

    /** Result slots the awaitables read on resume. */
    std::uint64_t readValue = 0;
    std::uint64_t rmwOld = 0;

    /** Deferred-stall info for a write that must suspend. */
    Tick stallUntil = 0;

    /** Logical tick at which this context last blocked. */
    Tick blockedSince = 0;

    /** Address being watched while spin-blocked (debug aid). */
    Addr waitAddr = 0;
    StallReason blockReason = StallReason::Read;

    /**
     * Wake generation: incremented on every block. Scheduled wake
     * events and watch callbacks capture the generation they were
     * created for and are ignored if the context has since been woken
     * and re-blocked - otherwise a stale wakeup (e.g. a line-watch
     * firing while the context already waits on a new access) would
     * resume a continuation before its operation completed.
     */
    std::uint64_t wakeGen = 0;

    /** What to execute when the scheduler grants us the processor. */
    std::function<void()> onRun;

    /** Local sense per barrier address (sense-reversing barriers). */
    std::unordered_map<Addr, std::uint32_t> barrierSense;

    bool done() const { return state == State::Done; }
};

/**
 * A single processing node's CPU.
 *
 * Owns up to four contexts and a deterministic round-robin scheduler.
 * All simulated-time accounting happens here: every cycle between tick
 * 0 and the end of the run is attributed to exactly one Bucket.
 */
class Processor
{
  public:
    struct Stats
    {
        std::array<std::uint64_t, numBuckets> buckets{};
        std::uint64_t locks = 0;          ///< successful lock acquires
        std::uint64_t lockRetries = 0;    ///< failed test&set attempts
        std::uint64_t barriers = 0;       ///< barrier arrivals
        std::uint64_t contextSwitches = 0;
        std::uint64_t prefetchesIssued = 0;
        SampleStat runLength;             ///< busy cycles between stalls

        std::uint64_t
        bucket(Bucket b) const
        {
            return buckets[static_cast<std::size_t>(b)];
        }

        std::uint64_t
        total() const
        {
            std::uint64_t t = 0;
            for (auto v : buckets)
                t += v;
            return t;
        }
    };

    Processor(EventQueue &eq, MemorySystem &mem, NodeId node,
              const CpuConfig &cfg);

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /**
     * Observability hook (src/obs): fired on every accounting charge
     * with the context the cycles belong to (@p who null for charges
     * that are not attributable to one context: switching, multi-
     * context idle). Devirtualized fn-pointer + ctx; disabled cost is
     * one predictable branch inside charge().
     */
    using ChargeHookFn = void (*)(void *ctx, NodeId node,
                                  const Context *who, Bucket b, Tick from,
                                  Tick to);

    void
    setChargeHook(ChargeHookFn fn, void *ctx)
    {
        chargeHookFn = fn;
        chargeHookCtx = ctx;
    }

    NodeId nodeId() const { return node; }
    const CpuConfig &config() const { return cfg; }
    bool isRc() const { return cfg.consistency == Consistency::RC; }

    /** True for every model whose writes go through the write buffer
     *  (PC, WC, RC); false only for sequential consistency. */
    bool
    buffered() const
    {
        return buffersWrites(cfg.consistency);
    }
    std::uint32_t numContexts() const { return cfg.numContexts; }

    /** Bind a process coroutine to context @p id. Call before start(). */
    void bindProcess(ContextId id, std::coroutine_handle<> top);

    /** Kick the scheduler at tick 0 (all bound contexts are Ready). */
    void start();

    /** Number of bound contexts that have not finished. */
    std::uint32_t liveContexts() const { return live; }

    /** Set by the Machine: called with the logical finish tick whenever
     *  one of this processor's contexts runs to completion. */
    std::function<void(Tick)> onContextDone;

    // ------------------------------------------------------------------
    // Fast (non-suspending) operations, called from awaitables.
    // ------------------------------------------------------------------

    /** Charge @p n busy cycles to the running context. */
    void
    addBusy(Context *c, Tick n)
    {
        c->pendingBusy += n;
    }

    /**
     * Try to satisfy a shared read without suspending (store forward
     * from the write buffer, or a primary-cache hit). On success the
     * value is in c->readValue and one busy cycle has been charged.
     */
    bool fastRead(Context *c, Addr a, unsigned size);

    /**
     * Try to retire a shared write without suspending (RC only: the
     * write buffer has room). Returns false when the caller must
     * suspend; c->stallUntil then holds the buffer-slot tick.
     */
    bool fastWrite(Context *c, Addr a, std::uint64_t v, unsigned size,
                   bool release);

    /**
     * Issue a software prefetch. Returns false when the prefetch buffer
     * is full and the processor must stall (c->stallUntil set).
     */
    bool fastPrefetch(Context *c, Addr a, bool exclusive);

    // ------------------------------------------------------------------
    // Suspending operations, called from await_suspend.
    // ------------------------------------------------------------------

    void suspendRead(Context *c, Addr a, unsigned size,
                     std::coroutine_handle<> h);
    void suspendWrite(Context *c, Addr a, std::uint64_t v, unsigned size,
                      bool release, std::coroutine_handle<> h);
    void suspendWriteStall(Context *c, std::coroutine_handle<> h);
    void suspendPrefetchStall(Context *c, std::coroutine_handle<> h);

    /**
     * Yield the processor for @p n cycles. Unlike compute(), which only
     * accrues busy time within the current grant, this genuinely blocks
     * the context and lets the event queue (and other contexts) run —
     * required by anything that polls simulator-level state.
     */
    void suspendPause(Context *c, Tick n, std::coroutine_handle<> h);
    void suspendRmw(Context *c, Addr a, RmwOp op, std::uint64_t operand,
                    unsigned size, std::coroutine_handle<> h);
    void suspendLock(Context *c, Addr a, std::coroutine_handle<> h);
    void suspendBarrier(Context *c, Addr a, std::uint32_t participants,
                        std::coroutine_handle<> h);

    /**
     * Acquire-style wait until the 32-bit flag at @p a equals @p value
     * (LU's produced-column flags). Counted as a lock acquisition.
     */
    void suspendWaitFlag(Context *c, Addr a, std::uint32_t value,
                         std::coroutine_handle<> h);

    /** Acquire a DASH queue-based lock (directory-granted handoff). */
    void suspendQueuedLock(Context *c, Addr a, std::coroutine_handle<> h);

    /** Release a DASH queue-based lock. */
    void suspendQueuedUnlock(Context *c, Addr a,
                             std::coroutine_handle<> h);

    // ------------------------------------------------------------------
    // Hooks and results.
    // ------------------------------------------------------------------

    /** Primary-cache fill lockout (wired to MemorySystem::setFillHook). */
    void onFillLockout(Tick when, bool prefetch);

    /** Flush open stall spans when the whole run ends at @p end_tick. */
    void finalize(Tick end_tick);

    const Stats &stats() const { return _stats; }

    Context &context(ContextId id) { return *contexts[id]; }

  private:
    /**
     * Logical tick a non-suspending access issued right now would
     * occupy: the grant cursor plus every cycle already accumulated but
     * not yet flushed (cf. fastWrite's buffer-slot computation).
     */
    Tick
    fastIssueTick(const Context *c) const
    {
        return grantCursor + c->pendingBusy + c->pendingPf + lockoutNs +
               lockoutPf;
    }

    /**
     * Charge the running context's accumulated busy / prefetch cycles
     * (and any pending fill lockout) and return the logical tick at
     * which the context actually stops executing.
     */
    Tick flushPending(Context *c);

    /**
     * Stop executing @p c. If @p wake_at is known and short (or this is
     * a single-context processor) the context keeps the processor and
     * resumes in place; otherwise it is switched out and the scheduler
     * picks another ready context.
     */
    void blockContext(Context *c, Tick stop, std::optional<Tick> wake_at,
                      StallReason reason, std::function<void()> on_run);

    /** Make a blocked context runnable and dispatch if possible. */
    void makeReady(Context *c, Tick now);

    /** makeReady guarded by the wake generation captured at block time. */
    void makeReadyIf(Context *c, std::uint64_t gen, Tick now);

    /** Grant the processor to a ready context if it is free. */
    void maybeDispatch(Tick now);

    /** Run a context's continuation at @p at (scheduled as an event). */
    void grant(Context *c, Tick at);

    /** Coroutine-resume continuation with completion detection. */
    std::function<void()> resumeContinuation(Context *c,
                                             std::coroutine_handle<> h);

    /** Lock-acquire attempt (the exclusive test&set). */
    void lockAttempt(Context *c, Addr a, std::coroutine_handle<> h);

    /** Spin on a cached lock copy until it is invalidated, then retest. */
    void lockWait(Context *c, Addr a, std::coroutine_handle<> h);

    /** Barrier spin step: re-read the sense flag after a wakeup. */
    void barrierSpin(Context *c, Addr sense_addr, std::uint32_t my_sense,
                     std::coroutine_handle<> h);

    void charge(Bucket b, Tick from, Tick to,
                const Context *who = nullptr);

    /** Bucket used for a non-switched stall of the given reason. */
    Bucket stallBucket(StallReason r) const;

    /** Issue tick of a synchronization access after any model-mandated
     *  write-drain fence (weak consistency). */
    Tick syncFenceTick(Context *c, Tick s) const;

    bool shouldSwitch(Tick stall, StallReason r) const;

    EventQueue &eq;
    MemorySystem &mem;
    NodeId node;
    CpuConfig cfg;

    std::vector<std::unique_ptr<Context>> contexts;
    Context *running = nullptr;   ///< context currently granted the CPU
    Context *resident = nullptr;  ///< context whose state is loaded
    std::uint32_t rrNext = 0;     ///< round-robin scan position
    std::uint32_t live = 0;

    Tick cursor = 0;       ///< all time before this tick is attributed
    Tick freeSince = 0;    ///< processor idle since (when running==null)
    Tick grantTick = 0;    ///< when the running context got the CPU
    /** Logical time consumed within the current grant; flushPending
     *  resumes from here so it can be called repeatedly per grant. */
    Tick grantCursor = 0;
    Tick lockoutNs = 0;    ///< pending no-switch fill-lockout cycles
    Tick lockoutPf = 0;    ///< pending prefetch fill-lockout cycles

    ChargeHookFn chargeHookFn = nullptr;
    void *chargeHookCtx = nullptr;

    Stats _stats;
};

} // namespace dashsim

#endif // CPU_PROCESSOR_HH
