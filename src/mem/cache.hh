/**
 * @file
 * Tag-array models for the two-level cache hierarchy and the MSHR set
 * that makes both levels lockup-free.
 *
 * Both levels default to direct-mapped with 16-byte lines (Section 2.1),
 * matching the DASH hardware; the tag arrays are true set-associative
 * structures (sets x ways, set index computed from the address), so
 * ablation studies can raise the associativity without touching the
 * protocol code. Replacement within a set is oldest-fill-first (FIFO),
 * which for ways == 1 degenerates to exactly the direct-mapped
 * behavior. The primary cache is write-through/no-write-allocate; the
 * secondary cache is write-back with ownership states (Invalid /
 * Shared / Dirty).
 *
 * All three structures are flat arrays searched with short linear
 * scans: a probe is a handful of comparisons over one cache-resident
 * set (or the <= 16-entry MSHR array), with no hashing and no
 * per-operation allocation.
 */

#ifndef MEM_CACHE_HH
#define MEM_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mem/mem_config.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dashsim {

/** Ownership state of a secondary-cache line. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,  ///< read-only copy; directory lists this node as a sharer
    Dirty,   ///< exclusive ownership; this node has the only valid copy
};

/**
 * Set-associative write-through primary cache (tags only; data lives in
 * the SharedMemory arena).
 */
class PrimaryCache
{
  public:
    explicit PrimaryCache(const CacheGeometry &geom)
        : lines(geom.numLines()), ways(geom.ways), sets(geom.numSets())
    {
        fatal_if(lines.empty(), "primary cache has no lines");
        fatal_if(geom.ways == 0 || geom.numLines() % geom.ways != 0,
                 "primary cache ways must evenly divide the line count");
    }

    /** True if the line containing @p a is present. */
    bool
    probe(Addr a) const
    {
        const Addr tag = lineIndex(a);
        const Line *set = setOf(a);
        for (std::uint32_t w = 0; w < ways; ++w)
            if (set[w].valid && set[w].tag == tag)
                return true;
        return false;
    }

    /** Install the line containing @p a, evicting any conflicting line. */
    void
    fill(Addr a)
    {
        const Addr tag = lineIndex(a);
        Line *set = setOf(a);
        Line *victim = &set[0];
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (set[w].valid && set[w].tag == tag) {
                return;  // already present
            }
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
            if (set[w].stamp < victim->stamp)
                victim = &set[w];
        }
        victim->valid = true;
        victim->tag = tag;
        victim->stamp = ++fillClock;
    }

    /** Drop the line containing @p a if present. */
    void
    invalidate(Addr a)
    {
        const Addr tag = lineIndex(a);
        Line *set = setOf(a);
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (set[w].valid && set[w].tag == tag) {
                set[w].valid = false;
                return;
            }
        }
    }

    void
    reset()
    {
        for (auto &l : lines)
            l.valid = false;
        fillClock = 0;
    }

    /** Call @p cb with the line address of every valid line. */
    template <typename Fn>
    void
    forEachLine(Fn &&cb) const
    {
        for (const Line &l : lines)
            if (l.valid)
                cb(l.tag << lineShift);
    }

    /** Checkpoint serialization: the full tag array, slot for slot
     *  (FIFO replacement depends on slot positions and stamps). */
    template <class W>
    void
    saveState(W &w) const
    {
        w.u64(fillClock);
        w.u64(lines.size());
        for (const Line &l : lines) {
            w.u64(l.tag);
            w.u64(l.stamp);
            w.u8(l.valid ? 1 : 0);
        }
    }

    template <class R>
    void
    loadState(R &r)
    {
        fillClock = r.u64();
        std::uint64_t n = r.u64();
        fatal_if(n != lines.size(),
                 "primary-cache checkpoint geometry mismatch");
        for (Line &l : lines) {
            l.tag = r.u64();
            l.stamp = r.u64();
            l.valid = r.u8() != 0;
        }
    }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t stamp = 0;  ///< fill order, for FIFO replacement
        bool valid = false;
    };

    const Line *setOf(Addr a) const { return &lines[setIndex(a) * ways]; }
    Line *setOf(Addr a) { return &lines[setIndex(a) * ways]; }
    std::size_t setIndex(Addr a) const { return lineIndex(a) % sets; }

    std::vector<Line> lines;  ///< sets x ways, set-major
    std::uint32_t ways;
    std::uint32_t sets;
    std::uint64_t fillClock = 0;
};

/**
 * Set-associative write-back secondary cache with ownership states.
 */
class SecondaryCache
{
  public:
    /** Result of installing a line: what got evicted, if anything. */
    struct Victim
    {
        bool valid = false;     ///< an older line was displaced
        bool dirty = false;     ///< ...and it needs a writeback
        Addr addr = 0;          ///< line address of the victim
    };

    explicit SecondaryCache(const CacheGeometry &geom)
        : lines(geom.numLines()), ways(geom.ways), sets(geom.numSets())
    {
        fatal_if(lines.empty(), "secondary cache has no lines");
        fatal_if(geom.ways == 0 || geom.numLines() % geom.ways != 0,
                 "secondary cache ways must evenly divide the line count");
    }

    /** State of the line containing @p a (Invalid if tag mismatch). */
    LineState
    probe(Addr a) const
    {
        const Addr tag = lineIndex(a);
        const Line *set = setOf(a);
        for (std::uint32_t w = 0; w < ways; ++w)
            if (set[w].state != LineState::Invalid && set[w].tag == tag)
                return set[w].state;
        return LineState::Invalid;
    }

    /**
     * Install the line containing @p a in state @p st.
     * @return the displaced victim, if any.
     */
    Victim
    fill(Addr a, LineState st)
    {
        const Addr tag = lineIndex(a);
        Line *set = setOf(a);
        Line *victim = &set[0];
        bool hit = false;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (set[w].state != LineState::Invalid && set[w].tag == tag) {
                victim = &set[w];
                hit = true;
                break;
            }
            if (set[w].state == LineState::Invalid) {
                victim = &set[w];
                hit = true;  // free way: nothing displaced
                break;
            }
            if (set[w].stamp < victim->stamp)
                victim = &set[w];
        }
        Victim v;
        if (!hit) {
            v.valid = true;
            v.dirty = victim->state == LineState::Dirty;
            v.addr = victim->tag << lineShift;
        }
        victim->tag = tag;
        victim->state = st;
        victim->stamp = ++fillClock;
        return v;
    }

    /** Upgrade an existing Shared copy to Dirty (ownership acquired). */
    void
    upgrade(Addr a)
    {
        if (Line *l = findLine(a))
            l->state = LineState::Dirty;
    }

    /** Downgrade a Dirty copy to Shared (remote read hit our copy). */
    void
    downgrade(Addr a)
    {
        Line *l = findLine(a);
        if (l && l->state == LineState::Dirty)
            l->state = LineState::Shared;
    }

    /** Drop the line containing @p a if present. */
    void
    invalidate(Addr a)
    {
        if (Line *l = findLine(a))
            l->state = LineState::Invalid;
    }

    void
    reset()
    {
        for (auto &l : lines)
            l.state = LineState::Invalid;
        fillClock = 0;
    }

    /** Call @p cb(lineAddr, state) for every non-Invalid line. */
    template <typename Fn>
    void
    forEachLine(Fn &&cb) const
    {
        for (const Line &l : lines)
            if (l.state != LineState::Invalid)
                cb(l.tag << lineShift, l.state);
    }

    /** Checkpoint serialization (see PrimaryCache::saveState). */
    template <class W>
    void
    saveState(W &w) const
    {
        w.u64(fillClock);
        w.u64(lines.size());
        for (const Line &l : lines) {
            w.u64(l.tag);
            w.u64(l.stamp);
            w.u8(static_cast<std::uint8_t>(l.state));
        }
    }

    template <class R>
    void
    loadState(R &r)
    {
        fillClock = r.u64();
        std::uint64_t n = r.u64();
        fatal_if(n != lines.size(),
                 "secondary-cache checkpoint geometry mismatch");
        for (Line &l : lines) {
            l.tag = r.u64();
            l.stamp = r.u64();
            l.state = static_cast<LineState>(r.u8());
        }
    }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t stamp = 0;  ///< fill order, for FIFO replacement
        LineState state = LineState::Invalid;
    };

    const Line *setOf(Addr a) const { return &lines[setIndex(a) * ways]; }
    Line *setOf(Addr a) { return &lines[setIndex(a) * ways]; }
    std::size_t setIndex(Addr a) const { return lineIndex(a) % sets; }

    Line *
    findLine(Addr a)
    {
        const Addr tag = lineIndex(a);
        Line *set = setOf(a);
        for (std::uint32_t w = 0; w < ways; ++w)
            if (set[w].state != LineState::Invalid && set[w].tag == tag)
                return &set[w];
        return nullptr;
    }

    std::vector<Line> lines;  ///< sets x ways, set-major
    std::uint32_t ways;
    std::uint32_t sets;
    std::uint64_t fillClock = 0;
};

/**
 * Miss-status holding registers: outstanding fills, one per line.
 *
 * A demand access that finds its line already in flight *combines* with
 * the outstanding request (Section 5.1) and completes when the original
 * response returns.
 *
 * The register file is a flat insertion-ordered array searched
 * linearly: with at most ~16 outstanding fills a scan over packed
 * (line, entry) pairs beats a hash map on every operation and never
 * allocates in steady state.
 */
class MshrSet
{
  public:
    struct Entry
    {
        Tick complete;      ///< when the fill response installs the line
        bool exclusive;     ///< fill acquires ownership
        bool prefetch;      ///< initiated by a prefetch instruction
        bool demanded = false;  ///< a demand access combined with it
        /**
         * A racing invalidation beat the fill response; the response
         * must not install the line when it arrives.
         */
        bool poisoned = false;
    };

    explicit MshrSet(std::uint32_t capacity) : cap(capacity)
    {
        // Transient overshoot past cap is legal (see allocate).
        entries.reserve(capacity + 4);
    }

    bool full() const { return entries.size() >= cap; }
    std::size_t inFlight() const { return entries.size(); }

    /** Find the outstanding entry for the line containing @p a. */
    Entry *
    find(Addr a)
    {
        const Addr line = lineIndex(a);
        for (auto &s : entries)
            if (s.line == line)
                return &s.entry;
        return nullptr;
    }

    const Entry *
    find(Addr a) const
    {
        const Addr line = lineIndex(a);
        for (const auto &s : entries)
            if (s.line == line)
                return &s.entry;
        return nullptr;
    }

    /** Call @p cb(lineAddr, entry) for every outstanding entry. */
    template <typename Fn>
    void
    forEach(Fn &&cb) const
    {
        for (const auto &s : entries)
            cb(s.line << lineShift, s.entry);
    }

    /**
     * Allocate an entry. The capacity limit is enforced by the *timing*
     * model (a requester that finds the set full delays its issue until
     * earliestComplete()), so the structural array may transiently hold
     * more than `cap` entries: allocations happen when a transaction is
     * walked while releases happen at the scheduled completion events,
     * and the two orders are not the same.
     */
    Entry &
    allocate(Addr a, Tick complete, bool exclusive, bool prefetch)
    {
        const Addr line = lineIndex(a);
        panic_if(find(a) != nullptr, "duplicate MSHR for line");
        entries.push_back(Slot{line, Entry{complete, exclusive, prefetch}});
        return entries.back().entry;
    }

    /** Release the entry for the line containing @p a. */
    void
    release(Addr a)
    {
        const Addr line = lineIndex(a);
        for (auto it = entries.begin(); it != entries.end(); ++it) {
            if (it->line == line) {
                entries.erase(it);  // keeps insertion order for forEach
                return;
            }
        }
    }

    /** Earliest completion among outstanding entries (maxTick if none). */
    Tick
    earliestComplete() const
    {
        Tick t = maxTick;
        for (const auto &s : entries)
            t = std::min(t, s.entry.complete);
        return t;
    }

  private:
    struct Slot
    {
        Addr line;
        Entry entry;
    };

    std::uint32_t cap;
    std::vector<Slot> entries;  ///< insertion order
};

} // namespace dashsim

#endif // MEM_CACHE_HH
