/**
 * @file
 * Tag-array models for the two-level cache hierarchy and the MSHR set
 * that makes both levels lockup-free.
 *
 * Both levels are direct-mapped with 16-byte lines (Section 2.1). The
 * primary cache is write-through/no-write-allocate; the secondary cache
 * is write-back with ownership states (Invalid / Shared / Dirty).
 */

#ifndef MEM_CACHE_HH
#define MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/mem_config.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dashsim {

/** Ownership state of a secondary-cache line. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,  ///< read-only copy; directory lists this node as a sharer
    Dirty,   ///< exclusive ownership; this node has the only valid copy
};

/**
 * Direct-mapped write-through primary cache (tags only; data lives in
 * the SharedMemory arena).
 */
class PrimaryCache
{
  public:
    explicit PrimaryCache(const CacheGeometry &geom)
        : lines(geom.numLines())
    {
        fatal_if(lines.empty(), "primary cache has no lines");
    }

    /** True if the line containing @p a is present. */
    bool
    probe(Addr a) const
    {
        const Line &l = lines[index(a)];
        return l.valid && l.tag == lineIndex(a);
    }

    /** Install the line containing @p a, evicting any conflicting line. */
    void
    fill(Addr a)
    {
        Line &l = lines[index(a)];
        l.valid = true;
        l.tag = lineIndex(a);
    }

    /** Drop the line containing @p a if present. */
    void
    invalidate(Addr a)
    {
        Line &l = lines[index(a)];
        if (l.valid && l.tag == lineIndex(a))
            l.valid = false;
    }

    void
    reset()
    {
        for (auto &l : lines)
            l.valid = false;
    }

    /** Call @p cb with the line address of every valid line. */
    template <typename Fn>
    void
    forEachLine(Fn &&cb) const
    {
        for (const Line &l : lines)
            if (l.valid)
                cb(l.tag << lineShift);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
    };

    std::size_t index(Addr a) const { return lineIndex(a) % lines.size(); }

    std::vector<Line> lines;
};

/**
 * Direct-mapped write-back secondary cache with ownership states.
 */
class SecondaryCache
{
  public:
    /** Result of installing a line: what got evicted, if anything. */
    struct Victim
    {
        bool valid = false;     ///< an older line was displaced
        bool dirty = false;     ///< ...and it needs a writeback
        Addr addr = 0;          ///< line address of the victim
    };

    explicit SecondaryCache(const CacheGeometry &geom)
        : lines(geom.numLines())
    {
        fatal_if(lines.empty(), "secondary cache has no lines");
    }

    /** State of the line containing @p a (Invalid if tag mismatch). */
    LineState
    probe(Addr a) const
    {
        const Line &l = lines[index(a)];
        if (l.state != LineState::Invalid && l.tag == lineIndex(a))
            return l.state;
        return LineState::Invalid;
    }

    /**
     * Install the line containing @p a in state @p st.
     * @return the displaced victim, if any.
     */
    Victim
    fill(Addr a, LineState st)
    {
        Line &l = lines[index(a)];
        Victim v;
        if (l.state != LineState::Invalid && l.tag != lineIndex(a)) {
            v.valid = true;
            v.dirty = l.state == LineState::Dirty;
            v.addr = l.tag << lineShift;
        }
        l.tag = lineIndex(a);
        l.state = st;
        return v;
    }

    /** Upgrade an existing Shared copy to Dirty (ownership acquired). */
    void
    upgrade(Addr a)
    {
        Line &l = lines[index(a)];
        if (l.tag == lineIndex(a) && l.state != LineState::Invalid)
            l.state = LineState::Dirty;
    }

    /** Downgrade a Dirty copy to Shared (remote read hit our copy). */
    void
    downgrade(Addr a)
    {
        Line &l = lines[index(a)];
        if (l.tag == lineIndex(a) && l.state == LineState::Dirty)
            l.state = LineState::Shared;
    }

    /** Drop the line containing @p a if present. */
    void
    invalidate(Addr a)
    {
        Line &l = lines[index(a)];
        if (l.tag == lineIndex(a))
            l.state = LineState::Invalid;
    }

    void
    reset()
    {
        for (auto &l : lines)
            l.state = LineState::Invalid;
    }

    /** Call @p cb(lineAddr, state) for every non-Invalid line. */
    template <typename Fn>
    void
    forEachLine(Fn &&cb) const
    {
        for (const Line &l : lines)
            if (l.state != LineState::Invalid)
                cb(l.tag << lineShift, l.state);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        LineState state = LineState::Invalid;
    };

    std::size_t index(Addr a) const { return lineIndex(a) % lines.size(); }

    std::vector<Line> lines;
};

/**
 * Miss-status holding registers: outstanding fills, one per line.
 *
 * A demand access that finds its line already in flight *combines* with
 * the outstanding request (Section 5.1) and completes when the original
 * response returns.
 */
class MshrSet
{
  public:
    struct Entry
    {
        Tick complete;      ///< when the fill response installs the line
        bool exclusive;     ///< fill acquires ownership
        bool prefetch;      ///< initiated by a prefetch instruction
        bool demanded = false;  ///< a demand access combined with it
        /**
         * A racing invalidation beat the fill response; the response
         * must not install the line when it arrives.
         */
        bool poisoned = false;
    };

    explicit MshrSet(std::uint32_t capacity) : cap(capacity) {}

    bool full() const { return entries.size() >= cap; }
    std::size_t inFlight() const { return entries.size(); }

    /** Find the outstanding entry for the line containing @p a. */
    Entry *
    find(Addr a)
    {
        auto it = entries.find(lineIndex(a));
        return it == entries.end() ? nullptr : &it->second;
    }

    const Entry *
    find(Addr a) const
    {
        auto it = entries.find(lineIndex(a));
        return it == entries.end() ? nullptr : &it->second;
    }

    /** Call @p cb(lineAddr, entry) for every outstanding entry. */
    template <typename Fn>
    void
    forEach(Fn &&cb) const
    {
        for (const auto &[line, e] : entries)
            cb(line << lineShift, e);
    }

    /**
     * Allocate an entry. The capacity limit is enforced by the *timing*
     * model (a requester that finds the set full delays its issue until
     * earliestComplete()), so the structural map may transiently hold
     * more than `cap` entries: allocations happen when a transaction is
     * walked while releases happen at the scheduled completion events,
     * and the two orders are not the same.
     */
    Entry &
    allocate(Addr a, Tick complete, bool exclusive, bool prefetch)
    {
        auto [it, fresh] =
            entries.emplace(lineIndex(a),
                            Entry{complete, exclusive, prefetch});
        panic_if(!fresh, "duplicate MSHR for line");
        return it->second;
    }

    /** Release the entry for the line containing @p a. */
    void
    release(Addr a)
    {
        entries.erase(lineIndex(a));
    }

    /** Earliest completion among outstanding entries (maxTick if none). */
    Tick
    earliestComplete() const
    {
        Tick t = maxTick;
        for (const auto &[line, e] : entries)
            t = std::min(t, e.complete);
        return t;
    }

  private:
    std::uint32_t cap;
    std::unordered_map<Addr, Entry> entries;
};

} // namespace dashsim

#endif // MEM_CACHE_HH
