/**
 * @file
 * Architectural parameters of the simulated DASH-like machine.
 *
 * Defaults reproduce the paper's Section 2: 16 nodes, Table 1 latencies,
 * scaled-down 2 KB / 4 KB direct-mapped caches with 16-byte lines, a
 * 16-deep write buffer and a 16-deep prefetch buffer.
 */

#ifndef MEM_MEM_CONFIG_HH
#define MEM_MEM_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace dashsim {

/** Where in the hierarchy an access was serviced. */
enum class ServiceLevel : std::uint8_t
{
    PrimaryHit,    ///< 1 pclock
    SecondaryHit,  ///< fill from secondary cache, 14 pclocks
    LocalNode,     ///< fill from local memory, 26 pclocks
    HomeNode,      ///< fill from a remote home node, 72 pclocks
    RemoteNode,    ///< dirty-remote three-hop fill, 90 pclocks
    Combined,      ///< merged with an already-outstanding request
    Uncached,      ///< shared-data caching disabled
};

/** Table 1 latencies plus contention-model constants. */
struct LatencyConfig
{
    // --- Read operations (Table 1, uncontended) ---
    Tick readPrimaryHit = 1;
    Tick readSecondary = 14;    ///< fill from secondary cache
    Tick readLocal = 26;        ///< fill from local node memory
    Tick readHome = 72;         ///< fill from remote home node
    Tick readRemote = 90;       ///< fill from dirty remote (3-hop)

    // --- Write operations: time to retire from the write buffer ---
    Tick writeSecondary = 2;    ///< owned by secondary cache
    Tick writeLocal = 18;       ///< owned by local node
    Tick writeHome = 64;        ///< owned in remote home node
    Tick writeRemote = 82;      ///< owned in a dirty remote node

    // --- Contention model (occupancies of FCFS resources) ---
    Tick busOccupancy = 4;      ///< node bus, one line transfer
    Tick busCtlOccupancy = 1;   ///< node bus, address-only transaction
    /**
     * Directory controller occupancy per request. The uncontended
     * directory *latency* is part of the Table 1 path constants; this
     * is the pipelined throughput cost, which is lower (the DASH
     * directory controller overlapped lookup and message send).
     */
    Tick dirOccupancy = 4;
    Tick netDataOccupancy = 4;  ///< network port, line-carrying message
    Tick netCtlOccupancy = 1;   ///< network port, control message
    Tick netHop = 20;           ///< one-way uncontended network latency

    /**
     * Topology extension (off by default). The paper models a uniform
     * one-way network latency; the real DASH prototype was a 4x4
     * wormhole-routed 2-D mesh. With `mesh` enabled the one-way
     * latency becomes `meshBase + meshPerHop x manhattan-distance`
     * between the communicating nodes (nodes are numbered row-major
     * in a near-square grid), so placement locality matters.
     */
    bool mesh = false;
    Tick meshBase = 6;      ///< router entry/exit overhead
    Tick meshPerHop = 7;    ///< per-hop wire + switch latency

    /**
     * With `mesh` on, also wrap the grid into a 2-D torus: per-dim
     * distances take the shorter way around. Requires a full
     * cols x rows grid (every node position occupied).
     */
    bool torus = false;

    /**
     * Extra latency from the ownership grant until the last invalidation
     * acknowledgement reaches the requester (sharer inval + ack hops).
     */
    Tick invalAckLatency = 40;

    /**
     * Uncached shared accesses bypass the caches and avoid the fill
     * overhead; the paper says they are "five to ten cycles less" than
     * the corresponding cached-fill latencies (Section 3).
     */
    Tick uncachedDiscount = 6;

    /** Primary cache is locked out for this long per line fill. */
    Tick primaryFillBusy = 4;
};

/** Cache geometry for one level. */
struct CacheGeometry
{
    std::uint32_t sizeBytes;

    /**
     * Set associativity. The DASH prototype (and every paper
     * configuration) is direct-mapped, so the default is 1 and all
     * shipped results are produced with it; the tag arrays support
     * higher associativity for what-if studies (bench/ablations).
     */
    std::uint32_t ways = 1;

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    std::uint32_t numSets() const { return numLines() / ways; }
};

/**
 * Directory sharer-tracking format (Section 2's full bit vector plus
 * the two scalable formats the >64-node configurations need). All
 * three are layered over the same exact SharerSet bookkeeping; they
 * differ only in which nodes an exclusive request invalidates and in
 * the overflow / over-invalidation accounting.
 */
enum class DirFormat : std::uint8_t
{
    /** One presence bit per node; invalidations are exact. */
    FullBitVector,
    /**
     * Dir_i_B: i node pointers; once a line ever has more than i
     * sharers the entry overflows (sticky until the line resets to
     * Dirty/Uncached) and an exclusive request broadcasts
     * invalidations to every node.
     */
    LimitedPointer,
    /**
     * Coarse vector: one presence bit per region of dirRegionSize
     * consecutive nodes; invalidations cover whole marked regions.
     */
    CoarseVector,
};

/** Whole memory-system configuration. */
struct MemConfig
{
    std::uint32_t numNodes = 16;

    /** Directory sharer-tracking format (see DirFormat). */
    DirFormat dirFormat = DirFormat::FullBitVector;
    /** Pointer count i of the limited-pointer (Dir_i_B) format. */
    std::uint32_t dirPointers = 4;
    /** Nodes per region bit of the coarse-vector format. */
    std::uint32_t dirRegionSize = 8;

    /** Scaled caches (Section 2.3): 2 KB primary, 4 KB secondary. */
    CacheGeometry primary{2 * 1024};
    CacheGeometry secondary{4 * 1024};

    std::uint32_t writeBufferDepth = 16;
    std::uint32_t prefetchBufferDepth = 16;
    std::uint32_t mshrs = 16;

    /** When false, shared data bypasses the caches (Figure 2 baseline). */
    bool cacheSharedData = true;

    LatencyConfig lat{};

    /** Full-sized DASH prototype caches: 64 KB / 256 KB. */
    static MemConfig
    fullSizeCaches()
    {
        MemConfig c;
        c.primary = CacheGeometry{64 * 1024};
        c.secondary = CacheGeometry{256 * 1024};
        return c;
    }
};

} // namespace dashsim

#endif // MEM_MEM_CONFIG_HH
