#include "mem/mem_system.hh"

#include <algorithm>
#include <map>

#include "core/checkpoint.hh"

namespace dashsim {

namespace {

/**
 * Mesh-adjusted walk bases substitute per-pair hop latencies for the
 * uniform netHop terms folded into the Table 1 path constants. Tick is
 * unsigned, so a config whose mesh hops (or uncached discount)
 * undercut those constants must fail loudly instead of wrapping to an
 * astronomically large tick.
 */
Tick
checkedBase(std::int64_t base, const char *what)
{
    fatal_if(base < 0,
             "latency config drives the %s walk base negative (%lld); "
             "mesh hops undercut netHop by more than the path constant "
             "absorbs", what, static_cast<long long>(base));
    return static_cast<Tick>(base);
}

} // namespace

MemorySystem::MemorySystem(EventQueue &eq, SharedMemory &mem,
                           const MemConfig &cfg)
    : eq(eq), mem(mem), cfg(cfg)
{
    fatal_if(cfg.numNodes == 0, "numNodes must be nonzero");
    fatal_if(cfg.dirFormat == DirFormat::LimitedPointer &&
                 cfg.dirPointers == 0,
             "limited-pointer directory needs at least one pointer");
    fatal_if(cfg.dirFormat == DirFormat::CoarseVector &&
                 cfg.dirRegionSize == 0,
             "coarse-vector directory needs a nonzero region size");
    // Row-major near-square grid, computed once: hopLatency() sits on
    // the memory hot path and must not re-derive the shape per call.
    while (meshCols * meshCols < cfg.numNodes)
        ++meshCols;
    meshRows = (cfg.numNodes + meshCols - 1) / meshCols;
    fatal_if(cfg.lat.torus &&
                 (!cfg.lat.mesh || meshCols * meshRows != cfg.numNodes),
             "torus requires mesh mode and a full %u x %u grid",
             meshCols, meshRows);
    nodes.reserve(cfg.numNodes);
    for (std::uint32_t i = 0; i < cfg.numNodes; ++i)
        nodes.emplace_back(cfg);
}

DirEntry &
MemorySystem::dirEntry(Addr line)
{
    return directory[lineIndex(line)];
}

Tick
MemorySystem::hopLatency(NodeId from, NodeId to) const
{
    const LatencyConfig &L = cfg.lat;
    if (!L.mesh || from == to)
        return L.netHop;
    std::uint32_t fx = from % meshCols, fy = from / meshCols;
    std::uint32_t tx = to % meshCols, ty = to / meshCols;
    std::uint32_t dx = fx > tx ? fx - tx : tx - fx;
    std::uint32_t dy = fy > ty ? fy - ty : ty - fy;
    if (L.torus) {
        dx = std::min(dx, meshCols - dx);
        dy = std::min(dy, meshRows - dy);
    }
    return L.meshBase + L.meshPerHop * (dx + dy);
}

void
MemorySystem::meshRoute(PathWalker &w, NodeId from, NodeId to,
                        Tick offset, Tick occupancy)
{
    const LatencyConfig &L = cfg.lat;
    if (!L.mesh || from == to)
        return;
    // Dimension-order (X then Y) route; every traversed node's
    // directional output link is a FCFS calendar, so a hot link shows
    // up as queueing on each message crossing it. Under the torus each
    // dimension takes the shorter way around (ties go forward).
    std::uint32_t x = from % meshCols, y = from / meshCols;
    const std::uint32_t tx = to % meshCols, ty = to / meshCols;
    std::uint32_t k = 0;
    auto hop = [&](std::uint32_t pos, std::uint32_t dir) {
        // A partial grid (numNodes < meshCols * meshRows) leaves hole
        // positions in the last row with no node behind them; a route
        // may still traverse one (e.g. the Y leg after an X leg that
        // ended above a hole). The traversal costs its hop of latency
        // like any other, but there is no link calendar to contend on.
        if (pos < cfg.numNodes)
            w.stage(nodes[pos].meshLink[dir],
                    offset + L.meshBase + k * L.meshPerHop, occupancy);
        ++k;
    };
    while (x != tx) {
        bool east = tx > x;
        if (L.torus) {
            std::uint32_t fwd = (tx + meshCols - x) % meshCols;
            east = fwd <= meshCols - fwd;
        }
        hop(y * meshCols + x, east ? 0u : 1u);
        x = east ? (x + 1) % meshCols : (x + meshCols - 1) % meshCols;
    }
    while (y != ty) {
        bool south = ty > y;
        if (L.torus) {
            std::uint32_t fwd = (ty + meshRows - y) % meshRows;
            south = fwd <= meshRows - fwd;
        }
        hop(y * meshCols + x, south ? 3u : 2u);
        y = south ? (y + 1) % meshRows : (y + meshRows - 1) % meshRows;
    }
}

// ---------------------------------------------------------------------
// Coherence transaction walk.
// ---------------------------------------------------------------------

MemorySystem::FillResult
MemorySystem::walkFill(NodeId req, Addr line, bool exclusive, Tick t,
                       bool with_data)
{
    const LatencyConfig &L = cfg.lat;
    const Tick net_reply = with_data ? L.netDataOccupancy
                                     : L.netCtlOccupancy;
    const Tick bus_reply = with_data ? L.busOccupancy : L.busCtlOccupancy;
    DirEntry &e = dirEntry(line);
    NodeId home = mem.homeOf(line);

    const bool dirtyElsewhere = e.state == DirEntry::State::Dirty &&
                                e.owner != req && e.owner != invalidNode &&
                                e.owner != home;

    PathWalker w(t);
    FillResult r{};
    r.threeHop = dirtyElsewhere;
    r.withData = with_data;
    Tick dir_start;

    // Per-pair one-way network latencies (uniform L.netHop unless the
    // mesh extension is enabled). Table 1 is reproduced exactly in the
    // uniform case; under the mesh the same structure is kept with
    // distance-dependent hops.
    const Tick hopRH = hopLatency(req, home);

    // Request onto the local node bus (request phase).
    w.stage(nodes[req].busReq, 2, L.busCtlOccupancy);

    if (home == req) {
        dir_start = w.stage(nodes[home].dir, 4, L.dirOccupancy);
        if (dirtyElsewhere) {
            // Local home, but the only valid copy is in a remote cache:
            // forward there and back (derived latency, not in Table 1).
            NodeId o = e.owner;
            const Tick hopHO = hopLatency(home, o);
            const Tick hopOR = hopLatency(o, req);
            w.stage(nodes[home].netOut, 10, L.netCtlOccupancy);
            meshRoute(w, home, o, 10, L.netCtlOccupancy);
            w.stage(nodes[o].netIn, 10 + hopHO, L.netCtlOccupancy);
            w.stage(nodes[o].busReq, 12 + hopHO, L.busCtlOccupancy);
            w.stage(nodes[o].netOut, 18 + hopHO, L.netDataOccupancy);
            meshRoute(w, o, req, 18 + hopHO, L.netDataOccupancy);
            w.stage(nodes[req].netIn, 18 + hopHO + hopOR,
                    L.netDataOccupancy);
            w.stage(nodes[req].busReply, 22 + hopHO + hopOR,
                    L.busOccupancy);
            r.dataAt = w.finish(L.readLocal + hopHO + hopOR + 4);
            r.ownAt = w.finish(L.writeLocal + hopHO + hopOR + 4);
            r.level = ServiceLevel::RemoteNode;
            r.netCycles = hopHO + hopOR;
        } else {
            w.stage(nodes[req].busReply, 22, bus_reply);
            r.dataAt = w.finish(L.readLocal);       // 26
            r.ownAt = w.finish(L.writeLocal);       // 18
            r.level = ServiceLevel::LocalNode;
        }
    } else {
        w.stage(nodes[req].netOut, 4, L.netCtlOccupancy);
        meshRoute(w, req, home, 4, L.netCtlOccupancy);
        w.stage(nodes[home].netIn, 4 + hopRH, L.netCtlOccupancy);
        dir_start = w.stage(nodes[home].dir, 6 + hopRH, L.dirOccupancy);
        if (dirtyElsewhere) {
            NodeId o = e.owner;
            const Tick hopHO = hopLatency(home, o);
            const Tick hopOR = hopLatency(o, req);
            w.stage(nodes[home].netOut, 12 + hopRH, L.netCtlOccupancy);
            meshRoute(w, home, o, 12 + hopRH, L.netCtlOccupancy);
            w.stage(nodes[o].netIn, 12 + hopRH + hopHO,
                    L.netCtlOccupancy);
            w.stage(nodes[o].busReq, 14 + hopRH + hopHO,
                    L.busCtlOccupancy);
            w.stage(nodes[o].netOut, 20 + hopRH + hopHO,
                    L.netDataOccupancy);
            meshRoute(w, o, req, 20 + hopRH + hopHO,
                      L.netDataOccupancy);
            w.stage(nodes[req].netIn, 20 + hopRH + hopHO + hopOR,
                    L.netDataOccupancy);
            w.stage(nodes[req].busReply, 24 + hopRH + hopHO + hopOR,
                    L.busOccupancy);
            const std::int64_t hops3 =
                static_cast<std::int64_t>(hopRH + hopHO + hopOR) -
                3 * static_cast<std::int64_t>(L.netHop);
            r.dataAt = w.finish(checkedBase(
                static_cast<std::int64_t>(L.readRemote) + hops3,
                "readRemote"));                     // 90 uniform
            r.ownAt = w.finish(checkedBase(
                static_cast<std::int64_t>(L.writeRemote) + hops3,
                "writeRemote"));                    // 82 uniform
            r.level = ServiceLevel::RemoteNode;
            r.netCycles = hopRH + hopHO + hopOR;
        } else {
            w.stage(nodes[home].busReq, 12 + hopRH, L.busCtlOccupancy);
            w.stage(nodes[home].netOut, 24 + hopRH, net_reply);
            meshRoute(w, home, req, 24 + hopRH, net_reply);
            w.stage(nodes[req].netIn, 24 + 2 * hopRH, net_reply);
            w.stage(nodes[req].busReply, 26 + 2 * hopRH, bus_reply);
            const std::int64_t hops2 =
                2 * (static_cast<std::int64_t>(hopRH) -
                     static_cast<std::int64_t>(L.netHop));
            r.dataAt = w.finish(checkedBase(
                static_cast<std::int64_t>(L.readHome) + hops2,
                "readHome"));                       // 72 uniform
            r.ownAt = w.finish(checkedBase(
                static_cast<std::int64_t>(L.writeHome) + hops2,
                "writeHome"));                      // 64 uniform
            r.level = ServiceLevel::HomeNode;
            r.netCycles = 2 * hopRH;
        }
    }
    r.ackDone = r.ownAt;
    r.queueing = w.queueing();

    // --- Directory and remote-cache state updates (eager) ---
    if (exclusive) {
        if (e.state == DirEntry::State::Shared) {
            SharerSet exact = e.sharers;
            exact.remove(req);
            if (!exact.empty()) {
                Tick ack = sendInvalidations(
                    req, home, line, invalidationTargets(e, req), exact,
                    dir_start);
                r.ackDone = std::max(r.ownAt, ack);
            }
        } else if (e.state == DirEntry::State::Dirty &&
                   e.owner != invalidNode && e.owner != req) {
            // The owner is tracked by an exact pointer in every
            // format, so this invalidation never broadcasts.
            SharerSet owner_only;
            owner_only.add(e.owner);
            Tick ack = sendInvalidations(req, home, line, owner_only,
                                         owner_only, dir_start);
            r.ackDone = std::max(r.ownAt, ack);
        }
        e.state = DirEntry::State::Dirty;
        e.owner = req;
        e.sharers.clear();
        e.overflowed = false;
    } else {
        if (e.state == DirEntry::State::Dirty && e.owner != invalidNode &&
            e.owner != req) {
            // Sharing writeback: the previous owner keeps a Shared copy.
            nodes[e.owner].secondary.downgrade(line);
            // The owner's exclusive fill may still be in flight; it must
            // now install Shared, or its cache would diverge from the
            // directory (Dirty copy under a Shared directory entry).
            if (auto *m = nodes[e.owner].mshrs.find(line))
                m->exclusive = false;
            NodeId prev = e.owner;
            e.state = DirEntry::State::Shared;
            e.owner = invalidNode;
            e.sharers.clear();
            e.overflowed = false;
            dirAddSharer(e, prev);
            dirAddSharer(e, req);
        } else if (req == home &&
                   (e.state == DirEntry::State::Uncached ||
                    (e.state == DirEntry::State::Shared &&
                     noOtherSharers(e, req)))) {
            // Local-memory read with no other node holding a copy: the
            // home grants exclusive ownership so a subsequent write
            // retires in the cache. This matches the behavior the
            // paper's numbers imply for node-local data (LU's owned
            // columns and MP3D's particles show 97%/75% write hit
            // rates); remote reads always return read-shared copies.
            e.state = DirEntry::State::Dirty;
            e.owner = req;
            e.sharers.clear();
            e.overflowed = false;
            r.exclusiveGrant = true;
        } else {
            e.state = DirEntry::State::Shared;
            dirAddSharer(e, req);
            e.owner = invalidNode;
        }
    }
    return r;
}

SharerSet
MemorySystem::invalidationTargets(const DirEntry &e, NodeId req) const
{
    SharerSet t;
    switch (cfg.dirFormat) {
      case DirFormat::FullBitVector:
        t = e.sharers;
        break;
      case DirFormat::LimitedPointer:
        if (!e.overflowed) {
            t = e.sharers;
        } else {
            // Dir_i_B: the pointers overflowed, so the home no longer
            // knows who shares and must broadcast the invalidation.
            for (NodeId n = 0; n < cfg.numNodes; ++n)
                t.add(n);
        }
        break;
      case DirFormat::CoarseVector: {
        // Region cover of the exact set: every node in any region that
        // contains a sharer. Computed from the exact set on demand,
        // which is equivalent to accumulating region bits because
        // sharer sets only grow between full resets.
        const std::uint32_t rs = cfg.dirRegionSize;
        e.sharers.forEach([&](NodeId s) {
            NodeId start = s / rs * rs;
            NodeId end = std::min<NodeId>(start + rs, cfg.numNodes);
            for (NodeId n = start; n < end; ++n)
                t.add(n);
        });
        break;
      }
    }
    t.remove(req);
    return t;
}

bool
MemorySystem::noOtherSharers(const DirEntry &e, NodeId req) const
{
    switch (cfg.dirFormat) {
      case DirFormat::FullBitVector:
        return e.sharers.noneExcept(req);
      case DirFormat::LimitedPointer:
        return !e.overflowed && e.sharers.noneExcept(req);
      case DirFormat::CoarseVector:
        // The hardware only sees region bits: a marked region - even
        // the requester's own - may hide another sharer, so a Shared
        // entry never proves exclusivity.
        return e.sharers.empty();
    }
    return false;
}

void
MemorySystem::dirAddSharer(DirEntry &e, NodeId n)
{
    e.sharers.add(n);
    if (cfg.dirFormat == DirFormat::LimitedPointer && !e.overflowed &&
        e.sharers.count() > cfg.dirPointers) {
        e.overflowed = true;
        dirOverflows++;
    }
}

Tick
MemorySystem::sendInvalidations(NodeId req, NodeId home, Addr line,
                                const SharerSet &targets,
                                const SharerSet &exact, Tick dir_time)
{
    const LatencyConfig &L = cfg.lat;
    Tick last_ack = dir_time;
    for (NodeId s = 0; s < cfg.numNodes; ++s) {
        if (!targets.test(s))
            continue;
        if (exact.test(s)) {
            // Eager cache-state effect: drop the copy and poison any
            // fill still in flight so the stale response cannot
            // install it.
            nodes[s].secondary.invalidate(line);
            nodes[s].primary.invalidate(line);
            if (auto *m = nodes[s].mshrs.find(line))
                m->poisoned = true;
            nodes[s].cacheEpoch++;
        } else {
            // A target outside the exact set holds no copy: the
            // message and its ack still cost time and bandwidth below
            // (the price of the inexact directory format), but there
            // is no cached state to touch — in particular no
            // cacheEpoch bump, which would spuriously invalidate
            // direct-execution read windows on uninvolved nodes.
            overInvalidations++;
        }
        nodes[s].stats.invalidationsReceived++;

        // Timing: inval message home->s, ack s->req (point to point);
        // distance-dependent under the mesh (invalAckLatency is the
        // uniform two-hop value, so the uniform network reproduces the
        // paper's constant exactly).
        const Tick hopHS = hopLatency(home, s);
        const Tick hopSR = hopLatency(s, req);
        PathWalker w(dir_time);
        w.stage(nodes[home].netOut, 2, L.netCtlOccupancy);
        meshRoute(w, home, s, 2, L.netCtlOccupancy);
        w.stage(nodes[s].netIn, 2 + hopHS, L.netCtlOccupancy);
        w.stage(nodes[s].busReq, 4 + hopHS, L.busCtlOccupancy);
        w.stage(nodes[s].netOut, 6 + hopHS, L.netCtlOccupancy);
        meshRoute(w, s, req, 6 + hopHS, L.netCtlOccupancy);
        w.stage(nodes[req].netIn, 6 + hopHS + hopSR, L.netCtlOccupancy);
        last_ack = std::max(
            last_ack,
            w.finish(checkedBase(
                8 + static_cast<std::int64_t>(L.invalAckLatency) +
                    static_cast<std::int64_t>(hopHS + hopSR) -
                    2 * static_cast<std::int64_t>(L.netHop),
                "invalAck")));
    }
    return last_ack;
}

void
MemorySystem::writebackVictim(NodeId node, Addr victim_line, Tick t)
{
    const LatencyConfig &L = cfg.lat;
    NodeId home = mem.homeOf(victim_line);
    PathWalker w(t);
    w.stage(nodes[node].busReply, 2, L.busOccupancy);
    Tick arrive;
    if (home == node) {
        arrive = w.stage(nodes[home].dir, 6, L.dirOccupancy);
    } else {
        const Tick hopNH = hopLatency(node, home);
        w.stage(nodes[node].netOut, 6, L.netDataOccupancy);
        meshRoute(w, node, home, 6, L.netDataOccupancy);
        w.stage(nodes[home].netIn, 6 + hopNH, L.netDataOccupancy);
        arrive = w.stage(nodes[home].dir, 8 + hopNH, L.dirOccupancy);
    }
    // The directory learns of the eviction when the message arrives.
    // Home-affine event: it mutates the home node's directory state.
    pendingWritebacks[lineIndex(victim_line)]++;
    eq.scheduleAtNode(home, arrive, [this, victim_line, node]() {
        if (capturing) [[unlikely]] {
            // Checkpoint capture drain: the arrival belongs to the
            // *resumed* run. Record it (the pendingWritebacks entry
            // stays, so it serializes as still in flight) and replay
            // it at restore.
            recordedWb.push_back({victim_line, node, eq.now()});
            return;
        }
        applyWritebackArrival(node, victim_line);
    });
}

void
MemorySystem::applyWritebackArrival(NodeId node, Addr victim_line)
{
    DirEntry &e = dirEntry(victim_line);
    // The evictor may have re-requested the line while this message
    // was in flight (its new fill walked the directory first and
    // re-established ownership). A live MSHR or an installed copy at
    // the evictor means the Dirty entry describes the *new* epoch,
    // and this stale writeback must not clear it.
    const bool refetched =
        nodes[node].secondary.probe(victim_line) != LineState::Invalid ||
        nodes[node].mshrs.find(victim_line) != nullptr;
    if (e.state == DirEntry::State::Dirty && e.owner == node &&
        !refetched) {
        e.state = DirEntry::State::Uncached;
        e.owner = invalidNode;
        e.sharers.clear();
        e.overflowed = false;
    }
    auto it = pendingWritebacks.find(lineIndex(victim_line));
    if (it != pendingWritebacks.end() && --it->second == 0)
        pendingWritebacks.erase(it);
    noteTransition(victim_line);
}

void
MemorySystem::scheduleFill(NodeId node, Addr line, bool exclusive,
                           bool prefetch, Tick t)
{
    eq.scheduleAtNode(node, t, [this, node, line, exclusive, prefetch]() {
        Node &nd = nodes[node];
        bool poisoned = false;
        // The fill's ownership may have changed while it was in flight
        // (a write upgraded it; a remote read's sharing writeback
        // downgraded it), so the install state comes from the MSHR, not
        // from the state captured at issue time.
        bool excl = exclusive;
        if (auto *m = nd.mshrs.find(line)) {
            poisoned = m->poisoned;
            excl = m->exclusive;
        }
        nd.mshrs.release(line);
        if (poisoned) {
            noteTransition(line);
            return;
        }
        auto victim = nd.secondary.fill(
            line, excl ? LineState::Dirty : LineState::Shared);
        if (victim.valid) {
            nd.primary.invalidate(victim.addr);
            if (victim.dirty)
                writebackVictim(node, victim.addr, eq.now());
            noteTransition(victim.addr);
        }
        nd.primary.fill(line);
        nd.cacheEpoch++;
        Tick busy_until = eq.now() + cfg.lat.primaryFillBusy;
        nd.primaryBusy = std::max(nd.primaryBusy, busy_until);
        if (prefetch)
            nd.pfFillBusy = std::max(nd.pfFillBusy, busy_until);
        noteTransition(line);
        if (fillHookFn)
            fillHookFn(fillHookCtx, node, eq.now(), prefetch);
    });
}

void
MemorySystem::commitValue(Addr a, std::uint64_t value, unsigned size)
{
    mem.storeRaw(a, value, size);
    auto it = watches.find(lineIndex(a));
    if (it == watches.end())
        return;
    auto cbs = std::move(it->second);
    watches.erase(it);
    for (auto &cb : cbs)
        cb();
}

void
MemorySystem::queuedLockAcquire(NodeId node, Addr a, Tick t,
                                std::function<void(Tick)> on_grant)
{
    // The request travels to the lock's home directory like an
    // uncached read (the lock value itself stays home-resident).
    FillResult fr = walkUncached(node, a, false, t);
    // The grant decision is made at the lock's home directory.
    eq.scheduleAtNode(mem.homeOf(a), fr.dataAt,
                      [this, a, cb = std::move(on_grant)]() {
        QueuedLock &ql = queuedLocks[a];
        if (!ql.held) {
            ql.held = true;
            mem.storeRaw(a, 1, 4);
            cb(eq.now());
        } else {
            ql.waiters.push_back(cb);
        }
    });
}

void
MemorySystem::queuedLockRelease(NodeId node, Addr a, Tick t)
{
    // The release is a one-way message to the home (the releaser does
    // not wait for it): local bus, network hop, directory service.
    const LatencyConfig &L = cfg.lat;
    NodeId home = mem.homeOf(a);
    PathWalker w(t);
    w.stage(nodes[node].busReq, 2, L.busCtlOccupancy);
    Tick arrive;
    if (home == node) {
        arrive = w.stage(nodes[home].dir, 4, L.dirOccupancy) +
                 L.dirOccupancy;
    } else {
        const Tick hopNH = hopLatency(node, home);
        w.stage(nodes[node].netOut, 4, L.netCtlOccupancy);
        meshRoute(w, node, home, 4, L.netCtlOccupancy);
        w.stage(nodes[home].netIn, 4 + hopNH, L.netCtlOccupancy);
        arrive = w.stage(nodes[home].dir, 6 + hopNH, L.dirOccupancy) +
                 L.dirOccupancy;
    }
    eq.scheduleAtNode(home, arrive, [this, a]() {
        QueuedLock &ql = queuedLocks[a];
        panic_if(!ql.held, "queued-lock release of a free lock");
        if (ql.waiters.empty()) {
            ql.held = false;
            mem.storeRaw(a, 0, 4);
            return;
        }
        // Hand off to exactly one waiter: one grant message from the
        // home to the waiting node (about one network hop + delivery).
        auto cb = std::move(ql.waiters.front());
        ql.waiters.pop_front();
        Tick grant_at = eq.now() + cfg.lat.netHop + 6;
        eq.scheduleAt(grant_at,
                      [cb = std::move(cb), grant_at]() { cb(grant_at); });
    });
}

void
MemorySystem::watchLine(Addr a, std::function<void()> cb)
{
    watches[lineIndex(a)].push_back(std::move(cb));
}

void
MemorySystem::trackPendingStore(NodeId node, Addr a, std::uint64_t value,
                                unsigned size, Tick commit_at)
{
    std::uint64_t seq = ++storeSeq;
    nodes[node].pendingStores[a] = PendingStore{value, size, seq};
    nodes[node].storeEpoch++;
    eq.scheduleAtNode(node, commit_at, [this, node, a, seq]() {
        auto it = nodes[node].pendingStores.find(a);
        if (it != nodes[node].pendingStores.end() && it->second.seq == seq)
            nodes[node].pendingStores.erase(it);
    });
}

std::optional<std::uint64_t>
MemorySystem::pendingStoreValue(NodeId node, Addr a) const
{
    const auto &ps = nodes[node].pendingStores;
    auto it = ps.find(a);
    if (it == ps.end())
        return std::nullopt;
    return it->second.value;
}

// ---------------------------------------------------------------------
// Uncached shared-data path (Figure 2 "No Cache" baseline).
// ---------------------------------------------------------------------

MemorySystem::FillResult
MemorySystem::walkUncached(NodeId req, Addr a, bool is_write, Tick t)
{
    const LatencyConfig &L = cfg.lat;
    NodeId home = mem.homeOf(a);
    PathWalker w(t);
    FillResult r{};
    w.stage(nodes[req].busReq, 2, L.busCtlOccupancy);
    if (home == req) {
        w.stage(nodes[home].dir, 4, L.dirOccupancy);
        if (!is_write)
            w.stage(nodes[req].busReply, 16, L.busOccupancy);
        Tick base = checkedBase(
            static_cast<std::int64_t>(is_write ? L.writeLocal
                                               : L.readLocal) -
                static_cast<std::int64_t>(L.uncachedDiscount),
            is_write ? "uncachedWriteLocal" : "uncachedReadLocal");
        r.dataAt = r.ownAt = w.finish(base);
    } else {
        const Tick hopRH = hopLatency(req, home);
        w.stage(nodes[req].netOut, 4, L.netCtlOccupancy);
        meshRoute(w, req, home, 4, L.netCtlOccupancy);
        w.stage(nodes[home].netIn, 4 + hopRH, L.netCtlOccupancy);
        w.stage(nodes[home].dir, 6 + hopRH, L.dirOccupancy);
        if (!is_write) {
            w.stage(nodes[home].netOut, 14 + hopRH,
                    L.netDataOccupancy);
            meshRoute(w, home, req, 14 + hopRH, L.netDataOccupancy);
            w.stage(nodes[req].netIn, 14 + 2 * hopRH,
                    L.netDataOccupancy);
        }
        // The paper says uncached accesses are "five to ten cycles less"
        // than the cached fills; remote accesses save the larger amount
        // because both the request and reply skip the cache fill stages.
        const std::int64_t discount =
            static_cast<std::int64_t>(L.uncachedDiscount) + 2;
        const std::int64_t hopDelta = static_cast<std::int64_t>(hopRH) -
                                      static_cast<std::int64_t>(L.netHop);
        Tick base = is_write
                        ? checkedBase(static_cast<std::int64_t>(
                                          L.writeHome) -
                                          discount + hopDelta,
                                      "uncachedWriteHome")
                        : checkedBase(static_cast<std::int64_t>(
                                          L.readHome) -
                                          discount + 2 * hopDelta,
                                      "uncachedReadHome");
        r.dataAt = r.ownAt = w.finish(base);
        r.netCycles = is_write ? hopRH : 2 * hopRH;
    }
    r.ackDone = r.ownAt;
    r.queueing = w.queueing();
    r.withData = !is_write;
    r.level = ServiceLevel::Uncached;
    return r;
}

// ---------------------------------------------------------------------
// Observability (src/obs): transaction records.
// ---------------------------------------------------------------------

void
MemorySystem::noteTxn(NodeId node, obs::TxnOp op, Tick start,
                      Tick complete, ServiceLevel level, bool hit,
                      const FillResult *fr, Tick issue)
{
    using obs::TxnPhase;
    obs::TxnRecord r{};
    r.node = node;
    r.op = op;
    r.level = level;
    r.hit = hit;
    r.start = start;
    r.complete = complete;
    const Tick total = complete >= start ? complete - start : 0;
    if (!fr) {
        // Cache hits spend their whole latency in the lookup; combined
        // requests spend it riding a fill already in flight.
        r.phase(hit ? TxnPhase::CacheLookup : TxnPhase::Queue) = total;
    } else {
        // Peel the known pieces off the total in priority order, each
        // clamped to what is left, and attribute the residual to the
        // directory/memory stage. The clamping makes the decomposition
        // conservative by construction: phases always sum to the total.
        Tick rem = total;
        auto take = [&rem](Tick want) {
            Tick got = std::min(want, rem);
            rem -= got;
            return got;
        };
        r.phase(TxnPhase::Queue) = take((issue - start) + fr->queueing);
        r.phase(TxnPhase::Network) = take(fr->netCycles);
        r.phase(TxnPhase::Issue) = take(fr->netCycles ? 4 : 2);
        r.phase(TxnPhase::RemoteFwd) = take(fr->threeHop ? 10 : 0);
        r.phase(TxnPhase::Fill) = take(fr->withData ? 8 : 0);
        r.phase(TxnPhase::DirWait) = rem;
    }
    txnHookFn(txnHookCtx, r);
}

// ---------------------------------------------------------------------
// Demand reads.
// ---------------------------------------------------------------------

void
MemorySystem::flushDirectExec()
{
    for (auto &nd : nodes) {
        if (!nd.fastHitBatch)
            continue;
        // Exactly the counters one tryFastRead() hit records, batched.
        dxWindowHits += nd.fastHitBatch;
        nd.stats.reads += nd.fastHitBatch;
        nd.stats.sharedReadHits.hits += nd.fastHitBatch;
        nd.stats.sharedReadHits.accesses += nd.fastHitBatch;
        nd.stats.serviceCount[static_cast<int>(ServiceLevel::PrimaryHit)] +=
            nd.fastHitBatch;
        nd.fastHitBatch = 0;
    }
}

bool
MemorySystem::tryFastRead(NodeId node, Addr a)
{
    if (!cfg.cacheSharedData)
        return false;
    Node &nd = nodes[node];
    if (!nd.primary.probe(a))
        return false;
    nd.stats.reads++;
    nd.stats.sharedReadHits.record(true);
    nd.stats.serviceCount[static_cast<int>(ServiceLevel::PrimaryHit)]++;
    return true;
}

AccessOutcome
MemorySystem::read(NodeId node, Addr a, Tick t)
{
    const LatencyConfig &L = cfg.lat;
    Node &nd = nodes[node];
    nd.stats.reads++;
    AccessOutcome o{};

    if (!cfg.cacheSharedData) {
        FillResult fr = walkUncached(node, a, false, t);
        o.complete = fr.dataAt;
        o.ackDone = fr.dataAt;
        o.level = ServiceLevel::Uncached;
        nd.stats.serviceCount[static_cast<int>(o.level)]++;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Read, t, o.complete, o.level,
                    false, &fr, t);
        return o;
    }

    if (nd.primary.probe(a)) {
        o.complete = t + L.readPrimaryHit;
        o.ackDone = o.complete;
        o.level = ServiceLevel::PrimaryHit;
        o.hit = true;
        nd.stats.sharedReadHits.record(true);
        nd.stats.serviceCount[static_cast<int>(o.level)]++;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Read, t, o.complete, o.level,
                    true, nullptr, t);
        return o;
    }

    if (nd.secondary.probe(a) != LineState::Invalid) {
        o.complete = t + L.readSecondary;
        o.ackDone = o.complete;
        o.level = ServiceLevel::SecondaryHit;
        o.hit = true;
        nd.stats.sharedReadHits.record(true);
        nd.stats.serviceCount[static_cast<int>(o.level)]++;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Read, t, o.complete, o.level,
                    true, nullptr, t);
        // Fill the primary cache when the line arrives from secondary.
        // An invalidation (or eviction) may race the transfer; installing
        // then would break the L1-subset-of-L2 inclusion property.
        eq.scheduleAtNode(node, o.complete, [this, node, a]() {
            if (nodes[node].secondary.probe(a) == LineState::Invalid)
                return;
            nodes[node].primary.fill(a);
            nodes[node].cacheEpoch++;
            nodes[node].primaryBusy =
                std::max(nodes[node].primaryBusy,
                         eq.now() + cfg.lat.primaryFillBusy);
        });
        return o;
    }

    nd.stats.sharedReadHits.record(false);

    // Combine with an outstanding fill for the same line (Section 5.1).
    if (auto *m = nd.mshrs.find(a)) {
        o.complete = std::max(m->complete, t + L.readSecondary);
        o.ackDone = o.complete;
        o.level = ServiceLevel::Combined;
        m->demanded = true;
        if (m->prefetch)
            nd.stats.prefetchesCombined++;
        nd.stats.readMissLatency.sample(
            static_cast<double>(o.complete - t));
        nd.stats.serviceCount[static_cast<int>(o.level)]++;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Read, t, o.complete, o.level,
                    false, nullptr, t);
        return o;
    }

    Tick issue = t;
    if (nd.mshrs.full())
        issue = std::max(issue, nd.mshrs.earliestComplete());
    FillResult fr = walkFill(node, lineAddr(a), false, issue);
    nd.mshrs.allocate(lineAddr(a), fr.dataAt, fr.exclusiveGrant, false);
    scheduleFill(node, lineAddr(a), fr.exclusiveGrant, false, fr.dataAt);
    noteTransition(lineAddr(a));
    o.complete = fr.dataAt;
    o.ackDone = fr.dataAt;
    o.level = fr.level;
    nd.stats.readMissLatency.sample(static_cast<double>(o.complete - t));
    nd.stats.serviceCount[static_cast<int>(o.level)]++;
    if (txnHookFn) [[unlikely]]
        noteTxn(node, obs::TxnOp::Read, t, o.complete, o.level, false,
                &fr, issue);
    return o;
}

// ---------------------------------------------------------------------
// Writes.
// ---------------------------------------------------------------------

namespace {

/** Common write-path timing: returns (complete, ackDone, level, hit). */
struct WritePath
{
    Tick complete;
    Tick ackDone;
    ServiceLevel level;
    bool hit;
};

} // namespace

AccessOutcome
MemorySystem::writeSc(NodeId node, Addr a, std::uint64_t value,
                      unsigned size, Tick t)
{
    const LatencyConfig &L = cfg.lat;
    Node &nd = nodes[node];
    nd.stats.writes++;
    AccessOutcome o{};

    if (!cfg.cacheSharedData) {
        FillResult fr = walkUncached(node, a, true, t);
        o.complete = fr.ownAt;
        o.ackDone = fr.ownAt;
        o.level = ServiceLevel::Uncached;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Write, t, o.complete, o.level,
                    false, &fr, t);
    } else if (nd.secondary.probe(a) == LineState::Dirty) {
        o.complete = t + L.writeSecondary;
        o.ackDone = o.complete;
        o.level = ServiceLevel::SecondaryHit;
        o.hit = true;
        nd.stats.sharedWriteHits.record(true);
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Write, t, o.complete, o.level,
                    true, nullptr, t);
    } else {
        nd.stats.sharedWriteHits.record(false);
        if (auto *m = nd.mshrs.find(a)) {
            // A fill is already outstanding. If it is not exclusive -
            // or was poisoned by a racing invalidation, revoking its
            // right to install - upgrade it: walk a fresh ownership
            // transaction and extend it.
            if (!m->exclusive || m->poisoned) {
                FillResult fr = walkFill(node, lineAddr(a), true, t);
                m->exclusive = true;
                m->poisoned = false;
                m->complete = std::max(m->complete, fr.dataAt);
                o.complete = fr.ownAt;
                o.ackDone = fr.ackDone;
                o.level = fr.level;
                noteTransition(lineAddr(a));
                if (txnHookFn) [[unlikely]]
                    noteTxn(node, obs::TxnOp::Write, t, o.complete,
                            o.level, false, &fr, t);
            } else {
                o.complete = std::max(m->complete, t + L.writeSecondary);
                o.ackDone = o.complete;
                o.level = ServiceLevel::Combined;
                if (txnHookFn) [[unlikely]]
                    noteTxn(node, obs::TxnOp::Write, t, o.complete,
                            o.level, false, nullptr, t);
            }
        } else if (nd.secondary.probe(a) == LineState::Shared) {
            // Ownership upgrade of a Shared copy: control-only traffic.
            FillResult fr = walkFill(node, lineAddr(a), true, t, false);
            nd.secondary.upgrade(a);
            o.complete = fr.ownAt;
            o.ackDone = fr.ackDone;
            o.level = fr.level;
            noteTransition(lineAddr(a));
            if (txnHookFn) [[unlikely]]
                noteTxn(node, obs::TxnOp::Write, t, o.complete, o.level,
                        false, &fr, t);
        } else {
            Tick issue = t;
            if (nd.mshrs.full())
                issue = std::max(issue, nd.mshrs.earliestComplete());
            FillResult fr = walkFill(node, lineAddr(a), true, issue);
            nd.mshrs.allocate(lineAddr(a), fr.dataAt, true, false);
            scheduleFill(node, lineAddr(a), true, false, fr.dataAt);
            o.complete = fr.ownAt;
            o.ackDone = fr.ackDone;
            o.level = fr.level;
            noteTransition(lineAddr(a));
            if (txnHookFn) [[unlikely]]
                noteTxn(node, obs::TxnOp::Write, t, o.complete, o.level,
                        false, &fr, issue);
        }
    }
    nd.stats.serviceCount[static_cast<int>(o.level)]++;
    // Commit is home-affine: it writes the arena and fires the home's
    // watch list.
    eq.scheduleAtNode(mem.homeOf(a), o.complete,
                      [this, a, value, size]() { commitValue(a, value, size); });
    return o;
}

BufferOutcome
MemorySystem::writeRc(NodeId node, Addr a, std::uint64_t value,
                      unsigned size, Tick t, bool release, ContextId ctx,
                      bool in_order)
{
    Node &nd = nodes[node];
    WriteBufferState &wb = nd.wb;
    panic_if(ctx >= wb.ctx.size(), "context id out of range");
    auto &ord = wb.ctx[ctx];
    BufferOutcome o{};

    // Free every slot whose write has already retired.
    while (!wb.inFlight.empty() && *wb.inFlight.begin() <= t)
        wb.inFlight.erase(wb.inFlight.begin());

    // Wait for a slot if the 16-deep buffer is full.
    o.acceptTick = t;
    if (wb.inFlight.size() >= cfg.writeBufferDepth) {
        auto first = wb.inFlight.begin();
        o.acceptTick = std::max(t, *first);
        wb.inFlight.erase(first);
    }

    // Writes drain in FIFO order through the secondary-cache port, but
    // their coherence transactions pipeline (lockup-free cache).
    Tick issue = std::max(o.acceptTick + 1, wb.nextIssueFree);
    if (release) {
        // A release retires only after all of this context's earlier
        // writes completed and every invalidation has been
        // acknowledged (RC, Section 4.1).
        issue = std::max({issue, ord.allDone, ord.ackDone});
    } else if (in_order) {
        // Processor consistency: writes from one context retire in
        // program order, so this write may not overlap its
        // predecessor's ownership acquisition.
        issue = std::max(issue, ord.allDone);
    }
    wb.nextIssueFree = issue + 2;

    // Now run the same write path a sequentially-consistent write uses,
    // starting from the buffered issue tick.
    AccessOutcome wo = writeSc(node, a, value, size, issue);
    o.complete = wo.complete;
    o.ackDone = wo.ackDone;
    o.level = wo.level;
    o.hit = wo.hit;

    // Same-address program order: a later buffered write must not
    // retire (and commit its value) before an earlier one. This can
    // otherwise happen when a contended ownership upgrade is still in
    // flight while the eagerly-updated tags let the next write hit.
    Tick &last = wb.lastCompletePerAddr[a];
    if (o.complete < last)
        o.complete = last;
    last = o.complete;
    o.ackDone = std::max(o.ackDone, o.complete);

    wb.inFlight.insert(o.complete);
    ord.allDone = std::max(ord.allDone, o.complete);
    ord.ackDone = std::max({ord.ackDone, o.ackDone, o.complete});

    trackPendingStore(node, a, value, size, o.complete);
    return o;
}

// ---------------------------------------------------------------------
// Read-modify-write (lock / barrier primitive).
// ---------------------------------------------------------------------

AccessOutcome
MemorySystem::rmw(NodeId node, Addr a, RmwOp op, std::uint64_t operand,
                  unsigned size, Tick t,
                  std::function<void(std::uint64_t)> on_commit)
{
    const LatencyConfig &L = cfg.lat;
    Node &nd = nodes[node];
    nd.stats.rmws++;
    AccessOutcome o{};
    const Tick t0 = t;  // txn records start before same-addr ordering

    // Same-address ordering against this node's buffered writes: an
    // atomic operation must not commit before an earlier buffered
    // write to the same word (e.g. a barrier arrival increment racing
    // the releaser's own count-reset still sitting in its buffer).
    {
        auto it = nd.wb.lastCompletePerAddr.find(a);
        if (it != nd.wb.lastCompletePerAddr.end() && it->second > t)
            t = it->second;
    }

    if (!cfg.cacheSharedData) {
        FillResult fr = walkUncached(node, a, false, t);
        o.complete = fr.dataAt;
        o.ackDone = fr.dataAt;
        o.level = ServiceLevel::Uncached;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Sync, t0, o.complete, o.level,
                    false, &fr, t);
    } else if (nd.secondary.probe(a) == LineState::Dirty) {
        o.complete = t + L.writeSecondary;
        o.ackDone = o.complete;
        o.level = ServiceLevel::SecondaryHit;
        o.hit = true;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Sync, t0, o.complete, o.level,
                    true, nullptr, t);
    } else if (auto *m = nd.mshrs.find(a);
               m && m->exclusive && !m->poisoned) {
        o.complete = std::max(m->complete, t + L.writeSecondary);
        o.ackDone = o.complete;
        o.level = ServiceLevel::Combined;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Sync, t0, o.complete, o.level,
                    false, nullptr, t);
    } else if (!m && nd.secondary.probe(a) == LineState::Shared) {
        // Ownership upgrade of a Shared copy (control-only), like a
        // write hit on Shared; the data is already cached.
        FillResult fr = walkFill(node, lineAddr(a), true, t, false);
        nd.secondary.upgrade(a);
        o.complete = fr.ownAt;
        o.ackDone = fr.ackDone;
        o.level = fr.level;
        noteTransition(lineAddr(a));
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Sync, t0, o.complete, o.level,
                    false, &fr, t);
    } else {
        Tick issue = t;
        if (!m && nd.mshrs.full())
            issue = std::max(issue, nd.mshrs.earliestComplete());
        FillResult fr = walkFill(node, lineAddr(a), true, issue);
        if (m) {
            // The fresh ownership transaction re-establishes the right
            // to install: a fill poisoned by a racing invalidation is
            // revived, or the directory would say Dirty here with no
            // copy ever arriving.
            m->exclusive = true;
            m->poisoned = false;
            m->complete = std::max(m->complete, fr.dataAt);
        } else {
            nd.mshrs.allocate(lineAddr(a), fr.dataAt, true, false);
            scheduleFill(node, lineAddr(a), true, false, fr.dataAt);
        }
        // RMW needs the data, so it completes when the data arrives.
        o.complete = fr.dataAt;
        o.ackDone = fr.ackDone;
        o.level = fr.level;
        noteTransition(lineAddr(a));
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Sync, t0, o.complete, o.level,
                    false, &fr, issue);
    }
    nd.stats.serviceCount[static_cast<int>(o.level)]++;

    // Later buffered writes to the same word must also order after us.
    {
        Tick &last = nd.wb.lastCompletePerAddr[a];
        if (o.complete > last)
            last = o.complete;
    }

    eq.scheduleAtNode(mem.homeOf(a), o.complete,
                      [this, a, op, operand, size,
                       cb = std::move(on_commit)]() {
        std::uint64_t old = mem.loadRaw(a, size);
        std::uint64_t nv = old;
        switch (op) {
          case RmwOp::TestAndSet:
            if (old == 0)
                nv = 1;
            break;
          case RmwOp::FetchAdd:
            nv = old + operand;
            break;
          case RmwOp::Exchange:
            nv = operand;
            break;
        }
        commitValue(a, nv, size);
        if (cb)
            cb(old);
    });
    return o;
}

// ---------------------------------------------------------------------
// Software prefetch.
// ---------------------------------------------------------------------

BufferOutcome
MemorySystem::prefetch(NodeId node, Addr a, bool exclusive, Tick t)
{
    Node &nd = nodes[node];
    PrefetchBufferState &pb = nd.pb;
    BufferOutcome o{};

    if (!cfg.cacheSharedData) {
        // Without caches there is nowhere to prefetch into.
        o.acceptTick = t;
        o.dropped = true;
        return o;
    }

    nd.stats.prefetchesIssued++;

    while (!pb.slots.empty() && *pb.slots.begin() <= t)
        pb.slots.erase(pb.slots.begin());

    o.acceptTick = t;
    if (pb.slots.size() >= cfg.prefetchBufferDepth) {
        auto first = pb.slots.begin();
        o.acceptTick = std::max(t, *first);
        pb.slots.erase(first);
    }

    Tick service = std::max(o.acceptTick + 1, pb.nextServiceFree);

    // At the buffer head the secondary cache is probed; a prefetch whose
    // line is already present (in an adequate state) is discarded.
    LineState st = nd.secondary.probe(a);
    bool adequate = exclusive ? st == LineState::Dirty
                              : st != LineState::Invalid;
    if (adequate) {
        pb.nextServiceFree = service + 1;
        pb.slots.insert(service + 1);
        o.dropped = true;
        o.complete = service + 1;
        nd.stats.prefetchesDropped++;
        return o;
    }
    if (auto *m = nd.mshrs.find(a)) {
        // Already in flight; merge (an exclusive prefetch behind a
        // shared fill upgrades it so the write that follows is fast).
        if (exclusive && (!m->exclusive || m->poisoned)) {
            FillResult fr = walkFill(node, lineAddr(a), true, service);
            m->exclusive = true;
            m->poisoned = false;
            m->complete = std::max(m->complete, fr.dataAt);
            noteTransition(lineAddr(a));
        }
        pb.nextServiceFree = service + 1;
        pb.slots.insert(service + 1);
        o.dropped = true;
        o.complete = m->complete;
        nd.stats.prefetchesDropped++;
        return o;
    }
    if (exclusive && st == LineState::Shared) {
        // Exclusive prefetch of a line already cached Shared: ownership
        // upgrade only (control traffic), no MSHR — the data is here.
        FillResult fr = walkFill(node, lineAddr(a), true, service, false);
        nd.secondary.upgrade(a);
        noteTransition(lineAddr(a));
        pb.nextServiceFree = service + 1;
        pb.slots.insert(service + 1);
        o.complete = fr.ownAt;
        o.ackDone = fr.ackDone;
        o.level = fr.level;
        if (txnHookFn) [[unlikely]]
            noteTxn(node, obs::TxnOp::Prefetch, t, o.complete, o.level,
                    false, &fr, service);
        return o;
    }
    if (nd.mshrs.full())
        service = std::max(service, nd.mshrs.earliestComplete());

    FillResult fr = walkFill(node, lineAddr(a), exclusive, service);
    const bool excl = exclusive || fr.exclusiveGrant;
    nd.mshrs.allocate(lineAddr(a), fr.dataAt, excl, true);
    scheduleFill(node, lineAddr(a), excl, true, fr.dataAt);
    noteTransition(lineAddr(a));
    pb.nextServiceFree = service + 2;
    pb.slots.insert(service + 2);  // slot frees once issued onto the bus
    o.complete = fr.dataAt;
    o.ackDone = fr.ackDone;
    o.level = fr.level;
    if (txnHookFn) [[unlikely]]
        noteTxn(node, obs::TxnOp::Prefetch, t, o.complete, o.level,
                false, &fr, service);
    return o;
}

// ---------------------------------------------------------------------
// Processor-visible state and statistics.
// ---------------------------------------------------------------------

Tick
MemorySystem::primaryBusyUntil(NodeId node) const
{
    return nodes[node].primaryBusy;
}

Tick
MemorySystem::prefetchFillBusyUntil(NodeId node) const
{
    return nodes[node].pfFillBusy;
}

std::size_t
MemorySystem::writeBufferOccupancy(NodeId node, Tick t)
{
    WriteBufferState &wb = nodes[node].wb;
    while (!wb.inFlight.empty() && *wb.inFlight.begin() <= t)
        wb.inFlight.erase(wb.inFlight.begin());
    return wb.inFlight.size();
}

Tick
MemorySystem::writeDrainTick(NodeId node, ContextId ctx) const
{
    const auto &ord = nodes[node].wb.ctx[ctx];
    return std::max(ord.allDone, ord.ackDone);
}

Tick
MemorySystem::writeAllDoneTick(NodeId node, ContextId ctx) const
{
    return nodes[node].wb.ctx[ctx].allDone;
}

HitRate
MemorySystem::totalReadHits() const
{
    HitRate hr;
    for (const auto &n : nodes) {
        hr.hits += n.stats.sharedReadHits.hits;
        hr.accesses += n.stats.sharedReadHits.accesses;
    }
    return hr;
}

HitRate
MemorySystem::totalWriteHits() const
{
    HitRate hr;
    for (const auto &n : nodes) {
        hr.hits += n.stats.sharedWriteHits.hits;
        hr.accesses += n.stats.sharedWriteHits.accesses;
    }
    return hr;
}

double
MemorySystem::busUtilization(NodeId node, Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(nodes[node].busReq.busyCycles() +
                               nodes[node].busReply.busyCycles()) /
           static_cast<double>(elapsed);
}

// ---------------------------------------------------------------------
// Barrier-point checkpointing.
// ---------------------------------------------------------------------

void
MemorySystem::assertQuiescent() const
{
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        panic_if(nodes[n].mshrs.inFlight() != 0,
                 "checkpoint capture: node %u has %zu outstanding MSHRs",
                 n, nodes[n].mshrs.inFlight());
        panic_if(!nodes[n].pendingStores.empty(),
                 "checkpoint capture: node %u has %zu uncommitted "
                 "buffered stores",
                 n, nodes[n].pendingStores.size());
    }
    for (const auto &[a, ql] : queuedLocks) {
        panic_if(ql.held || !ql.waiters.empty(),
                 "checkpoint capture: queued lock %llu held or contended",
                 static_cast<unsigned long long>(a));
    }
}

namespace {

void
saveNodeStats(ckpt::Writer &w, const MemorySystem::NodeStats &s)
{
    s.sharedReadHits.saveState(w);
    s.sharedWriteHits.saveState(w);
    w.u64(s.reads);
    w.u64(s.writes);
    w.u64(s.rmws);
    w.u64(s.prefetchesIssued);
    w.u64(s.prefetchesDropped);
    w.u64(s.prefetchesCombined);
    w.u64(s.invalidationsReceived);
    s.readMissLatency.saveState(w);
    for (auto c : s.serviceCount)
        w.u64(c);
}

void
loadNodeStats(ckpt::Reader &r, MemorySystem::NodeStats &s)
{
    s.sharedReadHits.loadState(r);
    s.sharedWriteHits.loadState(r);
    s.reads = r.u64();
    s.writes = r.u64();
    s.rmws = r.u64();
    s.prefetchesIssued = r.u64();
    s.prefetchesDropped = r.u64();
    s.prefetchesCombined = r.u64();
    s.invalidationsReceived = r.u64();
    s.readMissLatency.loadState(r);
    for (auto &c : s.serviceCount)
        c = r.u64();
}

} // namespace

void
MemorySystem::saveState(ckpt::Writer &w) const
{
    assertQuiescent();
    w.tag(0x6d656d73u);  // 'mems'
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        const Node &nd = nodes[n];
        nd.primary.saveState(w);
        nd.secondary.saveState(w);
        // Write buffer: timing calendars only (no stores in flight).
        w.u64(nd.wb.inFlight.size());
        for (Tick t : nd.wb.inFlight)  // multiset iterates sorted
            w.u64(t);
        w.u64(nd.wb.nextIssueFree);
        for (const auto &c : nd.wb.ctx) {
            w.u64(c.allDone);
            w.u64(c.ackDone);
        }
        {
            std::map<Addr, Tick> sorted(nd.wb.lastCompletePerAddr.begin(),
                                        nd.wb.lastCompletePerAddr.end());
            w.u64(sorted.size());
            for (const auto &[a, t] : sorted) {
                w.u64(a);
                w.u64(t);
            }
        }
        w.u64(nd.pb.slots.size());
        for (Tick t : nd.pb.slots)
            w.u64(t);
        w.u64(nd.pb.nextServiceFree);
        nd.busReq.saveState(w);
        nd.busReply.saveState(w);
        nd.netOut.saveState(w);
        nd.netIn.saveState(w);
        nd.dir.saveState(w);
        for (const Resource &l : nd.meshLink)
            l.saveState(w);
        w.u64(nd.primaryBusy);
        w.u64(nd.pfFillBusy);
        saveNodeStats(w, nd.stats);
        w.u64(nd.cacheEpoch);
        w.u64(nd.storeEpoch);
        w.u64(nd.fastHitBatch);
    }
    // Global structures, in sorted order for determinism.
    {
        std::map<Addr, DirEntry> sorted(directory.begin(), directory.end());
        w.u64(sorted.size());
        for (const auto &[idx, e] : sorted) {
            w.u64(idx);
            w.u8(static_cast<std::uint8_t>(e.state));
            e.sharers.saveState(w);
            w.u8(e.overflowed ? 1 : 0);
            w.u32(e.owner);
        }
    }
    {
        std::map<Addr, unsigned> sorted(pendingWritebacks.begin(),
                                        pendingWritebacks.end());
        w.u64(sorted.size());
        for (const auto &[idx, cnt] : sorted) {
            w.u64(idx);
            w.u32(cnt);
        }
    }
    w.u64(storeSeq);
    w.u64(dirOverflows);
    w.u64(overInvalidations);
    // Writeback arrivals recorded during the drain, in fire order.
    // (Stale line watches and wake probes are deliberately dropped:
    // they are generation-guarded no-ops in the original run too.)
    w.u64(recordedWb.size());
    for (const WbArrival &a : recordedWb) {
        w.u64(a.line);
        w.u32(a.node);
        w.u64(a.tick);
    }
    w.tag(0x73646e65u);  // 'ends'
}

void
MemorySystem::loadState(ckpt::Reader &r)
{
    r.expect(0x6d656d73u);
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        Node &nd = nodes[n];
        nd.primary.loadState(r);
        nd.secondary.loadState(r);
        nd.wb.inFlight.clear();
        for (std::uint64_t i = 0, cnt = r.u64(); i < cnt; ++i)
            nd.wb.inFlight.insert(r.u64());
        nd.wb.nextIssueFree = r.u64();
        for (auto &c : nd.wb.ctx) {
            c.allDone = r.u64();
            c.ackDone = r.u64();
        }
        nd.wb.lastCompletePerAddr.clear();
        for (std::uint64_t i = 0, cnt = r.u64(); i < cnt; ++i) {
            Addr a = r.u64();
            nd.wb.lastCompletePerAddr[a] = r.u64();
        }
        nd.pb.slots.clear();
        for (std::uint64_t i = 0, cnt = r.u64(); i < cnt; ++i)
            nd.pb.slots.insert(r.u64());
        nd.pb.nextServiceFree = r.u64();
        nd.busReq.loadState(r);
        nd.busReply.loadState(r);
        nd.netOut.loadState(r);
        nd.netIn.loadState(r);
        nd.dir.loadState(r);
        for (Resource &l : nd.meshLink)
            l.loadState(r);
        nd.primaryBusy = r.u64();
        nd.pfFillBusy = r.u64();
        loadNodeStats(r, nd.stats);
        nd.cacheEpoch = r.u64();
        nd.storeEpoch = r.u64();
        nd.fastHitBatch = r.u64();
    }
    directory.clear();
    for (std::uint64_t i = 0, cnt = r.u64(); i < cnt; ++i) {
        Addr idx = r.u64();
        DirEntry e;
        e.state = static_cast<DirEntry::State>(r.u8());
        e.sharers.loadState(r);
        e.overflowed = r.u8() != 0;
        e.owner = r.u32();
        directory.emplace(idx, e);
    }
    pendingWritebacks.clear();
    for (std::uint64_t i = 0, cnt = r.u64(); i < cnt; ++i) {
        Addr idx = r.u64();
        pendingWritebacks[idx] = r.u32();
    }
    storeSeq = r.u64();
    dirOverflows = r.u64();
    overInvalidations = r.u64();
    // Re-schedule the recorded writeback arrivals in their original
    // fire order. The Machine schedules the park-resume events first,
    // so at equal ticks a park still precedes these, matching the
    // original (tick, seq) order.
    for (std::uint64_t i = 0, cnt = r.u64(); i < cnt; ++i) {
        Addr line = r.u64();
        NodeId node = r.u32();
        Tick at = r.u64();
        eq.scheduleAtNode(mem.homeOf(line), at, [this, node, line]() {
            applyWritebackArrival(node, line);
        });
    }
    r.expect(0x73646e65u);
}

} // namespace dashsim
