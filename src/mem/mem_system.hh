/**
 * @file
 * The DASH-style memory system: per-node two-level lockup-free caches,
 * write and prefetch buffers, distributed directory-based invalidating
 * coherence, and a contention-modeled interconnect.
 *
 * Timing model. Every transaction walks a path of FCFS resources (local
 * bus, network ports, home directory, remote bus) at fixed uncontended
 * offsets chosen so that an unloaded machine reproduces Table 1 of the
 * paper exactly; queueing at any resource adds to the completion time.
 *
 * Data model. The SharedMemory arena is the single authoritative copy
 * of all data. Writes and read-modify-writes commit their values to the
 * arena in *completion-time order* through the event queue, which
 * serializes them globally; cache and directory state are advanced
 * eagerly when a transaction is issued. For the data-race-free programs
 * the paper studies this gives correct values everywhere while keeping
 * the simulator one event per transaction.
 */

#ifndef MEM_MEM_SYSTEM_HH
#define MEM_MEM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/mem_config.hh"
#include "mem/resource.hh"
#include "mem/shared_memory.hh"
#include "mem/sharer_set.hh"
#include "obs/txn.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dashsim {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

/** Directory state for one memory line at its home node. */
struct DirEntry
{
    enum class State : std::uint8_t { Uncached, Shared, Dirty };

    State state = State::Uncached;
    SharerSet sharers;          ///< exact set of nodes with Shared copies
    NodeId owner = invalidNode; ///< valid when state == Dirty
    /**
     * Limited-pointer (Dir_i_B) overflow flag: sticky once the sharer
     * count ever exceeds the pointer budget, cleared only when the
     * entry resets to Dirty or Uncached. While set, exclusive requests
     * broadcast invalidations to every node.
     */
    bool overflowed = false;
};

/** Atomic read-modify-write operations supported by the memory system. */
enum class RmwOp : std::uint8_t
{
    TestAndSet,  ///< old = M[a]; if (old == 0) M[a] = 1; return old
    FetchAdd,    ///< old = M[a]; M[a] = old + operand; return old
    Exchange,    ///< old = M[a]; M[a] = operand; return old
};

/** Timing outcome of a demand access. */
struct AccessOutcome
{
    Tick complete = 0;          ///< data available / write retired
    Tick ackDone = 0;           ///< all invalidation acks received
    ServiceLevel level = ServiceLevel::PrimaryHit;
    bool hit = false;           ///< counted as a cache hit (Section 3)
};

/** Timing outcome of a buffered (write / prefetch) access. */
struct BufferOutcome
{
    Tick acceptTick = 0;        ///< when a buffer slot was available
    Tick complete = 0;          ///< write retired / prefetch filled
    Tick ackDone = 0;
    bool dropped = false;       ///< prefetch matched in cache / in flight
    ServiceLevel level = ServiceLevel::PrimaryHit;
    bool hit = false;
};

/**
 * The full memory system for an N-node machine.
 */
class MemorySystem
{
  public:
    MemorySystem(EventQueue &eq, SharedMemory &mem, const MemConfig &cfg);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    const MemConfig &config() const { return cfg; }
    SharedMemory &memory() { return mem; }

    // ------------------------------------------------------------------
    // Demand accesses (called by the processor model).
    // ------------------------------------------------------------------

    /** Blocking shared read issued by @p node at tick @p t. */
    AccessOutcome read(NodeId node, Addr a, Tick t);

    /**
     * One-cycle primary-cache hit check used by the processor's
     * non-suspending read path. Records hit statistics on success; on
     * failure the caller falls back to read(), which records the miss.
     */
    bool tryFastRead(NodeId node, Addr a);

    /** Count a read satisfied by store forwarding from the write buffer. */
    void
    noteForwardedRead(NodeId node)
    {
        nodes[node].stats.reads++;
        nodes[node].stats.sharedReadHits.record(true);
        nodes[node]
            .stats.serviceCount[static_cast<int>(ServiceLevel::PrimaryHit)]++;
    }

    /** True when a transaction observer is installed (see setTxnHook). */
    bool txnHookActive() const { return txnHookFn != nullptr; }

    // ------------------------------------------------------------------
    // Direct-execution fast-path support (cpu/processor.cc). The
    // processor keeps per-context windows of validated guaranteed-L1-hit
    // lines; each window carries the epoch counters below, so a single
    // compare re-proves "still a primary hit, no store-forwarding
    // candidate" without touching the cache structures. The counters
    // are maintained unconditionally (two increments on already-cold
    // paths); nothing reads them unless the fast path is enabled.
    // ------------------------------------------------------------------

    /** Bumped whenever @p node's primary-cache contents change
     *  (fill, invalidation, or eviction). */
    std::uint64_t cacheEpoch(NodeId node) const
    {
        return nodes[node].cacheEpoch;
    }

    /** Bumped whenever a write enters @p node's store-forwarding
     *  table (pendingStores). Removals do not bump: a window only
     *  caches the *absence* of an entry, which removals preserve. */
    std::uint64_t storeEpoch(NodeId node) const
    {
        return nodes[node].storeEpoch;
    }

    /**
     * Count one window-validated primary-hit read for @p node. The
     * counters a tryFastRead() hit would have recorded are batched
     * here and folded in by flushDirectExec() so the per-hit cost is
     * one increment.
     */
    void noteWindowHit(NodeId node) { nodes[node].fastHitBatch++; }

    /**
     * Fold the batched window-hit counters into the regular statistics
     * (reads, hit rates, service levels). The Machine calls this once
     * after the event queue drains, before results are assembled;
     * idempotent because the batch is consumed.
     */
    void flushDirectExec();

    /**
     * Host-side count of window-validated fast-path read hits
     * (kernel_microbench's fastpath_hit_fraction numerator). Not part
     * of simulated results: folded window hits are indistinguishable
     * from tryFastRead() hits in every statistic by design.
     */
    std::uint64_t
    windowHits() const
    {
        std::uint64_t n = dxWindowHits;
        for (const auto &nd : nodes)
            n += nd.fastHitBatch;
        return n;
    }

    /**
     * Feed a primary-hit read serviced on the processor's non-suspending
     * fast path (tryFastRead or store forwarding) to the transaction
     * hook, which those paths bypass. @p t is the issue tick the
     * processor would have charged for a suspending access.
     */
    void
    noteFastReadHit(NodeId node, Tick t)
    {
        if (txnHookFn) [[unlikely]] {
            noteTxn(node, obs::TxnOp::Read, t, t + cfg.lat.readPrimaryHit,
                    ServiceLevel::PrimaryHit, true, nullptr, t);
        }
    }

    /**
     * Shared write under sequential consistency: the caller stalls until
     * outcome.complete. The value commits to the arena at that tick.
     */
    AccessOutcome writeSc(NodeId node, Addr a, std::uint64_t value,
                          unsigned size, Tick t);

    /**
     * Shared write under release consistency: enqueued into the 16-deep
     * write buffer. The caller stalls only until outcome.acceptTick
     * (later than @p t only when the buffer is full). @p release marks
     * the write as a release: it retires only after all earlier writes
     * have completed and their invalidation acks have arrived.
     */
    BufferOutcome writeRc(NodeId node, Addr a, std::uint64_t value,
                          unsigned size, Tick t, bool release,
                          ContextId ctx = 0, bool in_order = false);

    /**
     * Atomic read-modify-write (lock and barrier primitive). The
     * operation commits at outcome.complete; @p on_commit runs at that
     * tick (before any same-tick resume event scheduled afterwards) and
     * receives the *old* value.
     */
    AccessOutcome rmw(NodeId node, Addr a, RmwOp op, std::uint64_t operand,
                      unsigned size, Tick t,
                      std::function<void(std::uint64_t)> on_commit);

    /**
     * Non-binding software prefetch into the 16-deep prefetch buffer.
     * The caller stalls only until outcome.acceptTick.
     */
    BufferOutcome prefetch(NodeId node, Addr a, bool exclusive, Tick t);

    // ------------------------------------------------------------------
    // Queue-based locks (DASH's hardware lock primitive). The home
    // directory keeps a queue of waiting nodes; a release hands the
    // lock to exactly one waiter with a single grant message instead
    // of invalidating every spinning cache.
    // ------------------------------------------------------------------

    /**
     * Acquire the queued lock at @p a. @p on_grant runs at the tick
     * the lock is granted (immediately if free, or when a release
     * hands it over).
     */
    void queuedLockAcquire(NodeId node, Addr a, Tick t,
                           std::function<void(Tick)> on_grant);

    /** Release the queued lock at @p a. */
    void queuedLockRelease(NodeId node, Addr a, Tick t);

    // ------------------------------------------------------------------
    // Spin-wait support (invalidation-based wakeup).
    // ------------------------------------------------------------------

    /**
     * Call @p cb the next time a write or RMW commits to the line
     * containing @p a (one-shot). Used by spinning lock/barrier waiters
     * so the simulator does not execute millions of poll iterations.
     */
    void watchLine(Addr a, std::function<void()> cb);

    /**
     * Hook invoked whenever a fill response installs a line into a
     * primary cache (the cache is locked out for 4 cycles). The
     * processor model uses this to charge "no switch" idle time (and
     * prefetch overhead for prefetch fills, Section 5.1).
     *
     * Hooks are raw function-pointer + context pairs rather than
     * std::function: they sit on the per-transition hot path, and this
     * keeps the disabled case a single predictable null-check branch
     * with no type-erasure machinery behind it.
     */
    using FillHookFn = void (*)(void *ctx, NodeId, Tick, bool prefetch);

    void
    setFillHook(FillHookFn fn, void *ctx)
    {
        fillHookFn = fn;
        fillHookCtx = ctx;
    }

    /**
     * Observability hook (src/obs): fired with a completed TxnRecord
     * for every demand read, write, RMW, and interconnect-walking
     * prefetch the system services. Same devirtualized fn-pointer+ctx
     * pattern as the fill hook; with no sink installed each seam costs
     * one predictable null-check branch.
     */
    using TxnHookFn = void (*)(void *ctx, const obs::TxnRecord &r);

    void
    setTxnHook(TxnHookFn fn, void *ctx)
    {
        txnHookFn = fn;
        txnHookCtx = ctx;
    }

    /**
     * Visit every contention-modeled resource as (node, index-in-node,
     * name, resource). The timeline sink installs per-resource trace
     * hooks through this; index is stable (busReq=0, busReply=1,
     * netOut=2, netIn=3, dir=4, and with the mesh enabled the four
     * directional output links linkE=5, linkW=6, linkN=7, linkS=8).
     */
    template <typename Fn>
    void
    forEachResource(Fn &&cb)
    {
        static constexpr const char *linkName[4] = {"linkE", "linkW",
                                                    "linkN", "linkS"};
        for (NodeId n = 0; n < cfg.numNodes; ++n) {
            cb(n, 0u, "busReq", nodes[n].busReq);
            cb(n, 1u, "busReply", nodes[n].busReply);
            cb(n, 2u, "netOut", nodes[n].netOut);
            cb(n, 3u, "netIn", nodes[n].netIn);
            cb(n, 4u, "dir", nodes[n].dir);
            if (cfg.lat.mesh) {
                for (std::uint32_t d = 0; d < 4; ++d)
                    cb(n, 5u + d, linkName[d], nodes[n].meshLink[d]);
            }
        }
    }

    /**
     * Store-forwarding probe: value of the newest write to @p a still
     * sitting in @p node's write buffer, if any. Reads that hit here
     * complete in one cycle with the buffered value (reads bypass the
     * write buffer under RC, Section 4.1).
     */
    std::optional<std::uint64_t> pendingStoreValue(NodeId node,
                                                   Addr a) const;

    // ------------------------------------------------------------------
    // Protocol-verification interface (src/check). The hook fires after
    // every coherence-state transition has reached a consistent point
    // (directory, cache tags, and MSHRs all updated); the const
    // accessors let a checker cross-validate the structures without
    // friending into the timing model.
    // ------------------------------------------------------------------

    /** Called with the line address after each protocol transition. */
    using CheckHookFn = void (*)(void *ctx, Addr line);

    void
    setCheckHook(CheckHookFn fn, void *ctx)
    {
        checkHookFn = fn;
        checkHookCtx = ctx;
    }

    /** Directory entry for @p line (Uncached default if never touched). */
    DirEntry
    dirSnapshot(Addr line) const
    {
        auto it = directory.find(lineIndex(line));
        return it == directory.end() ? DirEntry{} : it->second;
    }

    /** Secondary-cache state of @p line at @p node. */
    LineState
    secondaryStateOf(NodeId node, Addr line) const
    {
        return nodes[node].secondary.probe(line);
    }

    /** Primary-cache presence of @p line at @p node. */
    bool
    primaryHolds(NodeId node, Addr line) const
    {
        return nodes[node].primary.probe(line);
    }

    /** Outstanding MSHR entry of @p node for @p line, if any. */
    const MshrSet::Entry *
    mshrEntryOf(NodeId node, Addr line) const
    {
        return nodes[node].mshrs.find(line);
    }

    /** A dirty eviction of @p line is still in flight to its home. */
    bool
    writebackPending(Addr line) const
    {
        return pendingWritebacks.count(lineIndex(line)) != 0;
    }

    /** Call @p cb(lineAddr, entry) for every directory entry. */
    template <typename Fn>
    void
    forEachDirLine(Fn &&cb) const
    {
        for (const auto &[idx, e] : directory)
            cb(idx << lineShift, e);
    }

    /** Call @p cb(node, lineAddr, state) for every cached line. */
    template <typename Fn>
    void
    forEachCachedLine(Fn &&cb) const
    {
        for (NodeId n = 0; n < cfg.numNodes; ++n) {
            nodes[n].secondary.forEachLine(
                [&](Addr line, LineState st) { cb(n, line, st); });
        }
    }

    /** Call @p cb(node, lineAddr) for every primary-cache resident. */
    template <typename Fn>
    void
    forEachPrimaryLine(Fn &&cb) const
    {
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            nodes[n].primary.forEachLine([&](Addr line) { cb(n, line); });
    }

    /** Call @p cb(node, lineAddr, entry) for every outstanding MSHR. */
    template <typename Fn>
    void
    forEachMshr(Fn &&cb) const
    {
        for (NodeId n = 0; n < cfg.numNodes; ++n) {
            nodes[n].mshrs.forEach(
                [&](Addr line, const MshrSet::Entry &e) { cb(n, line, e); });
        }
    }

    // Test-only state mutators: injected-violation tests corrupt the
    // protocol state through these and assert the invariant checker
    // fires. Never call them from simulation code.
    DirEntry &debugDirEntry(Addr line) { return dirEntry(line); }
    PrimaryCache &debugPrimary(NodeId n) { return nodes[n].primary; }
    SecondaryCache &debugSecondary(NodeId n) { return nodes[n].secondary; }
    MshrSet &debugMshrs(NodeId n) { return nodes[n].mshrs; }

    // ------------------------------------------------------------------
    // Processor-visible hierarchy state.
    // ------------------------------------------------------------------

    /** Primary cache busy (line fill in progress) until this tick. */
    Tick primaryBusyUntil(NodeId node) const;

    /** Portion of primary-busy time caused by prefetch fills. */
    Tick prefetchFillBusyUntil(NodeId node) const;

    /** Number of write-buffer slots currently in flight. */
    std::size_t writeBufferOccupancy(NodeId node, Tick t);

    /** All of context @p ctx's writes (and their acks) completed by.
     *  Release ordering is per context: the 16-entry write buffer is
     *  shared by the hardware contexts, but a release only waits for
     *  the issuing context's earlier writes. */
    Tick writeDrainTick(NodeId node, ContextId ctx = 0) const;

    /** All of context @p ctx's writes retired by (ownership acquired,
     *  acks not included) - the processor-consistency ordering point. */
    Tick writeAllDoneTick(NodeId node, ContextId ctx = 0) const;

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    struct NodeStats
    {
        HitRate sharedReadHits;   ///< serviced by primary or secondary
        HitRate sharedWriteHits;  ///< retired by an owned secondary line
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t rmws = 0;
        std::uint64_t prefetchesIssued = 0;
        std::uint64_t prefetchesDropped = 0;
        std::uint64_t prefetchesCombined = 0;  ///< demand hit in-flight pf
        std::uint64_t invalidationsReceived = 0;
        SampleStat readMissLatency;  ///< beyond the secondary cache
        std::uint64_t serviceCount[7] = {};    ///< by ServiceLevel
    };

    const NodeStats &stats(NodeId node) const { return nodes[node].stats; }
    NodeStats &stats(NodeId node) { return nodes[node].stats; }

    /** Aggregate hit rates across all nodes. */
    HitRate totalReadHits() const;
    HitRate totalWriteHits() const;

    // ------------------------------------------------------------------
    // Barrier-point checkpointing (core/checkpoint.hh). The Machine
    // parks every context at a barrier completion, then drains the
    // event queue. Once the drain starts, the only remaining events
    // that still mutate protocol state are in-flight dirty-eviction
    // (writeback) arrivals; beginCaptureDrain() switches those to
    // *recording* mode so they can be re-scheduled verbatim at
    // restore instead of mutating the captured directory.
    // ------------------------------------------------------------------

    /** Start recording writeback arrivals instead of applying them. */
    void beginCaptureDrain() { capturing = true; }

    /**
     * Panic unless the drained system is in the quiescent shape a
     * barrier park guarantees: no outstanding MSHRs, no buffered
     * stores awaiting commit, and every queued lock free with no
     * waiters. (In-flight writebacks are legal: they were recorded.)
     */
    void assertQuiescent() const;

    /** Serialize the full memory-system state (post-drain only). */
    void saveState(ckpt::Writer &w) const;

    /** Restore a saveState() image into this fresh system, including
     *  re-scheduling the recorded writeback arrivals. */
    void loadState(ckpt::Reader &r);

    /** Bus utilization of @p node in [0,1] given total elapsed ticks. */
    double busUtilization(NodeId node, Tick elapsed) const;

    /** Limited-pointer entries that overflowed into broadcast mode. */
    std::uint64_t dirOverflowCount() const { return dirOverflows; }

    /** Invalidations sent to nodes that held no copy (inexact-format
     *  broadcast / region-cover cost). */
    std::uint64_t overInvalidationCount() const
    {
        return overInvalidations;
    }

  private:
    struct WriteBufferState
    {
        /** Completion ticks of in-flight entries (slot frees then). */
        std::multiset<Tick> inFlight;
        Tick nextIssueFree = 0;   ///< secondary-cache port serialization
        /** Per-context release-ordering state (max 8 contexts). */
        struct PerCtx
        {
            Tick allDone = 0;   ///< max completion of writes so far
            Tick ackDone = 0;   ///< max ack-completion of writes so far
        };
        std::array<PerCtx, 8> ctx{};

        /** Same-address write ordering (see writeRc). */
        std::unordered_map<Addr, Tick> lastCompletePerAddr;
    };

    struct PrefetchBufferState
    {
        std::multiset<Tick> slots;  ///< slot-release ticks
        Tick nextServiceFree = 0;
    };

    /** A write waiting in the buffer, for store forwarding. */
    struct PendingStore
    {
        std::uint64_t value;
        unsigned size;
        std::uint64_t seq;
    };

    struct Node
    {
        Node(const MemConfig &cfg)
            : primary(cfg.primary), secondary(cfg.secondary),
              mshrs(cfg.mshrs)
        {}

        PrimaryCache primary;
        SecondaryCache secondary;
        MshrSet mshrs;
        WriteBufferState wb;
        PrefetchBufferState pb;
        /**
         * The node bus is split-transaction: the request and reply
         * phases arbitrate separately (a reply booked ~70 cycles out
         * must not block the next request issued now).
         */
        Resource busReq;
        Resource busReply;
        Resource netOut;
        Resource netIn;
        Resource dir;
        /**
         * Directional mesh output links (E=+x, W=-x, N=-y, S=+y), the
         * per-hop FCFS calendars of the contended-mesh model. Idle
         * (never booked) unless the mesh extension is on.
         */
        std::array<Resource, 4> meshLink;
        Tick primaryBusy = 0;
        Tick pfFillBusy = 0;
        std::unordered_map<Addr, PendingStore> pendingStores;
        NodeStats stats;

        // Direct-execution fast-path epochs (see cacheEpoch()).
        std::uint64_t cacheEpoch = 0;
        std::uint64_t storeEpoch = 0;
        std::uint64_t fastHitBatch = 0;
    };

    /** Combined timing result of a directory transaction. */
    struct FillResult
    {
        Tick dataAt;        ///< response data available at requester
        Tick ownAt;         ///< exclusive ownership granted (<= dataAt)
        Tick ackDone;       ///< last invalidation ack received
        ServiceLevel level;
        /**
         * The home granted exclusive ownership to a plain read because
         * no other node held a copy (DASH's read-exclusive reply /
         * MESI E-state). Crucial for write hit rates on node-private
         * data such as LU's owned columns and MP3D's particles.
         */
        bool exclusiveGrant = false;

        // --- latency-attribution inputs (src/obs), filled by the walk ---
        Tick queueing = 0;    ///< max resource-queueing delay on the path
        Tick netCycles = 0;   ///< uncontended network hop cycles
        bool threeHop = false;  ///< remote-dirty owner forward involved
        bool withData = true;   ///< reply carried a cache line
    };

    /**
     * Walk one coherence transaction through the interconnect and the
     * home directory, updating directory state eagerly and invalidating
     * remote copies when @p exclusive. Ownership upgrades of lines the
     * requester already caches carry no data (@p with_data false), so
     * their messages book only control-sized occupancies.
     */
    FillResult walkFill(NodeId req, Addr line, bool exclusive, Tick t,
                        bool with_data = true);

    /**
     * Send invalidations for @p line to every node in @p targets.
     * @p exact is the precise sharer set (minus the requester); any
     * target outside it is an over-invalidation forced by an inexact
     * directory format (broadcast or region cover) and is counted.
     * Over-invalidated targets are charged the full message/ack
     * timing and traffic but their cached state (including the
     * direct-execution cacheEpoch) is left untouched — they never
     * held a copy.
     */
    Tick sendInvalidations(NodeId req, NodeId home, Addr line,
                           const SharerSet &targets,
                           const SharerSet &exact, Tick dir_time);

    /**
     * Nodes an exclusive request by @p req must invalidate, given the
     * directory format: the exact sharers (full bit vector, or a
     * limited-pointer entry that never overflowed), every node
     * (overflowed limited-pointer broadcast), or the region cover of
     * the sharers (coarse vector). Never includes @p req.
     */
    SharerSet invalidationTargets(const DirEntry &e, NodeId req) const;

    /**
     * Can the home prove no node other than @p req holds a copy? Exact
     * under full-bit-vector and non-overflowed limited-pointer; the
     * inexact formats answer conservatively (an overflowed entry or a
     * marked coarse region may hide other sharers), which only costs
     * an exclusive grant, never correctness.
     */
    bool noOtherSharers(const DirEntry &e, NodeId req) const;

    /** Record @p n as a sharer, tracking limited-pointer overflow. */
    void dirAddSharer(DirEntry &e, NodeId n);

    /**
     * Book the directional output link of every node along the
     * dimension-order (X then Y) route from @p from to @p to, hop k at
     * uncontended offset @p offset + meshBase + k*meshPerHop. No-op
     * when the mesh extension is off or the route is empty. Hole
     * positions of a partial grid (numNodes < meshCols * meshRows)
     * cost their hop of latency but have no link calendar to book.
     */
    void meshRoute(PathWalker &w, NodeId from, NodeId to, Tick offset,
                   Tick occupancy);

    /** Handle a dirty eviction: schedule the writeback message. */
    void writebackVictim(NodeId node, Addr victim_line, Tick t);

    /** Directory-side effect of a writeback arrival (the body of the
     *  event writebackVictim schedules; re-scheduled at restore). */
    void applyWritebackArrival(NodeId node, Addr victim_line);

    /** Install @p line into both cache levels of @p node at @p t. */
    void scheduleFill(NodeId node, Addr line, bool exclusive, bool prefetch,
                      Tick t);

    /** Commit a raw value to the arena and wake line watchers. */
    void commitValue(Addr a, std::uint64_t value, unsigned size);

    /** Uncached shared access path (Figure 2 baseline). */
    FillResult walkUncached(NodeId req, Addr a, bool is_write, Tick t);

    /** Record a buffered write for store forwarding until it commits. */
    void trackPendingStore(NodeId node, Addr a, std::uint64_t value,
                           unsigned size, Tick commit_at);

    DirEntry &dirEntry(Addr line);

    /**
     * One-way network latency between two nodes: the uniform paper
     * value, or distance-dependent when the mesh extension is on.
     */
    Tick hopLatency(NodeId from, NodeId to) const;

    /** Directory-side queued-lock state. */
    struct QueuedLock
    {
        bool held = false;
        std::deque<std::function<void(Tick)>> waiters;
    };

    /** Invoke the protocol-verification hook, if installed. With the
     *  checkers disabled this compiles down to one never-taken branch. */
    void
    noteTransition(Addr line)
    {
        if (checkHookFn) [[unlikely]]
            checkHookFn(checkHookCtx, line);
    }

    /**
     * Build and deliver a TxnRecord (cold path; call sites guard on
     * txnHookFn). @p fr is null for accesses that never walked the
     * interconnect (cache hits, combined requests); @p issue is the
     * tick the walk actually started (>= @p start when the request
     * waited for an MSHR, a buffer slot, or same-address ordering).
     */
    void noteTxn(NodeId node, obs::TxnOp op, Tick start, Tick complete,
                 ServiceLevel level, bool hit, const FillResult *fr,
                 Tick issue);

    EventQueue &eq;
    SharedMemory &mem;
    MemConfig cfg;
    std::vector<Node> nodes;

    /** Mesh grid shape, precomputed once (row-major near-square). */
    std::uint32_t meshCols = 1;
    std::uint32_t meshRows = 1;

    /** Directory-format accounting (obs registry, not RunResult). */
    std::uint64_t dirOverflows = 0;
    std::uint64_t overInvalidations = 0;

    /** Host-side window-hit total accumulated by flushDirectExec()
     *  (see windowHits()); never serialized, never in results. */
    std::uint64_t dxWindowHits = 0;
    std::unordered_map<Addr, DirEntry> directory;
    std::unordered_map<Addr, QueuedLock> queuedLocks;
    std::unordered_map<Addr, std::vector<std::function<void()>>> watches;
    FillHookFn fillHookFn = nullptr;
    void *fillHookCtx = nullptr;
    CheckHookFn checkHookFn = nullptr;
    void *checkHookCtx = nullptr;
    TxnHookFn txnHookFn = nullptr;
    void *txnHookCtx = nullptr;
    /** In-flight dirty-eviction messages by line index (ref-counted). */
    std::unordered_map<Addr, unsigned> pendingWritebacks;
    std::uint64_t storeSeq = 0;

    // --- checkpoint capture state ---
    struct WbArrival
    {
        Addr line;    ///< victim line address
        NodeId node;  ///< evicting node
        Tick tick;    ///< original arrival tick
    };
    bool capturing = false;
    /** Writeback arrivals that fired during the capture drain, in
     *  fire order (their relative order is preserved at restore). */
    std::vector<WbArrival> recordedWb;
};

} // namespace dashsim

#endif // MEM_MEM_SYSTEM_HH
