/**
 * @file
 * FCFS resource reservation primitives used to model contention on the
 * node buses, the directory controllers, and the per-node network ports.
 *
 * Each transaction walks a path of resources at fixed uncontended
 * offsets (chosen so the end-to-end latency reproduces Table 1 of the
 * paper exactly when the machine is unloaded); queueing at any resource
 * pushes the rest of the walk back, which is how contention appears.
 */

#ifndef MEM_RESOURCE_HH
#define MEM_RESOURCE_HH

#include <algorithm>
#include <cstdint>
#include <map>

#include "sim/types.hh"

namespace dashsim {

/**
 * A single-server resource with calendar-based slot allocation.
 *
 * acquire() books the earliest free interval at or after the requested
 * tick. Bookings arrive in *host* order, which is not arrival-time
 * order: a transaction books both its near-term request stages and its
 * far-future reply stages in one walk, so a later transaction may
 * legitimately need a slot *between* existing bookings. A simple
 * monotonic horizon would make the far-future booking block the
 * earlier one; the calendar backfills the gap instead, which is the
 * correct first-come-first-served behavior in arrival time.
 *
 * Old intervals are pruned behind a sliding window; bookings can never
 * land before the pruned region.
 */
class Resource
{
  public:
    /**
     * Book the resource.
     * @param at earliest tick the requester can use the resource.
     * @param occupancy cycles the resource stays busy.
     * @return tick at which service actually starts (>= at).
     */
    Tick
    acquire(Tick at, Tick occupancy)
    {
        _requests++;
        _busyCycles += occupancy;
        Tick t = std::max(at, floorTick);
        if (occupancy == 0)
            return t;
        // Clip t forward out of any interval it starts inside.
        auto it = busy.lower_bound(t);
        if (it != busy.begin()) {
            auto prev = std::prev(it);
            if (prev->second > t)
                t = prev->second;
        }
        // Walk forward until [t, t+occupancy) fits before the next
        // interval.
        it = busy.lower_bound(t);
        while (it != busy.end() && it->first < t + occupancy) {
            t = it->second;
            ++it;
        }
        busy.emplace(t, t + occupancy);
        prune(t);
        return t;
    }

    /** Earliest tick after every current booking. */
    Tick
    horizon() const
    {
        return busy.empty() ? floorTick : busy.rbegin()->second;
    }

    /** Total cycles of booked occupancy (for utilization stats). */
    std::uint64_t busyCycles() const { return _busyCycles; }

    /** Total number of bookings. */
    std::uint64_t requests() const { return _requests; }

    void
    reset()
    {
        busy.clear();
        floorTick = 0;
        _busyCycles = 0;
        _requests = 0;
    }

  private:
    void
    prune(Tick now)
    {
        // Keep a generous window behind the newest booking; everything
        // older is frozen (no new booking may land there).
        constexpr Tick window = 4096;
        if (now <= window)
            return;
        Tick cut = now - window;
        while (!busy.empty() && busy.begin()->second <= cut)
            busy.erase(busy.begin());
        floorTick = std::max(floorTick, cut);
    }

    /** Booked intervals, start -> end, non-overlapping. */
    std::map<Tick, Tick> busy;
    Tick floorTick = 0;
    std::uint64_t _busyCycles = 0;
    std::uint64_t _requests = 0;
};

/**
 * Walks a transaction through a sequence of resources.
 *
 * Every stage is booked at its *uncontended* offset from the origin;
 * the transaction's total queueing delay is the maximum queueing delay
 * seen at any stage. This models the stages as a pipeline: a message
 * delayed at one hop overlaps its wait with the queues downstream
 * rather than re-queueing from scratch at each of them (summing the
 * per-stage delays compounds unboundedly once any resource saturates,
 * wasting capacity the real pipelined machine would use). An unloaded
 * machine reproduces the paper's Table 1 latencies exactly.
 */
class PathWalker
{
  public:
    explicit PathWalker(Tick origin) : origin(origin) {}

    /**
     * Visit a resource at uncontended offset @p offset from the origin.
     * @return the tick at which this stage actually starts service.
     */
    Tick
    stage(Resource &res, Tick offset, Tick occupancy)
    {
        Tick ideal = origin + offset;
        Tick start = res.acquire(ideal, occupancy);
        waits = std::max(waits, start - ideal);
        return start;
    }

    /** Completion tick given the uncontended base latency. */
    Tick finish(Tick base) const { return origin + base + waits; }

    /** Queueing delay of the transaction so far (max over stages). */
    Tick queueing() const { return waits; }

  private:
    Tick origin;
    Tick waits = 0;
};

} // namespace dashsim

#endif // MEM_RESOURCE_HH
