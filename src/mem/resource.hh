/**
 * @file
 * FCFS resource reservation primitives used to model contention on the
 * node buses, the directory controllers, and the per-node network ports.
 *
 * Each transaction walks a path of resources at fixed uncontended
 * offsets (chosen so the end-to-end latency reproduces Table 1 of the
 * paper exactly when the machine is unloaded); queueing at any resource
 * pushes the rest of the walk back, which is how contention appears.
 */

#ifndef MEM_RESOURCE_HH
#define MEM_RESOURCE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace dashsim {

/**
 * A single-server resource with calendar-based slot allocation.
 *
 * acquire() books the earliest free interval at or after the requested
 * tick. Bookings arrive in *host* order, which is not arrival-time
 * order: a transaction books both its near-term request stages and its
 * far-future reply stages in one walk, so a later transaction may
 * legitimately need a slot *between* existing bookings. A simple
 * monotonic horizon would make the far-future booking block the
 * earlier one; the calendar backfills the gap instead, which is the
 * correct first-come-first-served behavior in arrival time.
 *
 * The calendar is a small sorted vector of disjoint intervals.
 * Touching intervals are merged on insertion, so under the common
 * back-to-back booking pattern the whole calendar collapses to a
 * handful of entries, the hot append path is O(1), and no per-booking
 * allocation happens (the old std::map paid a node allocation per
 * booking). Merging never changes acquire() results: they depend only
 * on the union of busy ticks, which merging preserves.
 *
 * Old intervals are pruned behind a sliding window; bookings can never
 * land before the pruned region.
 */
class Resource
{
  public:
    /**
     * Observability hook: fired with (id, service start, occupancy) on
     * every booking with nonzero occupancy. Raw fn-pointer + ctx (the
     * PR-4 devirtualized pattern), so the disabled case costs one
     * predictable null-check branch on the acquire hot path.
     */
    using TraceHookFn = void (*)(void *ctx, std::uint32_t id, Tick start,
                                 Tick occupancy);

    void
    setTraceHook(TraceHookFn fn, void *ctx, std::uint32_t id)
    {
        traceHookFn = fn;
        traceHookCtx = ctx;
        traceId = id;
    }

    /**
     * Book the resource.
     * @param at earliest tick the requester can use the resource.
     * @param occupancy cycles the resource stays busy.
     * @return tick at which service actually starts (>= at).
     */
    Tick
    acquire(Tick at, Tick occupancy)
    {
        Tick t = acquireSlot(at, occupancy);
        if (traceHookFn && occupancy != 0) [[unlikely]]
            traceHookFn(traceHookCtx, traceId, t, occupancy);
        return t;
    }

  private:
    Tick
    acquireSlot(Tick at, Tick occupancy)
    {
        _requests++;
        _busyCycles += occupancy;
        Tick t = std::max(at, floorTick);
        if (occupancy == 0)
            return t;
        // Hot path: booking at or after everything already booked.
        if (busy.empty() || t >= busy.back().end) {
            if (!busy.empty() && busy.back().end == t)
                busy.back().end = t + occupancy;
            else
                busy.push_back({t, t + occupancy});
            prune(t);
            return t;
        }
        // Find the first interval that ends after t: everything before
        // it is entirely in the past of t. If that interval covers t,
        // the walk below clips t to its end; then keep jumping until
        // [t, t+occupancy) fits in the gap before the next interval.
        std::size_t i =
            std::upper_bound(busy.begin(), busy.end(), t,
                             [](Tick v, const Interval &iv) {
                                 return v < iv.end;
                             }) -
            busy.begin();
        while (i < busy.size() && busy[i].start < t + occupancy) {
            t = busy[i].end;
            ++i;
        }
        // Insert [t, t+occupancy) at position i, merging with the
        // touching neighbors so the calendar stays compact.
        const Tick end = t + occupancy;
        const bool joinPrev = i > 0 && busy[i - 1].end == t;
        const bool joinNext = i < busy.size() && busy[i].start == end;
        if (joinPrev && joinNext) {
            busy[i - 1].end = busy[i].end;
            busy.erase(busy.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (joinPrev) {
            busy[i - 1].end = end;
        } else if (joinNext) {
            busy[i].start = t;
        } else {
            busy.insert(busy.begin() + static_cast<std::ptrdiff_t>(i),
                        {t, end});
        }
        prune(t);
        return t;
    }

  public:
    /** Earliest tick after every current booking. */
    Tick
    horizon() const
    {
        return busy.empty() ? floorTick : busy.back().end;
    }

    /** Total cycles of booked occupancy (for utilization stats). */
    std::uint64_t busyCycles() const { return _busyCycles; }

    /** Total number of bookings. */
    std::uint64_t requests() const { return _requests; }

    void
    reset()
    {
        busy.clear();
        floorTick = 0;
        _busyCycles = 0;
        _requests = 0;
    }

    /** Checkpoint serialization: the calendar verbatim (interval order
     *  and the prune floor both affect future acquire() results). */
    template <class W>
    void
    saveState(W &w) const
    {
        w.u64(floorTick);
        w.u64(_busyCycles);
        w.u64(_requests);
        w.u64(busy.size());
        for (const Interval &iv : busy) {
            w.u64(iv.start);
            w.u64(iv.end);
        }
    }

    template <class R>
    void
    loadState(R &r)
    {
        floorTick = r.u64();
        _busyCycles = r.u64();
        _requests = r.u64();
        busy.resize(r.u64());
        for (Interval &iv : busy) {
            iv.start = r.u64();
            iv.end = r.u64();
        }
    }

  private:
    struct Interval
    {
        Tick start;
        Tick end;
    };

    void
    prune(Tick now)
    {
        // Keep a generous window behind the newest booking; everything
        // older is frozen (no new booking may land there).
        constexpr Tick window = 4096;
        if (now <= window)
            return;
        Tick cut = now - window;
        std::size_t drop = 0;
        while (drop < busy.size() && busy[drop].end <= cut)
            ++drop;
        if (drop)
            busy.erase(busy.begin(),
                       busy.begin() + static_cast<std::ptrdiff_t>(drop));
        floorTick = std::max(floorTick, cut);
    }

    /** Booked intervals, sorted by start, disjoint and non-touching. */
    std::vector<Interval> busy;
    Tick floorTick = 0;
    std::uint64_t _busyCycles = 0;
    std::uint64_t _requests = 0;
    TraceHookFn traceHookFn = nullptr;
    void *traceHookCtx = nullptr;
    std::uint32_t traceId = 0;
};

/**
 * Walks a transaction through a sequence of resources.
 *
 * Every stage is booked at its *uncontended* offset from the origin;
 * the transaction's total queueing delay is the maximum queueing delay
 * seen at any stage. This models the stages as a pipeline: a message
 * delayed at one hop overlaps its wait with the queues downstream
 * rather than re-queueing from scratch at each of them (summing the
 * per-stage delays compounds unboundedly once any resource saturates,
 * wasting capacity the real pipelined machine would use). An unloaded
 * machine reproduces the paper's Table 1 latencies exactly.
 */
class PathWalker
{
  public:
    explicit PathWalker(Tick origin) : origin(origin) {}

    /**
     * Visit a resource at uncontended offset @p offset from the origin.
     * @return the tick at which this stage actually starts service.
     */
    Tick
    stage(Resource &res, Tick offset, Tick occupancy)
    {
        Tick ideal = origin + offset;
        Tick start = res.acquire(ideal, occupancy);
        waits = std::max(waits, start - ideal);
        return start;
    }

    /** Completion tick given the uncontended base latency. */
    Tick finish(Tick base) const { return origin + base + waits; }

    /** Queueing delay of the transaction so far (max over stages). */
    Tick queueing() const { return waits; }

  private:
    Tick origin;
    Tick waits = 0;
};

} // namespace dashsim

#endif // MEM_RESOURCE_HH
