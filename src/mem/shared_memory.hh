/**
 * @file
 * The simulated distributed shared memory.
 *
 * A flat byte arena backs all shared data. Pages are mapped to home
 * nodes either round-robin (the default placement policy, Section 2.3)
 * or explicitly node-local when an application gives a placement
 * directive (as MP3D does for particles and LU does for owned columns).
 */

#ifndef MEM_SHARED_MEMORY_HH
#define MEM_SHARED_MEMORY_HH

#include <bit>
#include <cstring>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dashsim {

/**
 * Byte-addressed shared memory with per-page home-node assignment.
 *
 * Address 0 is reserved (never allocated) so that 0 can serve as a
 * null address in applications.
 */
class SharedMemory
{
  public:
    explicit SharedMemory(std::uint32_t num_nodes)
        : numNodes(num_nodes)
    {
        fatal_if(num_nodes == 0, "SharedMemory needs at least one node");
        // Reserve page 0 so address 0 stays invalid.
        arena.resize(pageBytes, 0);
        pageHome.push_back(0);
        brk = pageBytes;
    }

    /**
     * Allocate @p bytes with round-robin page placement.
     * Allocations are line-aligned so distinct objects never falsely
     * share a cache line unless the caller packs them deliberately.
     */
    Addr
    allocRoundRobin(std::size_t bytes, std::size_t align = lineBytes)
    {
        return allocImpl(bytes, align, invalidNode);
    }

    /** Allocate @p bytes entirely on @p node (placement directive). */
    Addr
    allocLocal(std::size_t bytes, NodeId node, std::size_t align = lineBytes)
    {
        panic_if(node >= numNodes, "allocLocal: bad node %u", node);
        return allocImpl(bytes, align, node);
    }

    /** Home node of the page containing @p a. */
    NodeId
    homeOf(Addr a) const
    {
        Addr page = a / pageBytes;
        panic_if(page >= pageHome.size(), "homeOf: unmapped address %llu",
                 static_cast<unsigned long long>(a));
        return pageHome[page];
    }

    /** True if @p a lies inside an allocated region. */
    bool mapped(Addr a) const { return a != 0 && a < brk; }

    /** Total allocated bytes (shared-data footprint, Table 2). */
    std::size_t footprint() const { return brk - pageBytes; }

    /** Typed load. T must be trivially copyable. */
    template <typename T>
    T
    load(Addr a) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        panic_if(a + sizeof(T) > arena.size(), "load out of bounds");
        T v;
        std::memcpy(&v, arena.data() + a, sizeof(T));
        return v;
    }

    /** Typed store. */
    template <typename T>
    void
    store(Addr a, T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        panic_if(a + sizeof(T) > arena.size(), "store out of bounds");
        std::memcpy(arena.data() + a, &v, sizeof(T));
    }

    /** Raw load of @p size bytes (1, 2, 4, or 8) zero-extended. */
    std::uint64_t
    loadRaw(Addr a, unsigned size) const
    {
        std::uint64_t v = 0;
        panic_if(a + size > arena.size(), "loadRaw out of bounds");
        std::memcpy(&v, arena.data() + a, size);
        return v;
    }

    /** Raw store of the low @p size bytes of @p v. */
    void
    storeRaw(Addr a, std::uint64_t v, unsigned size)
    {
        panic_if(a + size > arena.size(), "storeRaw out of bounds");
        std::memcpy(arena.data() + a, &v, size);
    }

    std::uint32_t nodes() const { return numNodes; }

    // ------------------------------------------------------------------
    // Trace support (tango/trace.hh).
    // ------------------------------------------------------------------

    /** Page-home table (index 0 is the reserved page). */
    const std::vector<NodeId> &pageHomesSnapshot() const
    {
        return pageHome;
    }

    /** Copy of the allocated arena contents past the reserved page. */
    std::vector<std::uint8_t>
    imageSnapshot() const
    {
        return {arena.begin() + pageBytes,
                arena.begin() + static_cast<std::ptrdiff_t>(brk)};
    }

    /**
     * Recreate the page layout of a recorded trace on a fresh arena:
     * map every page with the home recorded at trace time and set the
     * allocation break to @p footprint bytes past the reserved page.
     * Only valid before any other allocation.
     */
    void
    mirrorPages(const std::vector<NodeId> &homes, std::uint64_t footprint)
    {
        panic_if(brk != pageBytes, "mirrorPages on a non-fresh arena");
        panic_if(homes.empty() || homes.size() * pageBytes <
                                      pageBytes + footprint,
                 "trace page table does not cover its footprint");
        for (std::size_t p = 1; p < homes.size(); ++p) {
            fatal_if(homes[p] >= numNodes,
                     "trace was recorded on a larger machine");
            pageHome.push_back(homes[p]);
        }
        arena.resize(pageHome.size() * pageBytes, 0);
        brk = pageBytes + footprint;
    }

    /** Restore arena contents captured by imageSnapshot(). */
    void
    restoreImage(const std::vector<std::uint8_t> &image)
    {
        panic_if(pageBytes + image.size() > arena.size(),
                 "trace image larger than the mirrored arena");
        std::memcpy(arena.data() + pageBytes, image.data(), image.size());
    }

  private:
    Addr
    allocImpl(std::size_t bytes, std::size_t align, NodeId fixed_home)
    {
        panic_if(bytes == 0, "zero-byte allocation");
        panic_if(align == 0 || (align & (align - 1)) != 0,
                 "alignment must be a power of two");
        Addr a = (brk + align - 1) & ~static_cast<Addr>(align - 1);
        // A placement directive must not inherit the tail of a page
        // that already belongs to another node: start on a fresh page
        // unless the current page already has the requested home.
        if (fixed_home != invalidNode) {
            Addr page = a / pageBytes;
            if (page < pageHome.size() && pageHome[page] != fixed_home)
                a = (page + 1) * pageBytes;
        }
        Addr end = a + bytes;
        // Map any new pages the allocation touches.
        while (pageHome.size() * pageBytes < end) {
            NodeId home = fixed_home != invalidNode
                              ? fixed_home
                              : static_cast<NodeId>(nextRrPage++ % numNodes);
            pageHome.push_back(home);
        }
        if (arena.size() < pageHome.size() * pageBytes)
            arena.resize(pageHome.size() * pageBytes, 0);
        brk = end;
        return a;
    }

    std::uint32_t numNodes;
    std::vector<std::uint8_t> arena;
    std::vector<NodeId> pageHome;
    Addr brk = 0;
    std::uint64_t nextRrPage = 0;
};

} // namespace dashsim

#endif // MEM_SHARED_MEMORY_HH
