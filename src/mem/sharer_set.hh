/**
 * @file
 * Dynamically sized sharer set for directory entries.
 *
 * The original directory kept sharers in a raw std::uint32_t bitmask,
 * which capped the machine at 32 nodes (and made `1u << node` shift
 * overflow a latent bug at the boundary). SharerSet is a bitset that
 * grows with the node count: the first 64 nodes live in an inline
 * word, so machines up to 64 nodes never allocate per entry; larger
 * machines spill into a vector of additional words.
 *
 * The set always records the *exact* sharers. The scalable directory
 * formats (limited-pointer Dir_i_B, coarse vector) are layered on top
 * by the memory system: they only change which nodes get invalidated
 * and when an overflow/over-invalidation is counted, never what the
 * precise set is. That is semantically faithful because sharer sets
 * only grow between full resets (there are no selective removals), so
 * "overflowed i pointers" and "region cover of the exact set" are
 * functions of the exact set plus one sticky flag.
 */

#ifndef MEM_SHARER_SET_HH
#define MEM_SHARER_SET_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dashsim {

class SharerSet
{
  public:
    void
    add(NodeId n)
    {
        if (n < 64) {
            w0 |= std::uint64_t{1} << n;
            return;
        }
        std::size_t idx = n / 64 - 1;
        if (idx >= rest.size())
            rest.resize(idx + 1, 0);
        rest[idx] |= std::uint64_t{1} << (n % 64);
    }

    void
    remove(NodeId n)
    {
        if (n < 64) {
            w0 &= ~(std::uint64_t{1} << n);
            return;
        }
        std::size_t idx = n / 64 - 1;
        if (idx < rest.size())
            rest[idx] &= ~(std::uint64_t{1} << (n % 64));
    }

    bool
    test(NodeId n) const
    {
        if (n < 64)
            return (w0 >> n) & 1;
        std::size_t idx = n / 64 - 1;
        return idx < rest.size() && ((rest[idx] >> (n % 64)) & 1);
    }

    void
    clear()
    {
        w0 = 0;
        rest.clear();
    }

    bool
    empty() const
    {
        if (w0)
            return false;
        for (std::uint64_t w : rest)
            if (w)
                return false;
        return true;
    }

    std::uint32_t
    count() const
    {
        std::uint32_t c = popcount(w0);
        for (std::uint64_t w : rest)
            c += popcount(w);
        return c;
    }

    /** True when the set is empty or contains only @p n. */
    bool
    noneExcept(NodeId n) const
    {
        for (std::size_t i = 0; i < 1 + rest.size(); ++i) {
            std::uint64_t w = word(i);
            if (n / 64 == i)
                w &= ~(std::uint64_t{1} << (n % 64));
            if (w)
                return false;
        }
        return true;
    }

    /** Visit every member in ascending node order. */
    template <typename Fn>
    void
    forEach(Fn &&cb) const
    {
        for (std::size_t i = 0; i < 1 + rest.size(); ++i) {
            std::uint64_t w = word(i);
            while (w) {
                std::uint64_t bit = w & (~w + 1);
                cb(static_cast<NodeId>(i * 64 + bitIndex(bit)));
                w ^= bit;
            }
        }
    }

    bool
    operator==(const SharerSet &o) const
    {
        std::size_t n = std::max(rest.size(), o.rest.size()) + 1;
        for (std::size_t i = 0; i < n; ++i)
            if (word(i) != o.word(i))
                return false;
        return true;
    }

    bool operator!=(const SharerSet &o) const { return !(*this == o); }

    /**
     * Hex rendering for diagnostics, most-significant word first,
     * matching the old "%08x" formatting for sets confined to the
     * low 32 nodes.
     */
    std::string
    hex() const
    {
        static const char *digits = "0123456789abcdef";
        std::size_t words = 1 + rest.size();
        // Drop all-zero high words, but always print at least 8 digits.
        while (words > 1 && word(words - 1) == 0)
            --words;
        std::string s;
        for (std::size_t i = words; i-- > 0;) {
            std::uint64_t w = word(i);
            int top = (i + 1 == words && i == 0 && (w >> 32) == 0) ? 7
                                                                   : 15;
            for (int d = top; d >= 0; --d)
                s += digits[(w >> (4 * d)) & 0xf];
        }
        return s;
    }

    /** Checkpoint serialization: canonical word-count + words. */
    template <class W>
    void
    saveState(W &w) const
    {
        std::size_t words = 1 + rest.size();
        while (words > 1 && word(words - 1) == 0)
            --words;
        w.u32(static_cast<std::uint32_t>(words));
        for (std::size_t i = 0; i < words; ++i)
            w.u64(word(i));
    }

    template <class R>
    void
    loadState(R &r)
    {
        clear();
        std::uint32_t words = r.u32();
        for (std::uint32_t i = 0; i < words; ++i) {
            std::uint64_t w = r.u64();
            if (i == 0)
                w0 = w;
            else {
                rest.resize(i, 0);
                rest[i - 1] = w;
            }
        }
    }

  private:
    std::uint64_t
    word(std::size_t i) const
    {
        if (i == 0)
            return w0;
        return i - 1 < rest.size() ? rest[i - 1] : 0;
    }

    static std::uint32_t
    popcount(std::uint64_t w)
    {
        std::uint32_t c = 0;
        while (w) {
            w &= w - 1;
            ++c;
        }
        return c;
    }

    static std::uint32_t
    bitIndex(std::uint64_t bit)
    {
        std::uint32_t i = 0;
        while (bit >>= 1)
            ++i;
        return i;
    }

    std::uint64_t w0 = 0;               ///< nodes 0..63 (no allocation)
    std::vector<std::uint64_t> rest;    ///< nodes 64.. in 64-node words
};

} // namespace dashsim

#endif // MEM_SHARER_SET_HH
