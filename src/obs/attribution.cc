#include "obs/attribution.hh"

#include <string>

#include "obs/registry.hh"
#include "sim/logging.hh"

namespace dashsim::obs {

void
Attribution::record(const TxnRecord &r)
{
    panic_if(r.complete < r.start,
             "txn completes before it starts (%llu < %llu)",
             static_cast<unsigned long long>(r.complete),
             static_cast<unsigned long long>(r.start));
    if (checkConservation) {
        Tick total = r.complete - r.start;
        panic_if(r.phaseSum() != total,
                 "txn phase-conservation violation: node %u %s.%s phases "
                 "sum to %llu but latency is %llu",
                 r.node, txnOpName(r.op), serviceLevelName(r.level),
                 static_cast<unsigned long long>(r.phaseSum()),
                 static_cast<unsigned long long>(total));
    }
    ClassStats &c = classes[index(r.op, r.level)];
    c.latency.sample(static_cast<double>(r.complete - r.start));
    for (std::size_t p = 0; p < numTxnPhases; ++p)
        c.phaseCycles[p] += r.phases[p];
    ++count;
}

void
Attribution::registerInto(Registry &reg) const
{
    for (std::size_t oi = 0; oi < numTxnOps; ++oi) {
        for (std::size_t li = 0; li < numServiceLevels; ++li) {
            const ClassStats &c =
                classes[oi * numServiceLevels + li];
            if (!c.latency.count())
                continue;
            std::string base =
                std::string("attrib.") +
                txnOpName(static_cast<TxnOp>(oi)) + "." +
                serviceLevelName(static_cast<ServiceLevel>(li));
            reg.set(base + ".count", c.latency.count());
            reg.set(base + ".cycles",
                    static_cast<std::uint64_t>(c.latency.sum()));
            reg.set(base + ".median",
                    static_cast<std::uint64_t>(c.latency.median()));
            for (std::size_t p = 0; p < numTxnPhases; ++p) {
                if (!c.phaseCycles[p])
                    continue;
                reg.set(base + ".phase." +
                            txnPhaseName(static_cast<TxnPhase>(p)),
                        c.phaseCycles[p]);
            }
        }
    }
    reg.set("attrib.total", count);
}

} // namespace dashsim::obs
