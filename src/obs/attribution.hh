/**
 * @file
 * Per-transaction latency attribution: aggregates TxnRecords into
 * per-class SampleStat histograms (one per TxnOp x ServiceLevel pair)
 * plus per-phase cycle totals, so an unloaded machine's medians
 * reproduce Table 1 of the paper directly (read.local == 26,
 * read.home == 72, read.remote_dirty == 90, ...) and a loaded one
 * shows exactly which phase absorbed the contention.
 *
 * Also hosts the per-transaction conservation assertion: under
 * DASHSIM_CHECK every record's phase vector must sum to exactly
 * `complete - start`.
 */

#ifndef OBS_ATTRIBUTION_HH
#define OBS_ATTRIBUTION_HH

#include <array>
#include <cstdint>

#include "obs/txn.hh"
#include "sim/stats.hh"

namespace dashsim::obs {

class Registry;

class Attribution
{
  public:
    /** Per (op, service-level) class aggregate. */
    struct ClassStats
    {
        SampleStat latency;  ///< total latency histogram (Table 1)
        std::array<std::uint64_t, numTxnPhases> phaseCycles{};

        std::uint64_t
        phase(TxnPhase p) const
        {
            return phaseCycles[static_cast<std::size_t>(p)];
        }
    };

    /**
     * @param check_conservation assert per-record phase conservation
     *        (panic on the first violation).
     */
    explicit Attribution(bool check_conservation)
        : checkConservation(check_conservation)
    {}

    /** Fold one transaction into its class aggregate. */
    void record(const TxnRecord &r);

    const ClassStats &
    stats(TxnOp op, ServiceLevel level) const
    {
        return classes[index(op, level)];
    }

    /** Total transactions recorded. */
    std::uint64_t recorded() const { return count; }

    /**
     * Register every non-empty class into @p reg under
     * "attrib.<op>.<level>.{count,cycles,phase.<name>}".
     */
    void registerInto(Registry &reg) const;

  private:
    static std::size_t
    index(TxnOp op, ServiceLevel level)
    {
        return static_cast<std::size_t>(op) * numServiceLevels +
               static_cast<std::size_t>(level);
    }

    std::array<ClassStats, numTxnOps * numServiceLevels> classes{};
    std::uint64_t count = 0;
    bool checkConservation;
};

} // namespace dashsim::obs

#endif // OBS_ATTRIBUTION_HH
