#include "obs/obs_config.hh"

#include <atomic>
#include <cstdlib>

namespace dashsim::obs {

namespace {

/**
 * One-shot environment claim. The value is read once (function-local
 * static init is thread-safe, and getenv itself is not guaranteed safe
 * against concurrent environment mutation); the atomic hands it to
 * exactly one caller.
 */
std::string
claimOnce(const std::string &value, std::atomic<bool> &claimed)
{
    if (value.empty() || claimed.exchange(true))
        return {};
    return value;
}

std::string
envString(const char *var)
{
    const char *e = std::getenv(var);
    return e ? std::string(e) : std::string();
}

} // namespace

std::string
claimTimelineEnv()
{
    static const std::string value = envString("DASHSIM_TIMELINE");
    static std::atomic<bool> claimed{false};
    return claimOnce(value, claimed);
}

std::string
claimRegistryEnv()
{
    static const std::string value = envString("DASHSIM_REGISTRY");
    static std::atomic<bool> claimed{false};
    return claimOnce(value, claimed);
}

std::uint64_t
ObsConfig::defaultTimelineTxnCap()
{
    static const std::uint64_t cap = [] {
        if (const char *e = std::getenv("DASHSIM_TIMELINE_TXNS")) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(e, &end, 10);
            if (end != e && *end == '\0')
                return static_cast<std::uint64_t>(v);
        }
        return std::uint64_t{100000};
    }();
    return cap;
}

} // namespace dashsim::obs
