/**
 * @file
 * Configuration for the simulated-time observability layer (src/obs):
 * per-transaction latency attribution, the Chrome-trace timeline sink,
 * and the hierarchical counter registry.
 *
 * All three are off by default and cost nothing when disabled (the
 * hooks follow the devirtualized fn-pointer+ctx pattern, so a disabled
 * layer is one predictable null-check branch on each seam).
 */

#ifndef OBS_OBS_CONFIG_HH
#define OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

namespace dashsim::obs {

/** Knobs for the observability layer owned by a Machine. */
struct ObsConfig
{
    /**
     * Record a per-transaction latency attribution (phase vector +
     * per-class histograms). Implied by a timeline or registry path,
     * and by CheckConfig::conservation (the per-transaction
     * conservation assertion lives in the attribution recorder).
     */
    bool attribution = false;

    /**
     * Write a Chrome trace-event JSON timeline here at the end of the
     * run (loadable in chrome://tracing or Perfetto). Empty = off.
     * When empty, the first Machine constructed in the process claims
     * the DASHSIM_TIMELINE environment variable, so batch runs write
     * exactly one timeline.
     */
    std::string timelinePath;

    /**
     * Write the hierarchical counter registry as JSON here at the end
     * of the run. Empty = off; the first Machine claims
     * DASHSIM_REGISTRY the same way.
     */
    std::string registryPath;

    /**
     * Cap on the number of per-transaction spans emitted into the
     * timeline (CPU and resource tracks are not capped). The first
     * `timelineTxnCap` transactions in deterministic issue order are
     * kept; the rest are counted and dropped. Overridable with
     * DASHSIM_TIMELINE_TXNS.
     */
    std::uint64_t timelineTxnCap = defaultTimelineTxnCap();

    static std::uint64_t defaultTimelineTxnCap();
};

/**
 * Claim the DASHSIM_TIMELINE path for this caller. The first call in
 * the process returns the value (empty if unset); every later call
 * returns empty, so concurrent Machines in a batch never race to write
 * the same file. Thread-safe.
 */
std::string claimTimelineEnv();

/** Claim the DASHSIM_REGISTRY path (same once-per-process contract). */
std::string claimRegistryEnv();

} // namespace dashsim::obs

#endif // OBS_OBS_CONFIG_HH
