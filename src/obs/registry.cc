#include "obs/registry.hh"

#include <vector>

#include "sim/logging.hh"

namespace dashsim::obs {

namespace {

std::vector<std::string>
splitDots(const std::string &name)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    for (;;) {
        std::size_t dot = name.find('.', pos);
        if (dot == std::string::npos) {
            parts.push_back(name.substr(pos));
            return parts;
        }
        parts.push_back(name.substr(pos, dot - pos));
        pos = dot + 1;
    }
}

void
printIndent(std::FILE *f, std::size_t depth)
{
    std::fprintf(f, "%*s", static_cast<int>(2 * (depth + 1)), "");
}

} // namespace

void
Registry::writeJson(std::FILE *f) const
{
    // The map iterates in lexicographic name order, so sibling groups
    // are contiguous: keep a stack of open objects, close down to the
    // common prefix of each successive name, open the new groups, emit
    // the leaf. first[d] tracks whether the next child at depth d needs
    // a separating comma.
    std::vector<std::string> open;
    std::vector<bool> first{true};

    auto child = [&](std::size_t depth) {
        if (first[depth])
            first[depth] = false;
        else
            std::fputs(",", f);
        std::fputs("\n", f);
        printIndent(f, depth);
    };

    std::fputs("{", f);
    for (const auto &[name, value] : counters) {
        std::vector<std::string> parts = splitDots(name);
        std::size_t prefix = 0;
        while (prefix < open.size() && prefix + 1 < parts.size() &&
               open[prefix] == parts[prefix])
            ++prefix;
        while (open.size() > prefix) {
            open.pop_back();
            first.pop_back();
            std::fputs("\n", f);
            printIndent(f, open.size());
            std::fputs("}", f);
        }
        for (std::size_t i = prefix; i + 1 < parts.size(); ++i) {
            child(open.size());
            std::fprintf(f, "\"%s\": {", parts[i].c_str());
            open.push_back(parts[i]);
            first.push_back(true);
        }
        child(open.size());
        std::fprintf(f, "\"%s\": %llu", parts.back().c_str(),
                     static_cast<unsigned long long>(value));
    }
    while (!open.empty()) {
        open.pop_back();
        first.pop_back();
        std::fputs("\n", f);
        printIndent(f, open.size());
        std::fputs("}", f);
    }
    std::fputs("\n}\n", f);
}

bool
Registry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", path.c_str());
        return false;
    }
    writeJson(f);
    std::fclose(f);
    return true;
}

} // namespace dashsim::obs
