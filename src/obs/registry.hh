/**
 * @file
 * Hierarchical counter registry: a flat map of dotted names (e.g.
 * "p3.l2.miss.remote_dirty") to 64-bit counters, dumped as nested JSON
 * so the dotted segments become object levels.
 *
 * The registry is populated once at the end of a run from the
 * machine / processor / memory-system statistics; it is a reporting
 * structure, not a hot-path counter store.
 */

#ifndef OBS_REGISTRY_HH
#define OBS_REGISTRY_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

namespace dashsim::obs {

class Registry
{
  public:
    /** Add @p v to the counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t v)
    {
        counters[name] += v;
    }

    /** Set the counter @p name to @p v. */
    void
    set(const std::string &name, std::uint64_t v)
    {
        counters[name] = v;
    }

    /** Value of @p name (0 if absent). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters.count(name) != 0;
    }

    std::size_t size() const { return counters.size(); }

    /** Visit every counter in sorted (dotted-name) order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[k, v] : counters)
            fn(k, v);
    }

    /**
     * Emit the registry as nested JSON: each dotted segment opens an
     * object level, the final segment is the key. Names are emitted in
     * sorted order, so the output is deterministic. A name must not be
     * both a leaf and a group prefix ("a" alongside "a.b").
     */
    void writeJson(std::FILE *f) const;

    /** writeJson to @p path; returns false (with a warn) on I/O error. */
    bool writeJson(const std::string &path) const;

  private:
    std::map<std::string, std::uint64_t> counters;
};

} // namespace dashsim::obs

#endif // OBS_REGISTRY_HH
