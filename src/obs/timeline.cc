#include "obs/timeline.hh"

#include <algorithm>
#include <array>

#include "cpu/processor.hh"
#include "sim/logging.hh"

namespace dashsim::obs {

const char *
Timeline::bucketName(Bucket b)
{
    switch (b) {
      case Bucket::Busy:
        return "busy";
      case Bucket::Read:
        return "read_stall";
      case Bucket::Write:
        return "write_stall";
      case Bucket::Sync:
        return "sync_stall";
      case Bucket::PfOverhead:
        return "pf_overhead";
      case Bucket::Switching:
        return "switching";
      case Bucket::AllIdle:
        return "all_idle";
      case Bucket::NoSwitch:
        return "no_switch";
      default:
        return "?";
    }
}

namespace {

/** "read.local"-style span names, composed once (static lifetime). */
const char *
txnName(TxnOp op, ServiceLevel level)
{
    static const auto names = [] {
        std::array<std::array<std::string, numServiceLevels>, numTxnOps>
            t;
        for (std::size_t o = 0; o < numTxnOps; ++o) {
            for (std::size_t l = 0; l < numServiceLevels; ++l) {
                t[o][l] =
                    std::string(txnOpName(static_cast<TxnOp>(o))) + "." +
                    serviceLevelName(static_cast<ServiceLevel>(l));
            }
        }
        return t;
    }();
    return names[static_cast<std::size_t>(op)]
                [static_cast<std::size_t>(level)]
                    .c_str();
}

} // namespace

void
Timeline::nameProcess(std::uint32_t pid, std::string name)
{
    procNames.emplace_back(pid, std::move(name));
}

void
Timeline::nameThread(std::uint32_t pid, std::uint32_t tid,
                     std::string name)
{
    threadNames.emplace_back((std::uint64_t{pid} << 32) | tid,
                             std::move(name));
}

void
Timeline::cpuSpan(NodeId node, std::uint32_t lane, Bucket b, Tick from,
                  Tick to)
{
    if (to <= from)
        return;
    span(cpuPid(node), lane, from, to - from, bucketName(b));
}

void
Timeline::txnSpan(const TxnRecord &r)
{
    if (r.complete <= r.start)
        return;
    if (txnCount >= txnCap) {
        ++txnDrops;
        return;
    }
    ++txnCount;
    span(cpuPid(r.node), txnTid, r.start, r.complete - r.start,
         txnName(r.op, r.level));
}

void
Timeline::writeJson(std::FILE *f)
{
    // Sort each track into timestamp order (Resource calendars backfill,
    // so bookings do not arrive in ts order); the stable sort keeps
    // deterministic insertion order for identical keys.
    std::stable_sort(events.begin(), events.end(),
                     [](const Ev &a, const Ev &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.dur < b.dur;
                     });

    std::fputs("{\"traceEvents\":[", f);
    bool first = true;
    auto sep = [&] {
        if (!first)
            std::fputs(",\n", f);
        else
            std::fputs("\n", f);
        first = false;
    };
    for (const auto &[pid, name] : procNames) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     pid, name.c_str());
    }
    for (const auto &[key, name] : threadNames) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xffffffffu),
                     name.c_str());
    }
    for (const Ev &e : events) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
                     "\"dur\":%llu,\"name\":\"%s\"}",
                     e.pid, e.tid,
                     static_cast<unsigned long long>(e.ts),
                     static_cast<unsigned long long>(e.dur), e.name);
    }
    if (txnDrops) {
        // Record the truncation so a capped trace is never mistaken
        // for a complete one.
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":0,\"name\":\"dashsim\","
                     "\"args\":{\"txn_spans_dropped\":%llu}}",
                     static_cast<unsigned long long>(txnDrops));
    }
    std::fputs("\n]}\n", f);
}

bool
Timeline::write()
{
    std::FILE *f = std::fopen(_path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", _path.c_str());
        return false;
    }
    writeJson(f);
    std::fclose(f);
    return true;
}

} // namespace dashsim::obs
