/**
 * @file
 * Simulated-time timeline sink emitting Chrome trace-event JSON
 * (loadable in chrome://tracing or https://ui.perfetto.dev).
 *
 * Track layout:
 *  - one process per CPU ("cpu<N>", pid 1+N) with a scheduler lane
 *    (tid 0: switching / all-idle spans), one lane per hardware
 *    context (tid 1+ctx: busy / stalled-by-reason / no-switch spans,
 *    fed by the processor's charge hook), and a transaction lane
 *    (tid 99: one span per memory transaction, capped);
 *  - one process per memory node ("mem<N>", pid 1000+N) with one lane
 *    per FCFS resource (busReq / busReply / netOut / netIn / dir),
 *    fed by the Resource trace hook.
 *
 * Spans are buffered during the run and sorted by (pid, tid, ts, dur)
 * at write time: Resource bookings legitimately arrive out of
 * timestamp order (the calendar backfills gaps), so sorting is what
 * guarantees per-track timestamp monotonicity in the emitted JSON.
 */

#ifndef OBS_TIMELINE_HH
#define OBS_TIMELINE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/txn.hh"
#include "sim/types.hh"

namespace dashsim {
enum class Bucket : std::uint8_t;
} // namespace dashsim

namespace dashsim::obs {

class Timeline
{
  public:
    /** Scheduler lane of a CPU track (switching / all-idle spans). */
    static constexpr std::uint32_t schedTid = 0;
    /** Transaction lane of a CPU track. */
    static constexpr std::uint32_t txnTid = 99;
    /** Resources per memory node (busReq/busReply/netOut/netIn/dir,
     *  plus the four mesh links when the mesh extension is on). */
    static constexpr std::uint32_t resourcesPerNode = 16;

    static std::uint32_t cpuPid(NodeId n) { return 1 + n; }
    static std::uint32_t memPid(NodeId n) { return 1000 + n; }

    Timeline(std::string path, std::uint64_t txn_cap)
        : _path(std::move(path)), txnCap(txn_cap)
    {}

    const std::string &path() const { return _path; }

    /** Name the process @p pid ("cpu3", "mem3"). */
    void nameProcess(std::uint32_t pid, std::string name);

    /** Name thread @p tid of process @p pid ("ctx0", "dir", ...). */
    void nameThread(std::uint32_t pid, std::uint32_t tid,
                    std::string name);

    /** Raw complete-event span. @p name must outlive the Timeline. */
    void
    span(std::uint32_t pid, std::uint32_t tid, Tick ts, Tick dur,
         const char *name)
    {
        if (dur == 0)
            return;
        events.push_back(Ev{pid, tid, ts, dur, name});
    }

    /**
     * One processor accounting charge: @p lane is 0 for the scheduler
     * lane, 1+ctx for a context lane.
     */
    void cpuSpan(NodeId node, std::uint32_t lane, Bucket b, Tick from,
                 Tick to);

    /** One resource booking; @p res_id = node * resourcesPerNode + idx. */
    void
    resSpan(std::uint32_t res_id, Tick start, Tick occupancy)
    {
        span(memPid(res_id / resourcesPerNode),
             res_id % resourcesPerNode, start, occupancy, "busy");
    }

    /** One transaction span on the requester's txn lane (capped). */
    void txnSpan(const TxnRecord &r);

    std::uint64_t txnRecorded() const { return txnCount; }
    std::uint64_t txnDropped() const { return txnDrops; }
    std::size_t spanCount() const { return events.size(); }

    /** Sort and emit the trace JSON to @p f. */
    void writeJson(std::FILE *f);

    /** writeJson to path(); returns false (with a warn) on I/O error. */
    bool write();

    /** Display label of an accounting bucket. */
    static const char *bucketName(Bucket b);

  private:
    struct Ev
    {
        std::uint32_t pid;
        std::uint32_t tid;
        Tick ts;
        Tick dur;
        const char *name;  ///< static-lifetime string
    };

    std::vector<Ev> events;
    std::vector<std::pair<std::uint32_t, std::string>> procNames;
    std::vector<std::pair<std::uint64_t, std::string>> threadNames;
    std::string _path;
    std::uint64_t txnCap;
    std::uint64_t txnCount = 0;
    std::uint64_t txnDrops = 0;
};

} // namespace dashsim::obs

#endif // OBS_TIMELINE_HH
