/**
 * @file
 * Per-transaction latency attribution record.
 *
 * Every memory transaction the MemorySystem services can carry one of
 * these: where it started and completed in simulated time, which
 * hierarchy level serviced it (the Table 1 class), and a phase vector
 * decomposing the latency into issue / cache lookup / directory wait /
 * network hops / remote-dirty forward / fill / queueing cycles. The
 * decomposition is exact by construction: the phases always sum to
 * `complete - start`, which the conservation checker asserts per
 * transaction under DASHSIM_CHECK.
 */

#ifndef OBS_TXN_HH
#define OBS_TXN_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "mem/mem_config.hh"
#include "sim/types.hh"

namespace dashsim::obs {

/** Transaction kind (read vs write vs sync vs prefetch classes). */
enum class TxnOp : std::uint8_t
{
    Read,      ///< demand shared read
    Write,     ///< shared write (SC stall or RC buffered retire)
    Sync,      ///< atomic read-modify-write (locks, barriers)
    Prefetch,  ///< software prefetch that walked the interconnect
    NumOps,
};

inline constexpr std::size_t numTxnOps =
    static_cast<std::size_t>(TxnOp::NumOps);

/** Number of ServiceLevel values (the Table 1 latency classes). */
inline constexpr std::size_t numServiceLevels = 7;

/** Latency phases of one transaction. */
enum class TxnPhase : std::uint8_t
{
    Issue,        ///< request issue onto the local bus
    CacheLookup,  ///< serviced entirely by the L1/L2 lookup (hits)
    DirWait,      ///< home directory lookup and service
    Network,      ///< uncontended network hop cycles
    RemoteFwd,    ///< remote-dirty owner forward (3-hop transactions)
    Fill,         ///< cache-line fill at the requester
    Queue,        ///< contention: resource queueing + issue backpressure
    NumPhases,
};

inline constexpr std::size_t numTxnPhases =
    static_cast<std::size_t>(TxnPhase::NumPhases);

/** Short dotted-name-safe label for a TxnOp. */
inline const char *
txnOpName(TxnOp op)
{
    switch (op) {
      case TxnOp::Read:
        return "read";
      case TxnOp::Write:
        return "write";
      case TxnOp::Sync:
        return "sync";
      case TxnOp::Prefetch:
        return "prefetch";
      default:
        return "?";
    }
}

/** Short dotted-name-safe label for a ServiceLevel. */
inline const char *
serviceLevelName(ServiceLevel l)
{
    switch (l) {
      case ServiceLevel::PrimaryHit:
        return "l1_hit";
      case ServiceLevel::SecondaryHit:
        return "l2_hit";
      case ServiceLevel::LocalNode:
        return "local";
      case ServiceLevel::HomeNode:
        return "home";
      case ServiceLevel::RemoteNode:
        return "remote_dirty";
      case ServiceLevel::Combined:
        return "combined";
      case ServiceLevel::Uncached:
        return "uncached";
    }
    return "?";
}

/** Short dotted-name-safe label for a TxnPhase. */
inline const char *
txnPhaseName(TxnPhase p)
{
    switch (p) {
      case TxnPhase::Issue:
        return "issue";
      case TxnPhase::CacheLookup:
        return "cache_lookup";
      case TxnPhase::DirWait:
        return "dir_wait";
      case TxnPhase::Network:
        return "network";
      case TxnPhase::RemoteFwd:
        return "remote_fwd";
      case TxnPhase::Fill:
        return "fill";
      case TxnPhase::Queue:
        return "queue";
      default:
        return "?";
    }
}

/** One serviced transaction, reported through MemorySystem::setTxnHook. */
struct TxnRecord
{
    NodeId node = 0;
    TxnOp op = TxnOp::Read;
    ServiceLevel level = ServiceLevel::PrimaryHit;
    bool hit = false;
    Tick start = 0;     ///< tick the processor issued the access
    Tick complete = 0;  ///< data available / write retired
    std::array<Tick, numTxnPhases> phases{};

    Tick &
    phase(TxnPhase p)
    {
        return phases[static_cast<std::size_t>(p)];
    }

    Tick
    phase(TxnPhase p) const
    {
        return phases[static_cast<std::size_t>(p)];
    }

    /** Total of the phase vector (== complete - start by contract). */
    Tick
    phaseSum() const
    {
        Tick s = 0;
        for (Tick v : phases)
            s += v;
        return s;
    }
};

} // namespace dashsim::obs

#endif // OBS_TXN_HH
