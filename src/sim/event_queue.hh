/**
 * @file
 * The event-driven simulation kernel.
 *
 * A single global-order EventQueue drives the whole machine. Components
 * schedule callbacks at absolute ticks; ties are broken by insertion
 * order so simulation results are fully deterministic.
 *
 * Hot-path design. Every simulated transaction flows through this queue,
 * so the kernel is built around two allocation-free structures:
 *
 *  - an indexed 4-ary min-heap of 24-byte POD keys (tick, sequence,
 *    slot). Sift operations move only the trivially-copyable keys, never
 *    the callbacks, and the shallow high-fanout heap keeps the pop path
 *    to a handful of well-predicted comparisons per level;
 *
 *  - a slot pool of InlineCallback objects. Callables whose captures fit
 *    the 48-byte inline buffer (every per-transaction completion lambda
 *    in the memory system) are stored in place, so the steady-state
 *    schedule/run cycle performs no heap allocation at all. Larger or
 *    throwing-move callables transparently fall back to the heap.
 *
 * Sharded machine mode. enableShards() partitions the queue into one
 * heap per node group. Events carry a shard tag (it fills the padding
 * word of the 24-byte key, so key size is unchanged); node-affine
 * scheduling (scheduleAtNode) routes events to the owning shard, and
 * cross-shard events posted beyond the current window's end go through
 * fixed-capacity SPSC mailboxes that are drained at window boundaries.
 * runWindowed() advances the shards in conservative time-windows while
 * still executing events in the one global (tick, seq) order — so the
 * sharded machine produces byte-identical results to the classic path
 * at any shard count, which determinism_test.cc pins on every figure
 * grid. When sharding is off (the default), the classic single-heap
 * fast path is untouched except for one predictable branch per insert.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/spsc.hh"
#include "sim/types.hh"

namespace dashsim {

/**
 * A move-only `void()` callable with small-buffer-optimized storage.
 *
 * Captures up to inlineCapacity bytes (and nothrow-movable) live in the
 * object itself; anything bigger is heap-allocated behind the same
 * interface. One virtual-free indirect call to invoke, one to
 * relocate/destroy.
 */
class InlineCallback
{
  public:
    /** Sized for the memory system's completion lambdas (~this + line +
     *  node + a couple of ticks, or this + addr + a std::function). */
    static constexpr std::size_t inlineCapacity = 48;

    InlineCallback() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    InlineCallback(F &&f)  // NOLINT: intentional converting constructor
    {
        init<D>(std::forward<F>(f));
    }

    /** Replace the stored callable in place (no temporary + move). */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    void
    emplace(F &&f)
    {
        destroy();
        init<D>(std::forward<F>(f));
    }

    InlineCallback(InlineCallback &&o) noexcept
        : invoke_(o.invoke_), relocate_(o.relocate_)
    {
        moveBuf(o);
    }

    InlineCallback &
    operator=(InlineCallback &&o) noexcept
    {
        if (this != &o) {
            destroy();
            invoke_ = o.invoke_;
            relocate_ = o.relocate_;
            moveBuf(o);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { destroy(); }

    void operator()() { invoke_(buf); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= inlineCapacity &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D, typename F>
    void
    init(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
            invoke_ = &inlineInvoke<D>;
            // Trivially-relocatable callables (the common case: captures
            // of this-pointers, addresses, and ticks) share one marker
            // so moves compile to a fixed-size inline copy and destroys
            // to nothing — no per-type indirect call.
            if constexpr (std::is_trivially_copyable_v<D> &&
                          std::is_trivially_destructible_v<D>)
                relocate_ = &trivialRelocate;
            else
                relocate_ = &inlineRelocate<D>;
        } else {
            ::new (static_cast<void *>(buf)) D *(new D(std::forward<F>(f)));
            invoke_ = &heapInvoke<D>;
            relocate_ = &heapRelocate<D>;
        }
    }

    void
    moveBuf(InlineCallback &o) noexcept
    {
        if (relocate_ == &trivialRelocate) {
            __builtin_memcpy(buf, o.buf, inlineCapacity);
        } else if (relocate_) {
            relocate_(o.buf, buf);
        }
        o.invoke_ = nullptr;
        o.relocate_ = nullptr;
    }

    static void
    trivialRelocate(void *src, void *dst)
    {
        if (dst)
            __builtin_memcpy(dst, src, inlineCapacity);
    }

    template <typename D>
    static void
    inlineInvoke(void *p)
    {
        (*static_cast<D *>(p))();
    }

    /** Move-construct into @p dst (or just destroy when null). */
    template <typename D>
    static void
    inlineRelocate(void *src, void *dst)
    {
        D *f = static_cast<D *>(src);
        if (dst)
            ::new (dst) D(std::move(*f));
        f->~D();
    }

    template <typename D>
    static void
    heapInvoke(void *p)
    {
        (**static_cast<D **>(p))();
    }

    template <typename D>
    static void
    heapRelocate(void *src, void *dst)
    {
        D **pp = static_cast<D **>(src);
        if (dst)
            ::new (dst) D *(*pp);
        else
            delete *pp;
    }

    void
    destroy()
    {
        if (relocate_ && relocate_ != &trivialRelocate)
            relocate_(buf, nullptr);
    }

    alignas(std::max_align_t) unsigned char buf[inlineCapacity];
    void (*invoke_)(void *) = nullptr;
    void (*relocate_)(void *, void *) = nullptr;
};

/**
 * Deterministic event queue.
 *
 * Events are (tick, sequence, callback) triples ordered by tick and then
 * by schedule order. The queue owns the simulated clock: now() advances
 * only when events execute.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in pclocks. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&cb)
    {
        scheduleAt(_now + delay, std::forward<F>(cb));
    }

    /** Schedule @p cb at absolute tick @p when (must not be in the past). */
    template <typename F>
    void
    scheduleAt(Tick when, F &&cb)
    {
        panic_if(when < _now, "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
        insert(Key{when, nextSeq++, allocSlot(std::forward<F>(cb)), curShard});
    }

    /**
     * Schedule a prebuilt callback (no wrapping; the pool slot is
     * move-assigned). Used by the PDES kernel to deliver cross-shard
     * mailbox payloads without re-erasing them.
     */
    void
    scheduleReady(Tick when, Callback &&cb)
    {
        panic_if(when < _now, "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
        std::uint32_t slot;
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
            pool[slot] = std::move(cb);
        } else {
            slot = static_cast<std::uint32_t>(pool.size());
            pool.push_back(std::move(cb));
        }
        insert(Key{when, nextSeq++, slot, curShard});
    }

    /**
     * Node-affine scheduling: with sharding enabled the event is routed
     * to @p node's shard; otherwise identical to schedule().
     */
    template <typename F>
    void
    scheduleNode(std::uint32_t node, Tick delay, F &&cb)
    {
        scheduleAtNode(node, _now + delay, std::forward<F>(cb));
    }

    /** Node-affine form of scheduleAt(). */
    template <typename F>
    void
    scheduleAtNode(std::uint32_t node, Tick when, F &&cb)
    {
        panic_if(when < _now, "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
        const std::uint32_t s = nShards == 0 ? curShard : nodeShard[node];
        insert(Key{when, nextSeq++, allocSlot(std::forward<F>(cb)), s});
    }

    /** True when no events remain. */
    bool
    empty() const
    {
        return nShards == 0 ? heap.empty() : pending() == 0;
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        if (nShards == 0)
            return heap.size();
        std::size_t n = deferredPending;
        for (const auto &h : shardHeaps)
            n += h.size();
        return n;
    }

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /** Earliest pending tick (single-queue mode; undefined if empty). */
    Tick frontTick() const { return heap.front().when; }

    /**
     * Run one event.
     * @retval false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        const Key k = heap.front();
        popMin(heap);
        // Move the callback out before invoking: it may schedule new
        // events, which can grow (and relocate) the slot pool.
        Callback cb = std::move(pool[k.slot]);
        freeSlots.push_back(k.slot);
        _now = k.when;
        ++numExecuted;
        cb();
        return true;
    }

    /**
     * Run events until the queue drains or @p limit events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t limit = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < limit && runOne())
            ++n;
        return n;
    }

    /** Run until the queue drains or simulated time reaches @p stop. */
    void
    runUntil(Tick stop)
    {
        while (!heap.empty() && heap.front().when <= stop)
            runOne();
        if (_now < stop)
            _now = stop;
    }

    /**
     * Partition the queue into @p shards heaps with @p nodeToShard
     * mapping each simulated node to its owning shard. Must be called
     * before any event is scheduled. Cross-shard events beyond a
     * window's end travel through per-(src, dst) SPSC mailboxes of
     * @p mailboxCapacity entries (allocated lazily per pair).
     */
    void
    enableShards(std::vector<std::uint32_t> nodeToShard,
                 std::uint32_t shards, std::size_t mailboxCapacity = 4096)
    {
        panic_if(shards < 2, "enableShards needs at least 2 shards");
        panic_if(!heap.empty() || numExecuted != 0,
                 "enableShards on a queue already in use");
        nShards = shards;
        nodeShard = std::move(nodeToShard);
        shardHeaps.resize(shards);
        boxes.resize(std::size_t{shards} * shards);
        boxCapacity = mailboxCapacity;
    }

    /** Shards configured via enableShards (1 = classic single queue). */
    std::uint32_t shardCount() const { return nShards == 0 ? 1 : nShards; }

    /** Conservative time-windows executed by runWindowed so far. */
    std::uint64_t windows() const { return nWindows; }

    /** Cross-shard events inserted directly (below the window end). */
    std::uint64_t crossInline() const { return nCrossInline; }

    /** Cross-shard events routed through the window-boundary mailboxes. */
    std::uint64_t crossDeferred() const { return nCrossDeferred; }

    /**
     * Sharded-mode run-to-completion: advance the shards in conservative
     * time-windows of @p lookahead ticks. Each window delivers the
     * mailboxes, picks the globally earliest pending tick T, and runs
     * every event with tick < T + lookahead — in the same global
     * (tick, seq) order the classic kernel would use, so results are
     * byte-identical to a run with sharding disabled.
     * @return events executed by this call.
     */
    std::uint64_t
    runWindowed(Tick lookahead)
    {
        panic_if(nShards == 0, "runWindowed requires enableShards");
        panic_if(lookahead == 0, "lookahead must be at least one tick");
        const std::uint64_t start = numExecuted;
        windowRunning = true;
        for (;;) {
            deliverDeferred();
            const int top = minShard(maxTick);
            if (top < 0)
                break;
            winEnd = shardHeaps[top].front().when + lookahead;
            ++nWindows;
            for (;;) {
                const int s = minShard(winEnd);
                if (s < 0)
                    break;
                runOneShard(static_cast<std::uint32_t>(s));
            }
        }
        windowRunning = false;
        return numExecuted - start;
    }

  private:
    /** Heap key: trivially copyable, so sifts are plain word moves.
     *  The shard tag occupies what was padding; keys stay 24 bytes. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t shard;
    };

    static constexpr std::size_t arity = 4;

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /** Wrap a callable into a pool slot; returns the slot index. */
    template <typename F>
    std::uint32_t
    allocSlot(F &&cb)
    {
        std::uint32_t slot;
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
            pool[slot].emplace(std::forward<F>(cb));
        } else {
            slot = static_cast<std::uint32_t>(pool.size());
            pool.emplace_back(std::forward<F>(cb));
        }
        return slot;
    }

    /** Route a new key to its heap (or, cross-shard, to a mailbox). */
    void
    insert(Key k)
    {
        if (nShards == 0) [[likely]] {
            push(heap, k);
            return;
        }
        insertSharded(k);
    }

    /**
     * Sharded insert. Within a window, an event for another shard whose
     * tick is at or beyond the window end is deferred into the
     * (curShard -> k.shard) mailbox and merged at the next boundary;
     * everything else (own shard, outside a window, or below the window
     * end) goes straight into the target heap. Either way the key keeps
     * its original (tick, seq), so the global execution order — and
     * therefore every simulated result — is unchanged by routing.
     */
    [[gnu::noinline]] void
    insertSharded(Key k)
    {
        if (!windowRunning || k.shard == curShard || k.when < winEnd) {
            if (windowRunning && k.shard != curShard)
                ++nCrossInline;
            push(shardHeaps[k.shard], k);
        } else {
            ++nCrossDeferred;
            auto &box = boxFor(curShard, k.shard);
            if (!box.tryPush(Key{k}))
                panic("shard mailbox %u -> %u overflow (capacity %zu)",
                      curShard, k.shard, box.capacity());
            ++deferredPending;
        }
    }

    SpscMailbox<Key> &
    boxFor(std::uint32_t src, std::uint32_t dst)
    {
        auto &p = boxes[src * nShards + dst];
        if (!p)
            p = std::make_unique<SpscMailbox<Key>>(boxCapacity);
        return *p;
    }

    /** Merge every deferred cross-shard event into its target heap. */
    void
    deliverDeferred()
    {
        if (deferredPending == 0)
            return;
        Key k;
        for (auto &box : boxes) {
            if (!box)
                continue;
            while (box->tryPop(k)) {
                --deferredPending;
                push(shardHeaps[k.shard], k);
            }
        }
    }

    /**
     * Index of the shard holding the globally next event with tick
     * strictly below @p bound (ties by seq, as always), or -1.
     */
    int
    minShard(Tick bound) const
    {
        int best = -1;
        for (std::uint32_t s = 0; s < nShards; ++s) {
            const auto &h = shardHeaps[s];
            if (h.empty() || h.front().when >= bound)
                continue;
            if (best < 0 || before(h.front(), shardHeaps[best].front()))
                best = static_cast<int>(s);
        }
        return best;
    }

    void
    runOneShard(std::uint32_t s)
    {
        auto &h = shardHeaps[s];
        const Key k = h.front();
        popMin(h);
        Callback cb = std::move(pool[k.slot]);
        freeSlots.push_back(k.slot);
        _now = k.when;
        curShard = k.shard;
        ++numExecuted;
        cb();
    }

    void
    push(std::vector<Key> &h, Key k)
    {
        std::size_t i = h.size();
        h.push_back(k);
        while (i != 0) {
            const std::size_t parent = (i - 1) / arity;
            if (!before(k, h[parent]))
                break;
            h[i] = h[parent];
            i = parent;
        }
        h[i] = k;
    }

    void
    popMin(std::vector<Key> &h)
    {
        const Key last = h.back();
        h.pop_back();
        const std::size_t n = h.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t first = i * arity + 1;
            if (first >= n)
                break;
            const std::size_t end = std::min(first + arity, n);
            std::size_t m = first;
            for (std::size_t c = first + 1; c < end; ++c) {
                if (before(h[c], h[m]))
                    m = c;
            }
            if (!before(h[m], last))
                break;
            h[i] = h[m];
            i = m;
        }
        h[i] = last;
    }

    std::vector<Key> heap;
    std::vector<Callback> pool;         ///< indexed by Key::slot
    std::vector<std::uint32_t> freeSlots;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;

    // Sharded machine mode (all idle when nShards == 0).
    std::uint32_t nShards = 0;          ///< 0 = classic single queue
    std::uint32_t curShard = 0;         ///< shard of the executing event
    bool windowRunning = false;
    Tick winEnd = 0;                    ///< exclusive end of the window
    std::uint64_t nWindows = 0;
    std::uint64_t nCrossInline = 0;
    std::uint64_t nCrossDeferred = 0;
    std::size_t deferredPending = 0;
    std::vector<std::vector<Key>> shardHeaps;
    std::vector<std::uint32_t> nodeShard;
    std::vector<std::unique_ptr<SpscMailbox<Key>>> boxes;  ///< src*S + dst
    std::size_t boxCapacity = 0;
};

} // namespace dashsim

#endif // SIM_EVENT_QUEUE_HH
