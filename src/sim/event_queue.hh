/**
 * @file
 * The event-driven simulation kernel.
 *
 * A single global-order EventQueue drives the whole machine. Components
 * schedule std::function callbacks at absolute ticks; ties are broken by
 * insertion order so simulation results are fully deterministic.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dashsim {

/**
 * Deterministic event queue.
 *
 * Events are (tick, sequence, callback) triples ordered by tick and then
 * by schedule order. The queue owns the simulated clock: now() advances
 * only when events execute.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in pclocks. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(_now + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute tick @p when (must not be in the past). */
    void
    scheduleAt(Tick when, Callback cb)
    {
        panic_if(when < _now, "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
        heap.push(Entry{when, nextSeq++, std::move(cb)});
    }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Run one event.
     * @retval false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        // The callback may schedule new events, so move it out first.
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        _now = e.when;
        ++numExecuted;
        e.cb();
        return true;
    }

    /**
     * Run events until the queue drains or @p limit events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t limit = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < limit && runOne())
            ++n;
        return n;
    }

    /** Run until the queue drains or simulated time reaches @p stop. */
    void
    runUntil(Tick stop)
    {
        while (!heap.empty() && heap.top().when <= stop)
            runOne();
        if (_now < stop)
            _now = stop;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace dashsim

#endif // SIM_EVENT_QUEUE_HH
