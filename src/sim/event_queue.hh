/**
 * @file
 * The event-driven simulation kernel.
 *
 * A single global-order EventQueue drives the whole machine. Components
 * schedule callbacks at absolute ticks; ties are broken by insertion
 * order so simulation results are fully deterministic.
 *
 * Hot-path design. Every simulated transaction flows through this queue,
 * so the kernel is built around two allocation-free structures:
 *
 *  - an indexed 4-ary min-heap of 24-byte POD keys (tick, sequence,
 *    slot). Sift operations move only the trivially-copyable keys, never
 *    the callbacks, and the shallow high-fanout heap keeps the pop path
 *    to a handful of well-predicted comparisons per level;
 *
 *  - a slot pool of InlineCallback objects. Callables whose captures fit
 *    the 48-byte inline buffer (every per-transaction completion lambda
 *    in the memory system) are stored in place, so the steady-state
 *    schedule/run cycle performs no heap allocation at all. Larger or
 *    throwing-move callables transparently fall back to the heap.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dashsim {

/**
 * A move-only `void()` callable with small-buffer-optimized storage.
 *
 * Captures up to inlineCapacity bytes (and nothrow-movable) live in the
 * object itself; anything bigger is heap-allocated behind the same
 * interface. One virtual-free indirect call to invoke, one to
 * relocate/destroy.
 */
class InlineCallback
{
  public:
    /** Sized for the memory system's completion lambdas (~this + line +
     *  node + a couple of ticks, or this + addr + a std::function). */
    static constexpr std::size_t inlineCapacity = 48;

    InlineCallback() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    InlineCallback(F &&f)  // NOLINT: intentional converting constructor
    {
        init<D>(std::forward<F>(f));
    }

    /** Replace the stored callable in place (no temporary + move). */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    void
    emplace(F &&f)
    {
        destroy();
        init<D>(std::forward<F>(f));
    }

    InlineCallback(InlineCallback &&o) noexcept
        : invoke_(o.invoke_), relocate_(o.relocate_)
    {
        moveBuf(o);
    }

    InlineCallback &
    operator=(InlineCallback &&o) noexcept
    {
        if (this != &o) {
            destroy();
            invoke_ = o.invoke_;
            relocate_ = o.relocate_;
            moveBuf(o);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { destroy(); }

    void operator()() { invoke_(buf); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= inlineCapacity &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D, typename F>
    void
    init(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
            invoke_ = &inlineInvoke<D>;
            // Trivially-relocatable callables (the common case: captures
            // of this-pointers, addresses, and ticks) share one marker
            // so moves compile to a fixed-size inline copy and destroys
            // to nothing — no per-type indirect call.
            if constexpr (std::is_trivially_copyable_v<D> &&
                          std::is_trivially_destructible_v<D>)
                relocate_ = &trivialRelocate;
            else
                relocate_ = &inlineRelocate<D>;
        } else {
            ::new (static_cast<void *>(buf)) D *(new D(std::forward<F>(f)));
            invoke_ = &heapInvoke<D>;
            relocate_ = &heapRelocate<D>;
        }
    }

    void
    moveBuf(InlineCallback &o) noexcept
    {
        if (relocate_ == &trivialRelocate) {
            __builtin_memcpy(buf, o.buf, inlineCapacity);
        } else if (relocate_) {
            relocate_(o.buf, buf);
        }
        o.invoke_ = nullptr;
        o.relocate_ = nullptr;
    }

    static void
    trivialRelocate(void *src, void *dst)
    {
        if (dst)
            __builtin_memcpy(dst, src, inlineCapacity);
    }

    template <typename D>
    static void
    inlineInvoke(void *p)
    {
        (*static_cast<D *>(p))();
    }

    /** Move-construct into @p dst (or just destroy when null). */
    template <typename D>
    static void
    inlineRelocate(void *src, void *dst)
    {
        D *f = static_cast<D *>(src);
        if (dst)
            ::new (dst) D(std::move(*f));
        f->~D();
    }

    template <typename D>
    static void
    heapInvoke(void *p)
    {
        (**static_cast<D **>(p))();
    }

    template <typename D>
    static void
    heapRelocate(void *src, void *dst)
    {
        D **pp = static_cast<D **>(src);
        if (dst)
            ::new (dst) D *(*pp);
        else
            delete *pp;
    }

    void
    destroy()
    {
        if (relocate_ && relocate_ != &trivialRelocate)
            relocate_(buf, nullptr);
    }

    alignas(std::max_align_t) unsigned char buf[inlineCapacity];
    void (*invoke_)(void *) = nullptr;
    void (*relocate_)(void *, void *) = nullptr;
};

/**
 * Deterministic event queue.
 *
 * Events are (tick, sequence, callback) triples ordered by tick and then
 * by schedule order. The queue owns the simulated clock: now() advances
 * only when events execute.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in pclocks. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&cb)
    {
        scheduleAt(_now + delay, std::forward<F>(cb));
    }

    /** Schedule @p cb at absolute tick @p when (must not be in the past). */
    template <typename F>
    void
    scheduleAt(Tick when, F &&cb)
    {
        panic_if(when < _now, "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_now));
        std::uint32_t slot;
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
            pool[slot].emplace(std::forward<F>(cb));
        } else {
            slot = static_cast<std::uint32_t>(pool.size());
            pool.emplace_back(std::forward<F>(cb));
        }
        push(Key{when, nextSeq++, slot});
    }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Run one event.
     * @retval false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        const Key k = heap.front();
        popMin();
        // Move the callback out before invoking: it may schedule new
        // events, which can grow (and relocate) the slot pool.
        Callback cb = std::move(pool[k.slot]);
        freeSlots.push_back(k.slot);
        _now = k.when;
        ++numExecuted;
        cb();
        return true;
    }

    /**
     * Run events until the queue drains or @p limit events have executed.
     * @return number of events executed by this call.
     */
    std::uint64_t
    run(std::uint64_t limit = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < limit && runOne())
            ++n;
        return n;
    }

    /** Run until the queue drains or simulated time reaches @p stop. */
    void
    runUntil(Tick stop)
    {
        while (!heap.empty() && heap.front().when <= stop)
            runOne();
        if (_now < stop)
            _now = stop;
    }

  private:
    /** Heap key: trivially copyable, so sifts are plain word moves. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    static constexpr std::size_t arity = 4;

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void
    push(Key k)
    {
        std::size_t i = heap.size();
        heap.push_back(k);
        while (i != 0) {
            const std::size_t parent = (i - 1) / arity;
            if (!before(k, heap[parent]))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = k;
    }

    void
    popMin()
    {
        const Key last = heap.back();
        heap.pop_back();
        const std::size_t n = heap.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t first = i * arity + 1;
            if (first >= n)
                break;
            const std::size_t end = std::min(first + arity, n);
            std::size_t m = first;
            for (std::size_t c = first + 1; c < end; ++c) {
                if (before(heap[c], heap[m]))
                    m = c;
            }
            if (!before(heap[m], last))
                break;
            heap[i] = heap[m];
            i = m;
        }
        heap[i] = last;
    }

    std::vector<Key> heap;
    std::vector<Callback> pool;         ///< indexed by Key::slot
    std::vector<std::uint32_t> freeSlots;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace dashsim

#endif // SIM_EVENT_QUEUE_HH
