#include "sim/logging.hh"

#include <cstdarg>
#include <mutex>

namespace dashsim {

namespace {

// Batch runs execute on a host thread pool; serialize direct stdio
// emission so messages from concurrent runs never interleave.
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

// >0: panic/fatal on this thread throw SimError instead of terminating.
thread_local int tl_capture_errors = 0;

// Non-null: warn/inform on this thread append here instead of stdio.
thread_local std::string *tl_log_buffer = nullptr;

} // namespace

ScopedErrorCapture::ScopedErrorCapture()
{
    ++tl_capture_errors;
}

ScopedErrorCapture::~ScopedErrorCapture()
{
    --tl_capture_errors;
}

ScopedLogCapture::ScopedLogCapture() : prev(tl_log_buffer)
{
    tl_log_buffer = &text;
}

ScopedLogCapture::~ScopedLogCapture()
{
    tl_log_buffer = prev;
}

std::string
ScopedLogCapture::take()
{
    std::string out;
    out.swap(text);
    return out;
}

namespace detail {

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args);
    return out;
}

void
terminatePanic(const std::string &msg, const char *file, int line)
{
    if (tl_capture_errors > 0)
        throw SimError(SimError::Kind::Panic,
                       msg + " (" + file + ":" + std::to_string(line) + ")");
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    if (tl_capture_errors > 0)
        throw SimError(SimError::Kind::Fatal, msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
emitWarn(const std::string &msg)
{
    if (tl_log_buffer) {
        *tl_log_buffer += "warn: " + msg + "\n";
        return;
    }
    std::lock_guard<std::mutex> lk(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
reemitCaptured(const std::string &text)
{
    if (text.empty())
        return;
    if (tl_log_buffer) {
        *tl_log_buffer += text;
        return;
    }
    std::lock_guard<std::mutex> lk(logMutex());
    std::fwrite(text.data(), 1, text.size(), stderr);
}

void
emitInform(const std::string &msg)
{
    if (tl_log_buffer) {
        *tl_log_buffer += "info: " + msg + "\n";
        return;
    }
    std::lock_guard<std::mutex> lk(logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace dashsim
