#include "sim/logging.hh"

#include <cstdarg>
#include <stdexcept>

namespace dashsim {
namespace detail {

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args);
    return out;
}

void
terminatePanic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
emitWarn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitInform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace dashsim
