/**
 * @file
 * Error and status reporting, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user errors, warn()/inform()
 * for status messages.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dashsim {

namespace detail {

[[noreturn]] void terminatePanic(const std::string &msg, const char *file,
                                 int line);
[[noreturn]] void terminateFatal(const std::string &msg);
void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/** Minimal printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Abort the simulation because of an internal simulator bug.
 * Never use for conditions a user configuration can trigger.
 */
#define panic(...)                                                          \
    ::dashsim::detail::terminatePanic(                                      \
        ::dashsim::detail::vformat(__VA_ARGS__), __FILE__, __LINE__)

/** Exit because the user asked for something impossible. */
#define fatal(...)                                                          \
    ::dashsim::detail::terminateFatal(::dashsim::detail::vformat(__VA_ARGS__))

/** Like assert, but always compiled in and reported as a panic. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** Like panic_if, for user errors. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

/** Non-fatal warning to stderr. */
#define warn(...)                                                           \
    ::dashsim::detail::emitWarn(::dashsim::detail::vformat(__VA_ARGS__))

/** Informational message to stdout. */
#define inform(...)                                                         \
    ::dashsim::detail::emitInform(::dashsim::detail::vformat(__VA_ARGS__))

} // namespace dashsim

#endif // SIM_LOGGING_HH
