/**
 * @file
 * Error and status reporting, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user errors, warn()/inform()
 * for status messages.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dashsim {

/**
 * A panic()/fatal() raised while a ScopedErrorCapture is active on the
 * current thread. The batch experiment runner uses this to report one
 * failed run without killing its siblings (or the process).
 */
class SimError : public std::runtime_error
{
  public:
    enum class Kind { Panic, Fatal };

    SimError(Kind kind, const std::string &msg)
        : std::runtime_error(msg), k(kind)
    {}

    Kind kind() const { return k; }

  private:
    Kind k;
};

/**
 * While alive, panic()/fatal() on this thread throw SimError instead of
 * terminating the process. Captures nest; the outermost restores the
 * terminate behavior. Each simulation run is single-threaded, so a
 * capture installed by the thread that drives Machine::run covers every
 * panic the run can raise.
 */
class ScopedErrorCapture
{
  public:
    ScopedErrorCapture();
    ~ScopedErrorCapture();

    ScopedErrorCapture(const ScopedErrorCapture &) = delete;
    ScopedErrorCapture &operator=(const ScopedErrorCapture &) = delete;
};

/**
 * While alive, warn()/inform() on this thread append to an in-memory
 * buffer instead of writing to stderr/stdout, so concurrent runs never
 * interleave their messages. take() returns and clears the buffer.
 */
class ScopedLogCapture
{
  public:
    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    /** The messages captured so far ("warn: ...\n" lines); clears. */
    std::string take();

  private:
    std::string *prev;
    std::string text;
};

namespace detail {

[[noreturn]] void terminatePanic(const std::string &msg, const char *file,
                                 int line);
[[noreturn]] void terminateFatal(const std::string &msg);
void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/**
 * Re-emit already-formatted captured text ("warn: ...\n" lines) through
 * the current thread's log capture, or to stderr when none is active.
 * The parallel kernel (sim/pdes.hh) uses this to marshal worker-thread
 * logs back to the thread driving the run, preserving the capture
 * discipline batch runners rely on.
 */
void reemitCaptured(const std::string &text);

/** Minimal printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Abort the simulation because of an internal simulator bug.
 * Never use for conditions a user configuration can trigger.
 */
#define panic(...)                                                          \
    ::dashsim::detail::terminatePanic(                                      \
        ::dashsim::detail::vformat(__VA_ARGS__), __FILE__, __LINE__)

/** Exit because the user asked for something impossible. */
#define fatal(...)                                                          \
    ::dashsim::detail::terminateFatal(::dashsim::detail::vformat(__VA_ARGS__))

/** Like assert, but always compiled in and reported as a panic. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** Like panic_if, for user errors. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

/** Non-fatal warning to stderr. */
#define warn(...)                                                           \
    ::dashsim::detail::emitWarn(::dashsim::detail::vformat(__VA_ARGS__))

/** Informational message to stdout. */
#define inform(...)                                                         \
    ::dashsim::detail::emitInform(::dashsim::detail::vformat(__VA_ARGS__))

} // namespace dashsim

#endif // SIM_LOGGING_HH
