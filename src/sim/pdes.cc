#include "sim/pdes.hh"

#include <algorithm>
#include <thread>

namespace dashsim {

ShardedKernel::ShardedKernel(const Config &cfg)
    : nShards(std::max<std::uint32_t>(1, cfg.shards)),
      ahead(std::max<Tick>(1, cfg.lookahead))
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    nWorkers = cfg.workers ? cfg.workers : std::min<unsigned>(nShards, hw);
    nWorkers = std::min<unsigned>(nWorkers, nShards);

    queues.reserve(nShards);
    for (std::uint32_t s = 0; s < nShards; ++s)
        queues.push_back(std::make_unique<EventQueue>());

    mailboxes.reserve(std::size_t{nShards} * nShards);
    for (std::size_t i = 0; i < std::size_t{nShards} * nShards; ++i)
        mailboxes.push_back(
            std::make_unique<SpscMailbox<CrossEvent>>(cfg.mailboxCapacity));

    shardState.resize(nShards);
    workerLogs.resize(nWorkers);
}

void
ShardedKernel::drainInboxes(std::uint32_t dst)
{
    auto &scratch = shardState[dst].scratch;
    scratch.clear();
    CrossEvent ev;
    for (std::uint32_t src = 0; src < nShards; ++src) {
        while (mailbox(src, dst).tryPop(ev))
            scratch.push_back(std::move(ev));
    }
    if (scratch.empty())
        return;
    // The deterministic merge order: every cross-shard message carries a
    // (tick, srcShard, seq) key that is unique and totally ordered, so
    // the local queue sees the same insertion order no matter how the
    // producing windows interleaved on the host.
    std::sort(scratch.begin(), scratch.end(),
              [](const CrossEvent &a, const CrossEvent &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.srcShard != b.srcShard)
                      return a.srcShard < b.srcShard;
                  return a.seq < b.seq;
              });
    for (auto &e : scratch)
        queues[dst]->scheduleReady(e.when, std::move(e.cb));
    scratch.clear();
}

void
ShardedKernel::onPhase() noexcept
{
    // Runs on exactly one thread while every worker is blocked in the
    // barrier, so plain reads of the shard queues are safe; the barrier
    // provides the happens-before edges for winEnd/done.
    if (drainPhase) {
        if (failed.load(std::memory_order_relaxed)) {
            done.store(true, std::memory_order_relaxed);
        } else {
            bool any = false;
            Tick t = 0;
            for (const auto &q : queues) {
                if (q->empty())
                    continue;
                const Tick f = q->frontTick();
                if (!any || f < t)
                    t = f;
                any = true;
            }
            if (!any) {
                done.store(true, std::memory_order_relaxed);
            } else {
                winEnd.store(t + ahead, std::memory_order_relaxed);
                ++nWindows;
            }
        }
    }
    drainPhase = !drainPhase;
}

void
ShardedKernel::workerLoop(unsigned worker)
{
    // Shard-safe panic/log capture: a panic inside any shard's events
    // becomes a SimError here, is recorded, and poisons the run; logs
    // are buffered and re-emitted by the driving thread in worker order.
    ScopedErrorCapture errors;
    ScopedLogCapture logs;
    for (;;) {
        if (!failed.load(std::memory_order_relaxed)) {
            try {
                for (std::uint32_t s = worker; s < nShards; s += nWorkers)
                    drainInboxes(s);
            } catch (const SimError &e) {
                bool expected = false;
                if (failed.compare_exchange_strong(expected, true))
                    firstError = e.what();
            }
        }
        gate->arrive_and_wait();
        if (done.load(std::memory_order_relaxed))
            break;
        if (!failed.load(std::memory_order_relaxed)) {
            try {
                for (std::uint32_t s = worker; s < nShards; s += nWorkers)
                    runWindow(s);
            } catch (const SimError &e) {
                bool expected = false;
                if (failed.compare_exchange_strong(expected, true))
                    firstError = e.what();
            }
        }
        gate->arrive_and_wait();
    }
    workerLogs[worker] = logs.take();
}

std::uint64_t
ShardedKernel::runSerial()
{
    const std::uint64_t start = executed();
    for (;;) {
        for (std::uint32_t s = 0; s < nShards; ++s)
            drainInboxes(s);
        bool any = false;
        Tick t = 0;
        for (const auto &q : queues) {
            if (q->empty())
                continue;
            const Tick f = q->frontTick();
            if (!any || f < t)
                t = f;
            any = true;
        }
        if (!any)
            break;
        winEnd.store(t + ahead, std::memory_order_relaxed);
        ++nWindows;
        for (std::uint32_t s = 0; s < nShards; ++s)
            runWindow(s);
    }
    return executed() - start;
}

std::uint64_t
ShardedKernel::runParallel()
{
    const std::uint64_t start = executed();
    gate.emplace(nWorkers, PhaseStep{this});
    std::vector<std::thread> threads;
    threads.reserve(nWorkers);
    for (unsigned w = 0; w < nWorkers; ++w)
        threads.emplace_back([this, w] { workerLoop(w); });
    for (auto &t : threads)
        t.join();
    gate.reset();
    for (auto &text : workerLogs) {
        detail::reemitCaptured(text);
        text.clear();
    }
    return executed() - start;
}

std::uint64_t
ShardedKernel::run()
{
    done.store(false, std::memory_order_relaxed);
    winEnd.store(0, std::memory_order_relaxed);
    drainPhase = true;
    running = true;
    const std::uint64_t n =
        nWorkers > 1 ? runParallel() : runSerial();
    running = false;
    if (failed.load(std::memory_order_relaxed)) {
        failed.store(false, std::memory_order_relaxed);
        std::string msg;
        msg.swap(firstError);
        throw SimError(SimError::Kind::Panic,
                       "sharded kernel worker failed: " + msg);
    }
    return n;
}

} // namespace dashsim
