/**
 * @file
 * Conservative parallel discrete-event simulation (PDES) kernel.
 *
 * The sequential EventQueue executes one global (tick, seq) order. This
 * kernel shards an event program across N per-shard EventQueues (each
 * with its own clock) and advances them in barrier-synchronized
 * conservative time-windows of `lookahead` ticks:
 *
 *   - within a window, shards execute their local events independently
 *     (in parallel on worker threads);
 *   - cross-shard communication goes through fixed-capacity SPSC
 *     mailboxes as (tick, srcShard, seq, callback) messages whose
 *     delivery tick must lie at or beyond the current window's end —
 *     the conservative guarantee that nothing a peer shard is still
 *     executing can affect this window;
 *   - at each window boundary every shard drains its inboxes and merges
 *     the messages into its local queue in (tick, srcShard, seq) order.
 *
 * Determinism. The merge key is a total order over all cross-shard
 * messages, the per-shard queues themselves are deterministic, and
 * window boundaries are pure functions of queue state — so a program's
 * results are identical whether windows execute on one thread or on
 * `workers` threads, and across repeated runs. The property tests in
 * tests/pdes_test.cc pin exactly this.
 */

#ifndef SIM_PDES_HH
#define SIM_PDES_HH

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/spsc.hh"
#include "sim/types.hh"

namespace dashsim {

/**
 * The sharded kernel: N per-shard EventQueues advanced in conservative
 * time-windows, cross-shard events through SPSC mailboxes.
 *
 * Programming model:
 *  - schedule()/scheduleAt() target a shard's local queue. Before run()
 *    any thread may call them (setup); during run() only the worker
 *    executing that shard's window may (i.e. an event may schedule
 *    further events for its own shard at any future tick).
 *  - post() sends an event from shard `src` to shard `dst` (src == dst
 *    is allowed and follows the same path). During run() the delivery
 *    tick must be at or beyond windowEnd(); this is the conservative
 *    lookahead contract and is enforced with a panic.
 *  - run() executes to completion and returns the event count. With
 *    `workers` <= 1 the same window algorithm runs on the calling
 *    thread; results are identical by construction.
 *
 * Worker threads run under ScopedErrorCapture (panics become SimError
 * on the worker, are marshalled back, and the first one is rethrown on
 * the calling thread) and ScopedLogCapture (worker logs are re-emitted
 * from the calling thread in shard order), so batch runners above this
 * kernel observe the same capture discipline as for sequential runs.
 */
class ShardedKernel
{
  public:
    struct Config
    {
        std::uint32_t shards = 1;
        Tick lookahead = 1;
        /** Worker threads; 0 = min(shards, hardware_concurrency). */
        unsigned workers = 0;
        /** Capacity of each src->dst mailbox (messages per window). */
        std::size_t mailboxCapacity = 1 << 14;
    };

    explicit ShardedKernel(const Config &cfg);

    ShardedKernel(const ShardedKernel &) = delete;
    ShardedKernel &operator=(const ShardedKernel &) = delete;

    std::uint32_t numShards() const { return nShards; }
    Tick lookahead() const { return ahead; }

    /** Worker threads run() will actually use. */
    unsigned workers() const { return nWorkers; }

    /** Shard-local clock (advances only while its events execute). */
    Tick now(std::uint32_t shard) const { return queues[shard]->now(); }

    /** End tick (exclusive) of the window currently executing. */
    Tick windowEnd() const { return winEnd.load(std::memory_order_relaxed); }

    /** Windows executed so far. */
    std::uint64_t windows() const { return nWindows; }

    /** Events executed across all shards. */
    std::uint64_t
    executed() const
    {
        std::uint64_t n = 0;
        for (const auto &q : queues)
            n += q->executed();
        return n;
    }

    /** Cross-shard messages posted so far. */
    std::uint64_t
    crossPosts() const
    {
        std::uint64_t n = 0;
        for (const auto &s : shardState)
            n += s.crossSeq;
        return n;
    }

    template <typename F>
    void
    schedule(std::uint32_t shard, Tick delay, F &&cb)
    {
        queues[shard]->schedule(delay, std::forward<F>(cb));
    }

    template <typename F>
    void
    scheduleAt(std::uint32_t shard, Tick when, F &&cb)
    {
        queues[shard]->scheduleAt(when, std::forward<F>(cb));
    }

    /**
     * Post a cross-shard event: deliver @p cb to @p dst's queue at tick
     * @p when. Delivery happens at the next window boundary; @p when
     * must be >= windowEnd() when posted from inside a window.
     */
    template <typename F>
    void
    post(std::uint32_t src, std::uint32_t dst, Tick when, F &&cb)
    {
        panic_if(running && when < winEnd.load(std::memory_order_relaxed),
                 "cross-shard post below the lookahead horizon "
                 "(tick %llu < window end %llu): shard %u -> %u",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(
                     winEnd.load(std::memory_order_relaxed)),
                 src, dst);
        CrossEvent ev{when, src, shardState[src].crossSeq++,
                      InlineCallback(std::forward<F>(cb))};
        if (!mailbox(src, dst).tryPush(std::move(ev))) {
            panic("mailbox %u -> %u overflow (capacity %zu); raise "
                  "Config::mailboxCapacity",
                  src, dst, mailbox(src, dst).capacity());
        }
    }

    /**
     * Run to completion; returns events executed by this call. Uses
     * worker threads when workers() > 1, the calling thread otherwise.
     */
    std::uint64_t run();

  private:
    struct CrossEvent
    {
        Tick when = 0;
        std::uint32_t srcShard = 0;
        std::uint64_t seq = 0;
        InlineCallback cb;
    };

    /** Per-shard worker-owned state, padded against false sharing. */
    struct alignas(64) ShardState
    {
        std::uint64_t crossSeq = 0;
        std::vector<CrossEvent> scratch;  ///< drain + merge staging
    };

    /** Barrier completion step: runs on exactly one thread per phase. */
    struct PhaseStep
    {
        ShardedKernel *k;
        void operator()() noexcept { k->onPhase(); }
    };

    SpscMailbox<CrossEvent> &
    mailbox(std::uint32_t src, std::uint32_t dst)
    {
        return *mailboxes[src * nShards + dst];
    }

    /** Merge every pending inbound message into @p dst's local queue. */
    void drainInboxes(std::uint32_t dst);

    /** Execute @p shard's events below the current window end. */
    void
    runWindow(std::uint32_t shard)
    {
        queues[shard]->runUntil(winEnd.load(std::memory_order_relaxed) - 1);
    }

    void onPhase() noexcept;
    void workerLoop(unsigned worker);
    std::uint64_t runSerial();
    std::uint64_t runParallel();

    std::uint32_t nShards;
    Tick ahead;
    unsigned nWorkers;

    std::vector<std::unique_ptr<EventQueue>> queues;
    std::vector<std::unique_ptr<SpscMailbox<CrossEvent>>> mailboxes;
    std::vector<ShardState> shardState;

    bool running = false;
    bool drainPhase = true;        ///< parity inside onPhase (one thread)
    std::atomic<Tick> winEnd{0};
    std::atomic<bool> done{false};
    std::uint64_t nWindows = 0;

    std::optional<std::barrier<PhaseStep>> gate;

    /** First worker-thread error, rethrown on the caller. */
    std::atomic<bool> failed{false};
    std::string firstError;
    std::vector<std::string> workerLogs;
};

} // namespace dashsim

#endif // SIM_PDES_HH
