/**
 * @file
 * Deterministic pseudo-random number generator for workload generation.
 *
 * All benchmark randomness (MP3D collisions, PTHOR circuit topology)
 * flows through this xoshiro256** generator so that every simulation of
 * the same configuration is bit-for-bit repeatable.
 */

#ifndef SIM_RANDOM_HH
#define SIM_RANDOM_HH

#include <cstdint>

namespace dashsim {

/** xoshiro256** with splitmix64 seeding. */
class Rng
{
  public:
    Rng() : Rng(0x9e3779b97f4a7c15ULL) {}

    explicit Rng(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into the 4-word state.
        std::uint64_t x = seed;
        for (auto &w : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift reduction; bias is negligible here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Checkpoint serialization: the raw 4-word xoshiro state. */
    template <class W>
    void
    saveState(W &w) const
    {
        for (auto v : s)
            w.u64(v);
    }

    template <class R>
    void
    loadState(R &r)
    {
        for (auto &v : s)
            v = r.u64();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace dashsim

#endif // SIM_RANDOM_HH
