/**
 * @file
 * Fixed-capacity single-producer / single-consumer mailbox.
 *
 * The cross-shard seam of the parallel kernel (sim/pdes.hh) and of the
 * sharded machine event queue. The cost model follows the advice of
 * Schweizer et al. ("Evaluating the Cost of Atomic Operations"): one
 * atomic store with release ordering per push, one atomic load with
 * acquire ordering per pop, no read-modify-write operations, and no
 * producer/producer sharing — each (src, dst) shard pair owns its own
 * ring. Cached peer indices keep the common case off shared lines
 * entirely; the producer and consumer halves live on separate
 * cache lines.
 */

#ifndef SIM_SPSC_HH
#define SIM_SPSC_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace dashsim {

/**
 * Bounded lock-free SPSC ring. T must be move-constructible and
 * move-assignable; non-trivial payloads are placement-constructed into
 * raw slots and destroyed on pop.
 */
template <typename T>
class SpscMailbox
{
  public:
    /** @p capacity is rounded up to a power of two (min 2). */
    explicit SpscMailbox(std::size_t capacity)
    {
        std::size_t c = 2;
        while (c < capacity)
            c <<= 1;
        cap = c;
        mask = c - 1;
        slots.reset(new Slot[cap]);
    }

    SpscMailbox(const SpscMailbox &) = delete;
    SpscMailbox &operator=(const SpscMailbox &) = delete;

    ~SpscMailbox()
    {
        T scratch;
        while (tryPop(scratch)) {
        }
    }

    std::size_t capacity() const { return cap; }

    /** Producer side. False when the ring is full. */
    bool
    tryPush(T &&v)
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        if (t - cachedHead == cap) {
            cachedHead = head.load(std::memory_order_acquire);
            if (t - cachedHead == cap)
                return false;
        }
        ::new (slots[t & mask].raw()) T(std::move(v));
        tail.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. False when the ring is empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        if (h == cachedTail) {
            cachedTail = tail.load(std::memory_order_acquire);
            if (h == cachedTail)
                return false;
        }
        T *p = std::launder(reinterpret_cast<T *>(slots[h & mask].raw()));
        out = std::move(*p);
        p->~T();
        head.store(h + 1, std::memory_order_release);
        return true;
    }

  private:
    struct Slot
    {
        alignas(alignof(T)) unsigned char buf[sizeof(T)];
        void *raw() { return static_cast<void *>(buf); }
    };

    std::unique_ptr<Slot[]> slots;
    std::size_t cap = 0;
    std::size_t mask = 0;

    /** Producer-owned line: tail plus its cached view of head. */
    alignas(64) std::atomic<std::size_t> tail{0};
    std::size_t cachedHead = 0;

    /** Consumer-owned line: head plus its cached view of tail. */
    alignas(64) std::atomic<std::size_t> head{0};
    std::size_t cachedTail = 0;
};

} // namespace dashsim

#endif // SIM_SPSC_HH
