/**
 * @file
 * Lightweight statistics primitives: scalar counters, averaging samples,
 * and fixed-bucket distributions (used for run lengths and miss
 * latencies, which the paper reports as medians/averages).
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dashsim {

/** A sampled statistic supporting count/sum/min/max/mean/median. */
class SampleStat
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        _min = _count == 1 ? v : std::min(_min, v);
        _max = _count == 1 ? v : std::max(_max, v);
        buckets[quantize(v)]++;
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minValue() const { return _count ? _min : 0.0; }
    double maxValue() const { return _count ? _max : 0.0; }

    /**
     * Approximate median from the quantized histogram.
     * Buckets are 1-wide up to 128 and exponential after that, which is
     * plenty for cycle-count distributions.
     */
    double
    median() const
    {
        if (!_count)
            return 0.0;
        std::uint64_t half = (_count + 1) / 2;
        std::uint64_t seen = 0;
        for (const auto &[bucket, n] : buckets) {
            seen += n;
            if (seen >= half)
                return static_cast<double>(bucket);
        }
        return _max;
    }

    void
    reset()
    {
        _count = 0;
        _sum = _min = _max = 0.0;
        buckets.clear();
    }

  private:
    static std::int64_t
    quantize(double v)
    {
        auto i = static_cast<std::int64_t>(v);
        if (i <= 128)
            return i;
        // Exponentially wider buckets past 128: keep the map small.
        std::int64_t w = 1;
        while ((128 << 1) * w <= i)
            w <<= 1;
        return i / w * w;
    }

    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::map<std::int64_t, std::uint64_t> buckets;
};

/**
 * Ratio helper: hits out of accesses, reported as a percentage.
 */
struct HitRate
{
    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;

    void record(bool hit) { accesses++; hits += hit ? 1 : 0; }

    double
    percent() const
    {
        return accesses ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

} // namespace dashsim

#endif // SIM_STATS_HH
