/**
 * @file
 * Lightweight statistics primitives: scalar counters, averaging samples,
 * and fixed-bucket distributions (used for run lengths and miss
 * latencies, which the paper reports as medians/averages).
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dashsim {

/**
 * A sampled statistic supporting count/sum/min/max/mean/median.
 *
 * The histogram behind median() quantizes samples into buckets that are
 * 1-wide up to 128 and exponentially wider after that (width 2^(L-7)
 * for values with bit-length L+1, i.e. 128 buckets per octave). The
 * buckets live in a flat vector addressed by a computed index — the
 * index is monotone in the sample value, so an in-order scan of the
 * vector walks the buckets in ascending value order — making sample()
 * an O(1) increment with no allocation in steady state (the old
 * std::map cost a node allocation and a tree walk per new bucket).
 * Negative samples (never produced by the simulator's cycle counts)
 * fall back to an ordered map so the quantization contract holds for
 * any input.
 */
class SampleStat
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        _min = _count == 1 ? v : std::min(_min, v);
        _max = _count == 1 ? v : std::max(_max, v);
        if (v < 0.0) {
            // Floor, don't truncate: casting -0.5 to int64 yields 0,
            // which would bin a negative sample at non-negative index 0
            // and skew median() across the sign boundary.
            negBuckets[static_cast<std::int64_t>(std::floor(v))]++;
            return;
        }
        auto i = static_cast<std::int64_t>(v);
        std::size_t idx = bucketIndex(static_cast<std::uint64_t>(i));
        if (idx >= buckets.size())
            buckets.resize(idx + 1, 0);
        buckets[idx]++;
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minValue() const { return _count ? _min : 0.0; }
    double maxValue() const { return _count ? _max : 0.0; }

    /**
     * Approximate median from the quantized histogram.
     */
    double
    median() const
    {
        if (!_count)
            return 0.0;
        std::uint64_t half = (_count + 1) / 2;
        std::uint64_t seen = 0;
        for (const auto &[bucket, n] : negBuckets) {
            seen += n;
            if (seen >= half)
                return static_cast<double>(bucket);
        }
        for (std::size_t idx = 0; idx < buckets.size(); ++idx) {
            seen += buckets[idx];
            if (buckets[idx] && seen >= half)
                return static_cast<double>(bucketValue(idx));
        }
        return _max;
    }

    void
    reset()
    {
        _count = 0;
        _sum = _min = _max = 0.0;
        buckets.clear();
        negBuckets.clear();
    }

    /** Checkpoint serialization (core/checkpoint.hh Writer/Reader). */
    template <class W>
    void
    saveState(W &w) const
    {
        w.u64(_count);
        w.f64(_sum);
        w.f64(_min);
        w.f64(_max);
        w.u64(buckets.size());
        for (auto b : buckets)
            w.u64(b);
        w.u64(negBuckets.size());
        for (const auto &[k, n] : negBuckets) {
            w.i64(k);
            w.u64(n);
        }
    }

    template <class R>
    void
    loadState(R &r)
    {
        _count = r.u64();
        _sum = r.f64();
        _min = r.f64();
        _max = r.f64();
        buckets.assign(r.u64(), 0);
        for (auto &b : buckets)
            b = r.u64();
        negBuckets.clear();
        for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
            auto k = r.i64();
            negBuckets[k] = r.u64();
        }
    }

  private:
    /**
     * Flat index of the bucket holding non-negative value @p i.
     * Values 0..255 get 1-wide buckets at index == value; values with
     * bit-length L+1 >= 9 land in 128 buckets of width 2^(L-7) per
     * octave, appended octave after octave.
     */
    static std::size_t
    bucketIndex(std::uint64_t i)
    {
        if (i < 256)
            return static_cast<std::size_t>(i);
        const unsigned L = std::bit_width(i) - 1;       // >= 8
        const unsigned shift = L - 7;                   // log2(width)
        return 256 + (L - 8) * 128 +
               static_cast<std::size_t>((i - (std::uint64_t{1} << L)) >>
                                        shift);
    }

    /** Lower bound of the bucket at @p idx (inverse of bucketIndex). */
    static std::uint64_t
    bucketValue(std::size_t idx)
    {
        if (idx < 256)
            return idx;
        const unsigned L = 8 + static_cast<unsigned>((idx - 256) / 128);
        const std::uint64_t off = (idx - 256) % 128;
        return (std::uint64_t{1} << L) + (off << (L - 7));
    }

    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::vector<std::uint64_t> buckets;  ///< non-negative samples
    std::map<std::int64_t, std::uint64_t> negBuckets;  ///< cold fallback
};

/**
 * Ratio helper: hits out of accesses, reported as a percentage.
 */
struct HitRate
{
    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;

    void record(bool hit) { accesses++; hits += hit ? 1 : 0; }

    double
    percent() const
    {
        return accesses ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    template <class W>
    void
    saveState(W &w) const
    {
        w.u64(hits);
        w.u64(accesses);
    }

    template <class R>
    void
    loadState(R &r)
    {
        hits = r.u64();
        accesses = r.u64();
    }
};

} // namespace dashsim

#endif // SIM_STATS_HH
