/**
 * @file
 * Fundamental simulator-wide types and constants.
 *
 * One simulated processor clock (pclock) is 30 ns (33 MHz MIPS R3000),
 * matching the DASH prototype parameters used by the paper.
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace dashsim {

/** Simulated time, in processor clock cycles (pclocks). */
using Tick = std::uint64_t;

/** A simulated physical address in the shared address space. */
using Addr = std::uint64_t;

/** Identifier of a processing node (0-based). */
using NodeId = std::uint32_t;

/** Identifier of a hardware context within a processor (0-based). */
using ContextId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel node id meaning "no node". */
inline constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Cache line size in bytes; both cache levels use 16-byte lines. */
inline constexpr unsigned lineBytes = 16;

/** log2(lineBytes), for line-address arithmetic. */
inline constexpr unsigned lineShift = 4;

/** Page size used by the round-robin page allocator. */
inline constexpr unsigned pageBytes = 4096;

/** Return the line-aligned address containing @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Return the line index (address >> lineShift) of @p a. */
constexpr Addr
lineIndex(Addr a)
{
    return a >> lineShift;
}

} // namespace dashsim

#endif // SIM_TYPES_HH
