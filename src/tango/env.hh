/**
 * @file
 * The application-facing execution environment: typed awaitables for
 * shared-memory reads/writes, compute cycles, synchronization, and
 * software prefetch.
 *
 * Every simulated process receives an Env bound to its hardware
 * context. `co_await env.read<T>(a)` behaves like a blocking load on
 * the simulated machine: the coroutine resumes only when the
 * architecture model says the load completed, and the value returned
 * is the one globally visible at that simulated time.
 *
 * Instruction fetches and private-data references are not sent to the
 * cache simulator (paper Section 2.3, footnote 2); applications charge
 * them as busy time with env.compute(n).
 */

#ifndef TANGO_ENV_HH
#define TANGO_ENV_HH

#include <bit>
#include <coroutine>
#include <cstdint>
#include <type_traits>

#include "cpu/processor.hh"
#include "mem/mem_system.hh"
#include "sim/types.hh"
#include "tango/process.hh"
#include "tango/trace_sink.hh"

namespace dashsim {

namespace aw {

/** Charge @p n busy cycles; never suspends. */
struct Compute
{
    Context *c;
    Tick n;

    bool
    await_ready() const
    {
        c->proc->addBusy(c, n);
        return true;
    }

    void await_suspend(std::coroutine_handle<>) const {}
    void await_resume() const {}
};

/** Blocking shared read of a T. */
template <typename T>
struct Read
{
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);

    Context *c;
    Addr a;

    bool await_ready() const { return c->proc->fastRead(c, a, sizeof(T)); }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        c->proc->suspendRead(c, a, sizeof(T), h);
    }

    T
    await_resume() const
    {
        if constexpr (sizeof(T) == 8) {
            return std::bit_cast<T>(c->readValue);
        } else {
            using U = std::conditional_t<
                sizeof(T) == 4, std::uint32_t,
                std::conditional_t<sizeof(T) == 2, std::uint16_t,
                                   std::uint8_t>>;
            return std::bit_cast<T>(static_cast<U>(c->readValue));
        }
    }
};

/** Shared write (buffered under RC, stalling under SC). */
struct Write
{
    Context *c;
    Addr a;
    std::uint64_t v;
    unsigned size;
    bool release;

    bool
    await_ready() const
    {
        if (!c->proc->buffered())
            return false;
        return c->proc->fastWrite(c, a, v, size, release);
    }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        if (c->proc->buffered()) {
            // The write was enqueued by fastWrite; we only wait for the
            // write-buffer slot that it reported.
            c->proc->suspendWriteStall(c, h);
        } else {
            c->proc->suspendWrite(c, a, v, size, release, h);
        }
    }

    void await_resume() const {}
};

/**
 * Atomic read-modify-write; resumes with the old value.
 *
 * Acquire-type operations report to the trace sink on *resume* rather
 * than on issue: a lock acquisition is ordered after the release that
 * handed it over, and recording at issue would let a happens-before
 * analysis see the acquire before the release it synchronized with.
 */
struct Rmw
{
    Context *c;
    Addr a;
    RmwOp op;
    std::uint64_t operand;
    unsigned size;
    TraceSink *sink = nullptr;
    unsigned pid = 0;
    TraceOp traceOp{};

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        c->proc->suspendRmw(c, a, op, operand, size, h);
    }

    std::uint64_t
    await_resume() const
    {
        if (sink)
            sink->record(pid, traceOp);
        return c->rmwOld;
    }
};

/** Acquire a spin lock (test&set with invalidation wakeup). */
struct Lock
{
    Context *c;
    Addr a;
    TraceSink *sink = nullptr;
    unsigned pid = 0;
    TraceOp traceOp{};

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        c->proc->suspendLock(c, a, h);
    }

    void
    await_resume() const
    {
        // Recorded at resume: the acquire is ordered after the release
        // that made the lock available (see aw::Rmw).
        if (sink)
            sink->record(pid, traceOp);
    }
};

/** Arrive at a sense-reversing barrier with @p n participants. */
struct Barrier
{
    Context *c;
    Addr a;
    std::uint32_t n;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        c->proc->suspendBarrier(c, a, n, h);
    }

    void await_resume() const {}
};

/**
 * Yield the processor for a fixed number of cycles. compute() never
 * suspends (busy cycles accrue within the current grant), so a loop of
 * computes spins without ever letting simulated time advance; pause()
 * is the primitive for polling simulator-level state (e.g. the trace
 * replayer's sync-order gate).
 */
struct Pause
{
    Context *c;
    Tick n;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        c->proc->suspendPause(c, n, h);
    }

    void await_resume() const {}
};

/** Software prefetch; suspends only when the prefetch buffer is full. */
struct Prefetch
{
    Context *c;
    Addr a;
    bool exclusive;

    bool
    await_ready() const
    {
        return c->proc->fastPrefetch(c, a, exclusive);
    }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        c->proc->suspendPrefetchStall(c, h);
    }

    void await_resume() const {}
};

} // namespace aw

/**
 * Per-process handle onto the simulated machine.
 */
class Env
{
  public:
    Env(Context *ctx, MemorySystem *mem, unsigned pid, unsigned nprocs,
        TraceSink *sink = nullptr)
        : ctx(ctx), memsys(mem), _pid(pid), _nprocs(nprocs), sink(sink)
    {}

    /** Process id within the application (0-based). */
    unsigned pid() const { return _pid; }

    /** Total number of application processes. */
    unsigned nprocs() const { return _nprocs; }

    /** Node this process's context lives on. */
    NodeId node() const { return ctx->proc->nodeId(); }

    /** Whether the application should issue software prefetches. */
    bool prefetching() const { return ctx->proc->config().prefetch; }

    /** Direct (untimed) access to backing memory, for setup/verify. */
    SharedMemory &rawMemory() { return memsys->memory(); }

    // --- awaitables ---

    /** Execute @p n cycles of private computation. */
    aw::Compute
    compute(Tick n) const
    {
        if (sink)
            sink->computeCycles(_pid, n);
        return {ctx, n};
    }

    /** Block for @p n cycles, yielding the processor (see aw::Pause). */
    aw::Pause
    pause(Tick n) const
    {
        return {ctx, n};
    }

    /** Blocking shared load. */
    template <typename T>
    aw::Read<T>
    read(Addr a) const
    {
        note(TraceOp::Kind::Read, a, 0, sizeof(T));
        return {ctx, a};
    }

    /**
     * Blocking shared load annotated as deliberately unsynchronized
     * (a racy fast-path probe, like PTHOR's queue-length estimate).
     * Identical timing to read(); the happens-before race detector
     * treats it as benign instead of flagging a data race.
     */
    template <typename T>
    aw::Read<T>
    readRacy(Addr a) const
    {
        note(TraceOp::Kind::ReadRacy, a, 0, sizeof(T));
        return {ctx, a};
    }

    /** Shared store. */
    template <typename T>
    aw::Write
    write(Addr a, T v) const
    {
        std::uint64_t raw = rawOf(v);
        note(TraceOp::Kind::Write, a, raw, sizeof(T));
        return {ctx, a, raw, sizeof(T), false};
    }

    /**
     * Shared store annotated as deliberately unsynchronized (e.g.
     * MP3D's per-cell statistics, where the original program accepts
     * occasional lost updates rather than pay for a lock). Identical
     * timing to write(); exempt from race detection.
     */
    template <typename T>
    aw::Write
    writeRacy(Addr a, T v) const
    {
        std::uint64_t raw = rawOf(v);
        note(TraceOp::Kind::WriteRacy, a, raw, sizeof(T));
        return {ctx, a, raw, sizeof(T), false};
    }

    /** Atomic fetch&add on a 32-bit counter; resumes with old value. */
    aw::Rmw
    fetchAdd(Addr a, std::uint32_t delta) const
    {
        return {ctx,  a, RmwOp::FetchAdd, delta, 4, sink, _pid,
                makeOp(TraceOp::Kind::FetchAdd, a, delta, 4)};
    }

    /** Atomic test&set on a 32-bit word; resumes with old value. */
    aw::Rmw
    testAndSet(Addr a) const
    {
        return {ctx,  a, RmwOp::TestAndSet, 0, 4, sink, _pid,
                makeOp(TraceOp::Kind::TestAndSet, a, 0, 4)};
    }

    /**
     * Release-classified shared store: under RC it retires only after
     * every earlier write has completed and been acknowledged, making
     * it safe to publish data (e.g. LU's produced-column flags).
     */
    template <typename T>
    aw::Write
    writeRelease(Addr a, T v) const
    {
        std::uint64_t raw = rawOf(v);
        note(TraceOp::Kind::WriteRelease, a, raw, sizeof(T));
        return {ctx, a, raw, sizeof(T), true};
    }

    /**
     * Acquire-style wait until the 32-bit flag at @p a holds @p value.
     * Spins on the cached copy with invalidation wakeup; counted as a
     * lock acquisition in the statistics (Table 2).
     */
    struct WaitFlagAw
    {
        Context *c;
        Addr a;
        std::uint32_t value;
        TraceSink *sink = nullptr;
        unsigned pid = 0;
        TraceOp traceOp{};

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            c->proc->suspendWaitFlag(c, a, value, h);
        }

        void
        await_resume() const
        {
            // Acquire: recorded at resume, after the release that set
            // the flag (see aw::Rmw).
            if (sink)
                sink->record(pid, traceOp);
        }
    };

    WaitFlagAw
    waitFlag(Addr a, std::uint32_t value) const
    {
        return {ctx, a, value, sink, _pid,
                makeOp(TraceOp::Kind::WaitFlag, a, value, 4)};
    }

    /**
     * Acquire a DASH queue-based lock: the home directory queues
     * waiters and a release hands the lock to exactly one of them
     * (Section 4.2 of the DASH protocol paper). Compare with lock(),
     * the software test&test&set.
     */
    struct QueuedLockAw
    {
        Context *c;
        Addr a;
        bool acquire;
        TraceSink *sink = nullptr;
        unsigned pid = 0;
        TraceOp traceOp{};

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            if (acquire)
                c->proc->suspendQueuedLock(c, a, h);
            else
                c->proc->suspendQueuedUnlock(c, a, h);
        }

        void
        await_resume() const
        {
            // Acquires are recorded at resume (grant time); releases at
            // issue would be fine but the symmetric point is harmless.
            if (sink)
                sink->record(pid, traceOp);
        }
    };

    QueuedLockAw
    lockQueued(Addr a) const
    {
        return {ctx, a, true, sink, _pid,
                makeOp(TraceOp::Kind::QueuedLock, a, 0, 4)};
    }

    QueuedLockAw
    unlockQueued(Addr a) const
    {
        // The release must be visible to the sink before any later
        // acquire of the same lock resumes; record it at issue.
        note(TraceOp::Kind::QueuedUnlock, a, 0, 4);
        return {ctx, a, false};
    }

    /** Acquire the spin lock at @p a. */
    aw::Lock
    lock(Addr a) const
    {
        return {ctx, a, sink, _pid, makeOp(TraceOp::Kind::Lock, a, 0, 4)};
    }

    /**
     * Release the spin lock at @p a: a release-classified write of 0.
     * Under RC it retires through the write buffer after all earlier
     * writes complete and their invalidations are acknowledged.
     */
    aw::Write
    unlock(Addr a) const
    {
        note(TraceOp::Kind::Unlock, a, 0, 4);
        return {ctx, a, 0, 4, true};
    }

    /** Arrive at the barrier record at @p a (see Sync::allocBarrier). */
    aw::Barrier
    barrier(Addr a, std::uint32_t participants) const
    {
        note(TraceOp::Kind::Barrier, a, participants, 4);
        return {ctx, a, participants};
    }

    /** Non-binding read prefetch of the line containing @p a. */
    aw::Prefetch
    prefetch(Addr a) const
    {
        note(TraceOp::Kind::Prefetch, a, 0, 0);
        return {ctx, a, false};
    }

    /** Read-exclusive prefetch (acquires ownership, Section 5.1). */
    aw::Prefetch
    prefetchEx(Addr a) const
    {
        note(TraceOp::Kind::PrefetchEx, a, 0, 0);
        return {ctx, a, true};
    }

  private:
    /** Bit-pattern of a trivially copyable value up to 8 bytes. */
    template <typename T>
    static std::uint64_t
    rawOf(T v)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        if constexpr (sizeof(T) == 8) {
            return std::bit_cast<std::uint64_t>(v);
        } else {
            using U = std::conditional_t<
                sizeof(T) == 4, std::uint32_t,
                std::conditional_t<sizeof(T) == 2, std::uint16_t,
                                   std::uint8_t>>;
            return std::bit_cast<U>(v);
        }
    }

    /** Build the TraceOp describing an operation. */
    static TraceOp
    makeOp(TraceOp::Kind k, Addr a, std::uint64_t operand, unsigned size)
    {
        TraceOp op;
        op.kind = k;
        op.size = static_cast<std::uint8_t>(size ? size : 4);
        op.addr = a;
        op.operand = operand;
        return op;
    }

    /** Report an operation to the installed trace sink, if any. */
    void
    note(TraceOp::Kind k, Addr a, std::uint64_t operand,
         unsigned size) const
    {
        if (sink)
            sink->record(_pid, makeOp(k, a, operand, size));
    }

    Context *ctx;
    MemorySystem *memsys;
    unsigned _pid;
    unsigned _nprocs;
    TraceSink *sink;
};

} // namespace dashsim

#endif // TANGO_ENV_HH
