/**
 * @file
 * Coroutine types for execution-driven simulation (our stand-in for the
 * Tango reference generator [9]).
 *
 * Each simulated process is a C++20 coroutine (SimProcess) bound to one
 * hardware context. The process issues memory operations by co_awaiting
 * Env awaitables; the processor model decides when (in simulated time)
 * the operation completes and resumes the coroutine from an event. This
 * guarantees the correct interleaving of accesses: a process doing a
 * read is blocked until the architecture simulator says the read is
 * done, exactly as in Tango.
 */

#ifndef TANGO_PROCESS_HH
#define TANGO_PROCESS_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace dashsim {

/**
 * Top-level simulated process. Created suspended; the Machine binds it
 * to a context and resumes it through the processor's scheduler.
 */
class SimProcess
{
  public:
    struct promise_type
    {
        SimProcess
        get_return_object()
        {
            return SimProcess{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    SimProcess() = default;

    explicit SimProcess(std::coroutine_handle<promise_type> h) : h(h) {}

    SimProcess(SimProcess &&o) noexcept : h(std::exchange(o.h, nullptr)) {}

    SimProcess &
    operator=(SimProcess &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h = std::exchange(o.h, nullptr);
        }
        return *this;
    }

    SimProcess(const SimProcess &) = delete;
    SimProcess &operator=(const SimProcess &) = delete;

    ~SimProcess() { destroy(); }

    /** Underlying coroutine handle (type-erased). */
    std::coroutine_handle<> handle() const { return h; }

    bool done() const { return !h || h.done(); }

  private:
    void
    destroy()
    {
        if (h)
            h.destroy();
        h = nullptr;
    }

    std::coroutine_handle<promise_type> h;
};

/**
 * A nested coroutine: lets application code factor phases into helper
 * coroutines. `co_await some_subtask(...)` transfers control into the
 * subtask; when it finishes it symmetrically transfers back to the
 * awaiting coroutine, so the processor model only ever sees the
 * innermost suspended handle.
 */
class [[nodiscard]] SubTask
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        SubTask
        get_return_object()
        {
            return SubTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                return h.promise().continuation;
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    explicit SubTask(std::coroutine_handle<promise_type> h) : h(h) {}

    SubTask(SubTask &&o) noexcept : h(std::exchange(o.h, nullptr)) {}
    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    SubTask &operator=(SubTask &&) = delete;

    ~SubTask()
    {
        if (h)
            h.destroy();
    }

    // --- awaitable protocol ---
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        h.promise().continuation = cont;
        return h;
    }

    void await_resume() const noexcept {}

  private:
    std::coroutine_handle<promise_type> h;
};

} // namespace dashsim

#endif // TANGO_PROCESS_HH
