#include "tango/sync.hh"

namespace dashsim {
namespace sync {

Addr
allocLock(SharedMemory &mem)
{
    Addr a = mem.allocRoundRobin(lineBytes, lineBytes);
    mem.store<std::uint32_t>(a, 0);
    return a;
}

Addr
allocLock(SharedMemory &mem, NodeId node)
{
    Addr a = mem.allocLocal(lineBytes, node, lineBytes);
    mem.store<std::uint32_t>(a, 0);
    return a;
}

Addr
allocBarrier(SharedMemory &mem)
{
    Addr a = mem.allocRoundRobin(2 * lineBytes, lineBytes);
    mem.store<std::uint32_t>(a, 0);              // arrival count
    mem.store<std::uint32_t>(a + lineBytes, 0);  // sense flag
    return a;
}

TaskQueue
allocTaskQueue(SharedMemory &mem, std::uint32_t capacity, NodeId node)
{
    fatal_if(capacity == 0, "task queue needs capacity > 0");
    TaskQueue q;
    q.capacity = capacity;
    q.base = mem.allocLocal(2 * lineBytes + 8 * capacity, node, lineBytes);
    mem.store<std::uint32_t>(q.lockAddr(), 0);
    mem.store<std::uint32_t>(q.headAddr(), 0);
    mem.store<std::uint32_t>(q.tailAddr(), 0);
    return q;
}

SubTask
push(Env env, TaskQueue q, std::uint64_t item, bool &ok)
{
    co_await env.lock(q.lockAddr());
    co_await env.compute(2);
    auto head = co_await env.read<std::uint32_t>(q.headAddr());
    auto tail = co_await env.read<std::uint32_t>(q.tailAddr());
    if (tail - head >= q.capacity) {
        ok = false;
    } else {
        co_await env.compute(3);  // index arithmetic
        co_await env.write<std::uint64_t>(q.slotAddr(tail), item);
        co_await env.write<std::uint32_t>(q.tailAddr(), tail + 1);
        ok = true;
    }
    co_await env.unlock(q.lockAddr());
}

SubTask
pop(Env env, TaskQueue q, std::uint64_t &item, bool &ok)
{
    co_await env.lock(q.lockAddr());
    co_await env.compute(2);
    auto head = co_await env.read<std::uint32_t>(q.headAddr());
    auto tail = co_await env.read<std::uint32_t>(q.tailAddr());
    if (head == tail) {
        ok = false;
    } else {
        co_await env.compute(3);
        item = co_await env.read<std::uint64_t>(q.slotAddr(head));
        co_await env.write<std::uint32_t>(q.headAddr(), head + 1);
        ok = true;
    }
    co_await env.unlock(q.lockAddr());
}

SubTask
lengthEstimate(Env env, TaskQueue q, std::uint32_t &len)
{
    // Deliberately unsynchronized peek at head/tail (PTHOR-style
    // scheduling heuristic). The readRacy annotation marks the race as
    // intentional so the program stays "properly labeled".
    auto head = co_await env.readRacy<std::uint32_t>(q.headAddr());
    auto tail = co_await env.readRacy<std::uint32_t>(q.tailAddr());
    len = tail - head;
    co_await env.compute(2);
}

} // namespace sync
} // namespace dashsim
