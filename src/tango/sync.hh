/**
 * @file
 * Synchronization and sharing primitives, standing in for the Argonne
 * National Laboratory macro package the benchmarks use (paper Section
 * 2.2, [19]): spin locks, sense-reversing barriers, and lock-protected
 * shared task queues (used by PTHOR's scheduler).
 *
 * Locks and barriers are *architectural* primitives of the processor
 * model (acquire = test&set RMW, release = release-classified write),
 * so their timing follows the consistency model exactly; this file
 * provides their shared-memory allocation and the composite task queue
 * built from them.
 */

#ifndef TANGO_SYNC_HH
#define TANGO_SYNC_HH

#include <cstdint>

#include "mem/shared_memory.hh"
#include "sim/types.hh"
#include "tango/env.hh"
#include "tango/process.hh"

namespace dashsim {
namespace sync {

/** Allocate a spin lock (one cache line, initialized free). */
Addr allocLock(SharedMemory &mem);

/** Allocate a spin lock on a specific node. */
Addr allocLock(SharedMemory &mem, NodeId node);

/**
 * Allocate a barrier record: an arrival counter and a sense flag on
 * separate cache lines (so waiters spin only on the sense line).
 */
Addr allocBarrier(SharedMemory &mem);

/**
 * A bounded FIFO task queue in shared memory, protected by a spin
 * lock. Layout: line 0 = lock, line 1 = head/tail/capacity, then the
 * 64-bit item slots.
 */
struct TaskQueue
{
    Addr base = 0;
    std::uint32_t capacity = 0;

    Addr lockAddr() const { return base; }
    Addr headAddr() const { return base + lineBytes; }
    Addr tailAddr() const { return base + lineBytes + 4; }
    Addr slotAddr(std::uint32_t i) const
    {
        return base + 2 * lineBytes + 8 * (i % capacity);
    }
};

/** Allocate a task queue with @p capacity slots on @p node. */
TaskQueue allocTaskQueue(SharedMemory &mem, std::uint32_t capacity,
                         NodeId node);

/**
 * Push @p item; sets @p ok to false if the queue was full.
 * Lock-protected: counts as one lock acquisition (Table 2).
 */
SubTask push(Env env, TaskQueue q, std::uint64_t item, bool &ok);

/**
 * Pop into @p item; sets @p ok to false if the queue was empty.
 */
SubTask pop(Env env, TaskQueue q, std::uint64_t &item, bool &ok);

/**
 * Length probe without taking the lock (a racy read, like the real
 * PTHOR's fast-path emptiness check before locking).
 */
SubTask lengthEstimate(Env env, TaskQueue q, std::uint32_t &len);

} // namespace sync
} // namespace dashsim

#endif // TANGO_SYNC_HH
