#include "tango/trace.hh"

#include <cstdio>

namespace dashsim {

// ---------------------------------------------------------------------
// TraceRecorder.
// ---------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::unique_ptr<Workload> inner)
    : inner(std::move(inner))
{
    fatal_if(!this->inner, "TraceRecorder needs a workload to record");
}

TraceRecorder::~TraceRecorder() = default;

std::string
TraceRecorder::name() const
{
    return inner->name() + "-record";
}

void
TraceRecorder::setup(Machine &m)
{
    inner->setup(m);
    // Snapshot the freshly initialized shared memory so the replay can
    // reproduce both placement and data values.
    const SharedMemory &mem = m.memory();
    trace.footprint = mem.footprint();
    trace.pageHomes = mem.pageHomesSnapshot();
    trace.initialImage = mem.imageSnapshot();
    trace.procs.assign(m.numProcesses(), {});
    pendingCompute.assign(m.numProcesses(), 0);
    m.setTraceSink(this);
}

SimProcess
TraceRecorder::run(Env env)
{
    return inner->run(env);
}

void
TraceRecorder::verify(Machine &m)
{
    m.setTraceSink(nullptr);
    inner->verify(m);
}

void
TraceRecorder::record(unsigned pid, const TraceOp &op)
{
    TraceOp copy = op;
    copy.compute =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            pendingCompute[pid], UINT32_MAX));
    pendingCompute[pid] = 0;
    // Lock acquisitions reach the sink at grant time, so a running
    // per-lock counter captures the grant order; the ticket rides in
    // the (otherwise unused) operand so TraceWorkload can optionally
    // re-impose that order on a machine with different timing.
    if (op.kind == TraceOp::Kind::Lock ||
        op.kind == TraceOp::Kind::QueuedLock)
        copy.operand = lockSeq[op.addr]++;
    trace.procs[pid].push_back(copy);
}

void
TraceRecorder::computeCycles(unsigned pid, Tick n)
{
    pendingCompute[pid] += n;
}

// ---------------------------------------------------------------------
// TraceWorkload.
// ---------------------------------------------------------------------

TraceWorkload::TraceWorkload(Trace t) : trace(std::move(t)) {}

void
TraceWorkload::setup(Machine &m)
{
    fatal_if(m.numProcesses() != trace.procs.size(),
             "trace has %zu process streams but the machine provides %u",
             trace.procs.size(), m.numProcesses());
    SharedMemory &mem = m.memory();
    fatal_if(mem.footprint() != 0,
             "trace replay needs a fresh machine (memory already "
             "allocated)");
    mem.mirrorPages(trace.pageHomes, trace.footprint);
    mem.restoreImage(trace.initialImage);
}

SimProcess
TraceWorkload::run(Env env)
{
    const auto &ops = trace.procs[env.pid()];
    for (const TraceOp &op : ops) {
        if (op.compute)
            co_await env.compute(op.compute);
        switch (op.kind) {
          case TraceOp::Kind::Read:
            switch (op.size) {
              case 1:
                (void)co_await env.read<std::uint8_t>(op.addr);
                break;
              case 2:
                (void)co_await env.read<std::uint16_t>(op.addr);
                break;
              case 4:
                (void)co_await env.read<std::uint32_t>(op.addr);
                break;
              default:
                (void)co_await env.read<std::uint64_t>(op.addr);
                break;
            }
            break;
          case TraceOp::Kind::Write:
          case TraceOp::Kind::WriteRelease: {
            bool release = op.kind == TraceOp::Kind::WriteRelease;
            switch (op.size) {
              case 1:
                if (release)
                    co_await env.writeRelease<std::uint8_t>(
                        op.addr, static_cast<std::uint8_t>(op.operand));
                else
                    co_await env.write<std::uint8_t>(
                        op.addr, static_cast<std::uint8_t>(op.operand));
                break;
              case 2:
                if (release)
                    co_await env.writeRelease<std::uint16_t>(
                        op.addr,
                        static_cast<std::uint16_t>(op.operand));
                else
                    co_await env.write<std::uint16_t>(
                        op.addr,
                        static_cast<std::uint16_t>(op.operand));
                break;
              case 4:
                if (release)
                    co_await env.writeRelease<std::uint32_t>(
                        op.addr,
                        static_cast<std::uint32_t>(op.operand));
                else
                    co_await env.write<std::uint32_t>(
                        op.addr,
                        static_cast<std::uint32_t>(op.operand));
                break;
              default:
                if (release)
                    co_await env.writeRelease<std::uint64_t>(op.addr,
                                                             op.operand);
                else
                    co_await env.write<std::uint64_t>(op.addr,
                                                      op.operand);
                break;
            }
            break;
          }
          case TraceOp::Kind::Lock:
            if (enforceSyncOrder)
                while (grantSeq[op.addr] != op.operand)
                    co_await env.pause(8);
            co_await env.lock(op.addr);
            break;
          case TraceOp::Kind::Unlock:
            co_await env.unlock(op.addr);
            if (enforceSyncOrder)
                grantSeq[op.addr]++;
            break;
          case TraceOp::Kind::Barrier:
            co_await env.barrier(
                op.addr, static_cast<std::uint32_t>(op.operand));
            break;
          case TraceOp::Kind::WaitFlag:
            co_await env.waitFlag(
                op.addr, static_cast<std::uint32_t>(op.operand));
            break;
          case TraceOp::Kind::Prefetch:
            co_await env.prefetch(op.addr);
            break;
          case TraceOp::Kind::PrefetchEx:
            co_await env.prefetchEx(op.addr);
            break;
          case TraceOp::Kind::FetchAdd:
            (void)co_await env.fetchAdd(
                op.addr, static_cast<std::uint32_t>(op.operand));
            break;
          case TraceOp::Kind::TestAndSet:
            (void)co_await env.testAndSet(op.addr);
            break;
          case TraceOp::Kind::QueuedLock:
            if (enforceSyncOrder)
                while (grantSeq[op.addr] != op.operand)
                    co_await env.pause(8);
            co_await env.lockQueued(op.addr);
            break;
          case TraceOp::Kind::QueuedUnlock:
            co_await env.unlockQueued(op.addr);
            if (enforceSyncOrder)
                grantSeq[op.addr]++;
            break;
          case TraceOp::Kind::ReadRacy:
            switch (op.size) {
              case 1:
                (void)co_await env.readRacy<std::uint8_t>(op.addr);
                break;
              case 2:
                (void)co_await env.readRacy<std::uint16_t>(op.addr);
                break;
              case 4:
                (void)co_await env.readRacy<std::uint32_t>(op.addr);
                break;
              default:
                (void)co_await env.readRacy<std::uint64_t>(op.addr);
                break;
            }
            break;
          case TraceOp::Kind::WriteRacy:
            switch (op.size) {
              case 1:
                co_await env.writeRacy<std::uint8_t>(
                    op.addr, static_cast<std::uint8_t>(op.operand));
                break;
              case 2:
                co_await env.writeRacy<std::uint16_t>(
                    op.addr, static_cast<std::uint16_t>(op.operand));
                break;
              case 4:
                co_await env.writeRacy<std::uint32_t>(
                    op.addr, static_cast<std::uint32_t>(op.operand));
                break;
              default:
                co_await env.writeRacy<std::uint64_t>(op.addr,
                                                      op.operand);
                break;
            }
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------

namespace {

constexpr std::uint64_t traceMagic = 0x4454524330303031ull;  // "DTRC0001"

void
put(std::FILE *f, const void *p, std::size_t n)
{
    if (std::fwrite(p, 1, n, f) != n)
        fatal("trace write failed");
}

void
get(std::FILE *f, void *p, std::size_t n)
{
    if (std::fread(p, 1, n, f) != n)
        fatal("trace read failed (truncated file?)");
}

template <typename T>
void
putv(std::FILE *f, const T &v)
{
    put(f, &v, sizeof(T));
}

template <typename T>
T
getv(std::FILE *f)
{
    T v{};
    get(f, &v, sizeof(T));
    return v;
}

} // namespace

void
saveTrace(const Trace &t, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    fatal_if(!f, "cannot open %s for writing", path.c_str());
    putv(f, traceMagic);
    putv(f, t.footprint);
    putv<std::uint64_t>(f, t.pageHomes.size());
    put(f, t.pageHomes.data(), t.pageHomes.size() * sizeof(NodeId));
    putv<std::uint64_t>(f, t.initialImage.size());
    put(f, t.initialImage.data(), t.initialImage.size());
    putv<std::uint64_t>(f, t.procs.size());
    for (const auto &ops : t.procs) {
        putv<std::uint64_t>(f, ops.size());
        put(f, ops.data(), ops.size() * sizeof(TraceOp));
    }
    std::fclose(f);
}

Trace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(!f, "cannot open %s", path.c_str());
    fatal_if(getv<std::uint64_t>(f) != traceMagic,
             "%s is not a dashsim trace", path.c_str());
    Trace t;
    t.footprint = getv<std::uint64_t>(f);
    t.pageHomes.resize(getv<std::uint64_t>(f));
    get(f, t.pageHomes.data(), t.pageHomes.size() * sizeof(NodeId));
    t.initialImage.resize(getv<std::uint64_t>(f));
    get(f, t.initialImage.data(), t.initialImage.size());
    t.procs.resize(getv<std::uint64_t>(f));
    for (auto &ops : t.procs) {
        ops.resize(getv<std::uint64_t>(f));
        get(f, ops.data(), ops.size() * sizeof(TraceOp));
    }
    std::fclose(f);
    return t;
}

} // namespace dashsim
