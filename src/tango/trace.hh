/**
 * @file
 * Trace recording and trace-driven replay.
 *
 * Tango [9] supported both execution-driven and trace-driven
 * simulation. This module provides the trace side: a TraceRecorder
 * wraps any Workload and logs every shared-memory operation each
 * process performs (with the busy cycles between operations), and a
 * TraceWorkload replays such a trace against any machine
 * configuration.
 *
 * Replay is *timing-directed but order-fixed*: each process re-issues
 * its recorded operations in order, with the recorded computation
 * between them, while the memory-system timing comes from the replay
 * machine. Synchronization operations are replayed as real locks and
 * barriers, so cross-process ordering is re-established on the replay
 * machine rather than frozen (the classic weakness of raw address
 * traces).
 *
 * The on-disk format is a simple versioned binary (native endianness;
 * not portable across architectures).
 */

#ifndef TANGO_TRACE_HH
#define TANGO_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/machine.hh"
#include "tango/trace_sink.hh"

namespace dashsim {

/** A complete multi-process trace. */
struct Trace
{
    /** Shared-memory footprint at record time (bytes, page 0 excluded). */
    std::uint64_t footprint = 0;
    /** Page home nodes at record time, so placement is reproduced. */
    std::vector<NodeId> pageHomes;
    /** Initial contents of the shared arena (so data values replay). */
    std::vector<std::uint8_t> initialImage;
    /** Per-process operation streams. */
    std::vector<std::vector<TraceOp>> procs;

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &p : procs)
            n += p.size();
        return n;
    }
};

/**
 * Records the operation stream of any workload by interposing on the
 * Env. Run it like a normal workload; afterwards take the trace.
 *
 *     TraceRecorder rec(std::make_unique<Mp3d>());
 *     Machine m(cfg);
 *     m.run(rec);
 *     Trace t = rec.takeTrace();
 */
class TraceRecorder : public Workload, private TraceSink
{
  public:
    explicit TraceRecorder(std::unique_ptr<Workload> inner);
    ~TraceRecorder() override;

    std::string name() const override;
    void setup(Machine &m) override;
    SimProcess run(Env env) override;
    void verify(Machine &m) override;

    /** The recorded trace (valid after the run completes). */
    Trace takeTrace() { return std::move(trace); }

  private:
    void record(unsigned pid, const TraceOp &op) override;
    void computeCycles(unsigned pid, Tick n) override;

    std::unique_ptr<Workload> inner;
    Trace trace;
    std::vector<std::uint64_t> pendingCompute;
    /** Per-lock grant tickets (lock acquires are recorded at grant). */
    std::unordered_map<Addr, std::uint32_t> lockSeq;
};

/**
 * Replays a Trace as a workload. The replay machine must provide the
 * same number of processes as the trace has streams.
 */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(Trace t);

    std::string name() const override { return "trace-replay"; }
    void setup(Machine &m) override;
    SimProcess run(Env env) override;

    const Trace &traceData() const { return trace; }

    /**
     * When set, lock acquisitions replay in their recorded grant order
     * (acquires are recorded at grant time, and each carries its
     * per-lock ticket in the operand field). Replaying on a machine
     * with different timing can otherwise grant contended locks in a
     * different order, and since replayed writes carry recorded
     * values, the last critical section to run decides the final
     * memory contents. Off by default because same-model replay relies
     * on re-running the contention (spins and all) to reproduce exact
     * timing.
     */
    bool enforceSyncOrder = false;

  private:
    Trace trace;
    /** Next ticket to grant per lock address (enforceSyncOrder). */
    std::unordered_map<Addr, std::uint32_t> grantSeq;
};

/** Serialize a trace to @p path. Throws via fatal() on I/O errors. */
void saveTrace(const Trace &t, const std::string &path);

/** Load a trace written by saveTrace. */
Trace loadTrace(const std::string &path);

} // namespace dashsim

#endif // TANGO_TRACE_HH
