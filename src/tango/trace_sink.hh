/**
 * @file
 * The minimal interface Env uses to report operations to a trace
 * recorder (kept separate from trace.hh so env.hh does not pull in the
 * whole trace machinery).
 */

#ifndef TANGO_TRACE_SINK_HH
#define TANGO_TRACE_SINK_HH

#include <cstdint>

#include "sim/types.hh"

namespace dashsim {

/** One recorded shared-memory operation. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Read,         ///< shared read (size bytes)
        Write,        ///< shared write (operand = value)
        WriteRelease, ///< release-classified write
        Lock,         ///< lock acquire at addr
        Unlock,       ///< lock release at addr
        Barrier,      ///< barrier arrival (operand = participants)
        WaitFlag,     ///< acquire-wait until *addr == operand
        Prefetch,     ///< read prefetch
        PrefetchEx,   ///< read-exclusive prefetch
        FetchAdd,     ///< atomic fetch&add (operand = delta)
        TestAndSet,   ///< atomic test&set
        QueuedLock,   ///< DASH queue-based lock acquire
        QueuedUnlock, ///< DASH queue-based lock release
        /**
         * A deliberately unsynchronized read (e.g. PTHOR's lock-free
         * queue-length estimate). Annotating such reads is what makes a
         * program "properly labeled" in the paper's sense: the
         * happens-before race detector treats them as benign.
         */
        ReadRacy,
        /**
         * A deliberately unsynchronized write (e.g. MP3D's lock-free
         * per-cell statistics accumulation, which the original program
         * tolerates losing updates on). The race-detector counterpart
         * of ReadRacy.
         */
        WriteRacy,
    };

    Kind kind = Kind::Read;
    std::uint8_t size = 4;       ///< access size for reads/writes
    std::uint16_t pad = 0;
    std::uint32_t compute = 0;   ///< busy cycles before this op
    Addr addr = 0;
    std::uint64_t operand = 0;

    bool
    operator==(const TraceOp &o) const
    {
        return kind == o.kind && size == o.size && compute == o.compute &&
               addr == o.addr && operand == o.operand;
    }
};

/** Receives the operation stream of every process during a run. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** @p pid performed @p op (op.compute already filled in). */
    virtual void record(unsigned pid, const TraceOp &op) = 0;

    /** @p pid executed @p n private busy cycles. */
    virtual void computeCycles(unsigned pid, Tick n) = 0;
};

/**
 * Fans one operation stream out to two sinks (e.g. a TraceRecorder the
 * workload installed plus the machine's own race detector).
 */
class TeeSink : public TraceSink
{
  public:
    TeeSink(TraceSink *first, TraceSink *second)
        : first(first), second(second)
    {}

    void
    record(unsigned pid, const TraceOp &op) override
    {
        if (first)
            first->record(pid, op);
        if (second)
            second->record(pid, op);
    }

    void
    computeCycles(unsigned pid, Tick n) override
    {
        if (first)
            first->computeCycles(pid, n);
        if (second)
            second->computeCycles(pid, n);
    }

  private:
    TraceSink *first;
    TraceSink *second;
};

} // namespace dashsim

#endif // TANGO_TRACE_SINK_HH
