/**
 * @file
 * The minimal interface Env uses to report operations to a trace
 * recorder (kept separate from trace.hh so env.hh does not pull in the
 * whole trace machinery).
 */

#ifndef TANGO_TRACE_SINK_HH
#define TANGO_TRACE_SINK_HH

#include <cstdint>

#include "sim/types.hh"

namespace dashsim {

/** One recorded shared-memory operation. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Read,         ///< shared read (size bytes)
        Write,        ///< shared write (operand = value)
        WriteRelease, ///< release-classified write
        Lock,         ///< lock acquire at addr
        Unlock,       ///< lock release at addr
        Barrier,      ///< barrier arrival (operand = participants)
        WaitFlag,     ///< acquire-wait until *addr == operand
        Prefetch,     ///< read prefetch
        PrefetchEx,   ///< read-exclusive prefetch
        FetchAdd,     ///< atomic fetch&add (operand = delta)
        TestAndSet,   ///< atomic test&set
    };

    Kind kind = Kind::Read;
    std::uint8_t size = 4;       ///< access size for reads/writes
    std::uint16_t pad = 0;
    std::uint32_t compute = 0;   ///< busy cycles before this op
    Addr addr = 0;
    std::uint64_t operand = 0;

    bool
    operator==(const TraceOp &o) const
    {
        return kind == o.kind && size == o.size && compute == o.compute &&
               addr == o.addr && operand == o.operand;
    }
};

/** Receives the operation stream of every process during a run. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** @p pid performed @p op (op.compute already filled in). */
    virtual void record(unsigned pid, const TraceOp &op) = 0;

    /** @p pid executed @p n private busy cycles. */
    virtual void computeCycles(unsigned pid, Tick n) = 0;
};

} // namespace dashsim

#endif // TANGO_TRACE_SINK_HH
