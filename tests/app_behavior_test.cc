/**
 * @file
 * Behavioral tests for the benchmark applications beyond "runs and
 * verifies": prefetch coverage, placement effects, and the paper's
 * per-application observations at reduced scale.
 */

#include <gtest/gtest.h>

#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"
#include "core/experiment.hh"

using namespace dashsim;

namespace {

Mp3dConfig
mp3dCfg()
{
    Mp3dConfig c;
    c.particles = 800;
    c.steps = 2;
    return c;
}

LuConfig
luCfg()
{
    LuConfig c;
    c.n = 48;
    return c;
}

PthorConfig
pthorCfg()
{
    PthorConfig c;
    c.elements = 1200;
    c.flipflops = 120;
    c.primaryInputs = 32;
    c.levels = 6;
    c.clockCycles = 2;
    return c;
}

template <typename App, typename Cfg>
RunResult
run(const Cfg &cfg, const Technique &t)
{
    Machine m(makeMachineConfig(t));
    App w(cfg);
    return m.run(w);
}

} // namespace

// ---------------------------------------------------------------------
// Prefetch behavior per application (Section 5.2).
// ---------------------------------------------------------------------

TEST(AppPrefetch, Mp3dPrefetchesParticlesAndCells)
{
    auto r = run<Mp3d>(mp3dCfg(), Technique::rcPrefetch());
    // Two particle lines + three cell lines per move, minus clamps.
    EXPECT_GT(r.prefetchesIssued, 800u * 2u * 3u);
    // MP3D's prefetches are mostly useful: most go to memory rather
    // than hitting in the cache.
    EXPECT_LT(r.prefetchesDropped, r.prefetchesIssued);
}

TEST(AppPrefetch, LuDistributedPrefetchRedundancy)
{
    auto r = run<Lu>(luCfg(), Technique::rcPrefetch());
    EXPECT_GT(r.prefetchesIssued, 1000u);
    // The paper: prefetching the pivot column on every apply causes
    // redundant prefetches (dropped in the cache probe).
    EXPECT_GT(r.prefetchesDropped, r.prefetchesIssued / 10);
}

TEST(AppPrefetch, PthorCoverageIsLimited)
{
    auto plain = run<Pthor>(pthorCfg(), Technique::rc());
    auto pf = run<Pthor>(pthorCfg(), Technique::rcPrefetch());
    // Prefetch helps the hit rate but far from perfectly (the paper
    // got only 56% coverage on PTHOR's pointer structures).
    EXPECT_GT(pf.readHitPct, plain.readHitPct);
    EXPECT_LT(pf.readHitPct, 95.0);
}

TEST(AppPrefetch, NoPrefetchesWithoutTheFlag)
{
    EXPECT_EQ(run<Mp3d>(mp3dCfg(), Technique::rc()).prefetchesIssued,
              0u);
    EXPECT_EQ(run<Lu>(luCfg(), Technique::sc()).prefetchesIssued, 0u);
}

// ---------------------------------------------------------------------
// Placement and sharing structure.
// ---------------------------------------------------------------------

TEST(AppPlacement, Mp3dCellsAreCommunicationMisses)
{
    // MP3D's misses are dominated by inherent communication: many
    // invalidations fly between nodes as cells change owners.
    auto r = run<Mp3d>(mp3dCfg(), Technique::sc());
    EXPECT_GT(r.invalidations, 1000u);
}

TEST(AppPlacement, LuOwnedColumnsStayHome)
{
    // LU's writes are to node-local owned columns: write hit rate is
    // far above MP3D's (whose cells bounce).
    auto lu = run<Lu>(luCfg(), Technique::sc());
    auto mp = run<Mp3d>(mp3dCfg(), Technique::sc());
    EXPECT_GT(lu.writeHitPct, mp.writeHitPct);
}

TEST(AppShapes, RunLengthOrdering)
{
    // MP3D has the longest busy bursts between misses; PTHOR's main
    // loop is the most fragmented (paper Section 6.1: ~11 vs ~6-7).
    auto mp = run<Mp3d>(mp3dCfg(), Technique::sc());
    auto th = run<Pthor>(pthorCfg(), Technique::sc());
    EXPECT_GT(mp.medianRunLength, th.medianRunLength);
}

TEST(AppShapes, McHelpsMp3dMoreThanPthorAtSixteenProcs)
{
    auto mp1 = run<Mp3d>(mp3dCfg(), Technique::sc());
    auto mp4 = run<Mp3d>(mp3dCfg(), Technique::multiContext(4, 4));
    auto th1 = run<Pthor>(pthorCfg(), Technique::sc());
    auto th4 = run<Pthor>(pthorCfg(), Technique::multiContext(4, 4));
    double mp_gain = static_cast<double>(mp1.execTime) /
                     static_cast<double>(mp4.execTime);
    double th_gain = static_cast<double>(th1.execTime) /
                     static_cast<double>(th4.execTime);
    EXPECT_GT(mp_gain, 1.0);
    EXPECT_GT(th_gain, 0.8);
    // The paper's strongest multi-context winner is MP3D.
    EXPECT_GT(mp_gain, 0.9 * th_gain);
}

TEST(AppShapes, FullCachesRaiseHitRates)
{
    MemConfig full = MemConfig::fullSizeCaches();
    Machine m1(makeMachineConfig(Technique::sc()));
    Mp3d w1(mp3dCfg());
    auto scaled = m1.run(w1);
    Machine m2(makeMachineConfig(Technique::sc(), full));
    Mp3d w2(mp3dCfg());
    auto fullr = m2.run(w2);
    EXPECT_GE(fullr.readHitPct, scaled.readHitPct);
    EXPECT_LT(fullr.execTime, scaled.execTime);
}
