/**
 * @file
 * Integration tests for the three benchmark applications at reduced
 * data-set sizes: they must run to completion, pass their own
 * verification, produce sensible statistics, and behave
 * deterministically, under every technique combination (parameterized).
 */

#include <gtest/gtest.h>

#include "apps/lu.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"
#include "core/experiment.hh"

using namespace dashsim;

namespace {

Mp3dConfig
smallMp3d()
{
    Mp3dConfig c;
    c.particles = 600;
    c.steps = 2;
    return c;
}

LuConfig
smallLu()
{
    LuConfig c;
    c.n = 40;
    return c;
}

PthorConfig
smallPthor()
{
    PthorConfig c;
    c.elements = 900;
    c.flipflops = 90;
    c.primaryInputs = 24;
    c.levels = 5;
    c.clockCycles = 2;
    return c;
}

} // namespace

// ---------------------------------------------------------------------
// Parameterized: every app x a grid of technique points must verify.
// ---------------------------------------------------------------------

struct AppTechCase
{
    const char *app;
    Technique tech;
};

class AppsUnderTechniques : public ::testing::TestWithParam<AppTechCase>
{};

TEST_P(AppsUnderTechniques, RunsAndVerifies)
{
    const auto &[app, tech] = GetParam();
    Machine m(makeMachineConfig(tech));
    std::unique_ptr<Workload> w;
    if (std::string(app) == "mp3d")
        w = std::make_unique<Mp3d>(smallMp3d());
    else if (std::string(app) == "lu")
        w = std::make_unique<Lu>(smallLu());
    else
        w = std::make_unique<Pthor>(smallPthor());
    // run() panics on deadlock and each workload's verify() panics on a
    // wrong result, so completing at all is the main assertion.
    RunResult r = m.run(*w);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.busyCycles, 0u);
    EXPECT_GT(r.sharedReads, 0u);
    EXPECT_GT(r.sharedWrites, 0u);
}

static std::vector<AppTechCase>
allCases()
{
    std::vector<AppTechCase> cases;
    for (const char *app : {"mp3d", "lu", "pthor"}) {
        cases.push_back({app, Technique::noCache()});
        cases.push_back({app, Technique::sc()});
        cases.push_back({app, Technique::rc()});
        cases.push_back({app, Technique::scPrefetch()});
        cases.push_back({app, Technique::rcPrefetch()});
        cases.push_back({app, Technique::multiContext(2, 16)});
        cases.push_back({app, Technique::multiContext(4, 4)});
        cases.push_back(
            {app, Technique::multiContext(4, 4, Consistency::RC)});
        cases.push_back(
            {app, Technique::multiContext(2, 4, Consistency::RC, true)});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AppsUnderTechniques, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<AppTechCase> &info) {
        std::string s = info.param.app;
        s += "_" + info.param.tech.label();
        for (auto &ch : s)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return s;
    });

// ---------------------------------------------------------------------
// App-specific behavior.
// ---------------------------------------------------------------------

TEST(Mp3dApp, DeterministicAcrossRuns)
{
    auto run = []() {
        Machine m(makeMachineConfig(Technique::rc()));
        Mp3d w(smallMp3d());
        return m.run(w);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.sharedReads, b.sharedReads);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
}

TEST(Mp3dApp, BarrierCountMatchesPhases)
{
    Machine m(makeMachineConfig(Technique::sc()));
    Mp3dConfig c = smallMp3d();
    Mp3d w(c);
    auto r = m.run(w);
    // 1 start barrier + 5 per step, per process.
    EXPECT_EQ(r.barriers, (1 + 5 * c.steps) * 16u);
    EXPECT_EQ(r.locks, 0u);  // MP3D uses no locks (Table 2)
}

TEST(Mp3dApp, ReadsOutnumberWrites)
{
    Machine m(makeMachineConfig(Technique::sc()));
    Mp3d w(smallMp3d());
    auto r = m.run(w);
    EXPECT_GT(r.sharedReads, r.sharedWrites);
}

TEST(Mp3dApp, PrefetchRaisesHitRate)
{
    Machine m1(makeMachineConfig(Technique::rc()));
    Mp3d w1(smallMp3d());
    auto off = m1.run(w1);
    Machine m2(makeMachineConfig(Technique::rcPrefetch()));
    Mp3d w2(smallMp3d());
    auto on = m2.run(w2);
    EXPECT_GT(on.readHitPct, off.readHitPct);
    EXPECT_GT(on.prefetchesIssued, 0u);
}

TEST(LuApp, DecompositionIsNumericallyCorrect)
{
    // Lu::verify checks A == L*U on samples and panics otherwise; this
    // test exists so the numeric check runs under every consistency
    // model in isolation as well.
    for (auto t : {Technique::sc(), Technique::rc(),
                   Technique::multiContext(4, 4, Consistency::RC)}) {
        Machine m(makeMachineConfig(t));
        Lu w(smallLu());
        auto r = m.run(w);
        EXPECT_GT(r.execTime, 0u);
    }
}

TEST(LuApp, LockCountMatchesColumnWaits)
{
    Machine m(makeMachineConfig(Technique::sc()));
    LuConfig c = smallLu();
    Lu w(c);
    auto r = m.run(w);
    // A process waits once per produced column it does not own:
    // (n-1) columns, each awaited by nprocs-1 processes.
    EXPECT_EQ(r.locks, static_cast<std::uint64_t>(c.n - 1) * 15u);
}

TEST(LuApp, WriteHitRateHighOnOwnedColumns)
{
    Machine m(makeMachineConfig(Technique::sc()));
    Lu w(smallLu());
    auto r = m.run(w);
    // Owned columns are node-local: reads get exclusive grants and the
    // writes mostly hit (the paper reports 97% at n=200; the tiny test
    // matrix has proportionally more pivot-production writes).
    EXPECT_GT(r.writeHitPct, 70.0);
}

TEST(PthorApp, GatesActuallyEvaluate)
{
    Machine m(makeMachineConfig(Technique::sc()));
    Pthor w(smallPthor());
    auto r = m.run(w);
    EXPECT_GT(r.locks, 0u);     // queue operations take locks
    EXPECT_GT(r.barriers, 0u);  // termination rounds use barriers
}

TEST(PthorApp, StealingVariantAlsoVerifies)
{
    PthorConfig c = smallPthor();
    c.workStealing = true;
    for (auto t : {Technique::sc(), Technique::rc(),
                   Technique::multiContext(2, 4)}) {
        Machine m(makeMachineConfig(t));
        Pthor w(c);
        auto r = m.run(w);
        EXPECT_GT(r.execTime, 0u);
    }
}

TEST(PthorApp, CircuitIsDeterministic)
{
    Pthor a(smallPthor()), b(smallPthor());
    ASSERT_EQ(a.netlist().size(), b.netlist().size());
    for (std::size_t i = 0; i < a.netlist().size(); ++i) {
        EXPECT_EQ(a.netlist()[i].type, b.netlist()[i].type);
        EXPECT_EQ(a.netlist()[i].in0, b.netlist()[i].in0);
        EXPECT_EQ(a.netlist()[i].fanout, b.netlist()[i].fanout);
    }
}

TEST(PthorApp, GateEvaluationTruthTables)
{
    using P = Pthor;
    EXPECT_EQ(P::evalGate(P::AND, 1, 1), 1u);
    EXPECT_EQ(P::evalGate(P::AND, 1, 0), 0u);
    EXPECT_EQ(P::evalGate(P::OR, 0, 0), 0u);
    EXPECT_EQ(P::evalGate(P::OR, 1, 0), 1u);
    EXPECT_EQ(P::evalGate(P::XOR, 1, 1), 0u);
    EXPECT_EQ(P::evalGate(P::XOR, 1, 0), 1u);
    EXPECT_EQ(P::evalGate(P::NAND, 1, 1), 0u);
    EXPECT_EQ(P::evalGate(P::NOR, 0, 0), 1u);
    EXPECT_EQ(P::evalGate(P::FF, 1, 0), 1u);
    EXPECT_EQ(P::evalGate(P::INPUT, 0, 1), 0u);
}

TEST(PthorApp, FanoutsRespectCap)
{
    PthorConfig c = smallPthor();
    Pthor p(c);
    for (const auto &e : p.netlist())
        EXPECT_LE(e.fanout.size(), c.maxFanout);
}

// ---------------------------------------------------------------------
// Cross-app shape checks at small scale (fast versions of the paper's
// headline results).
// ---------------------------------------------------------------------

TEST(Shapes, CachesHelpEveryApp)
{
    for (auto &[name, factory] : testWorkloads()) {
        auto base = runExperiment(factory, Technique::noCache());
        auto cached = runExperiment(factory, Technique::sc());
        EXPECT_LT(cached.execTime, base.execTime) << name;
    }
}

TEST(Shapes, RcNeverSlowerThanScByMuch)
{
    for (auto &[name, factory] : testWorkloads()) {
        auto sc = runExperiment(factory, Technique::sc());
        auto rc = runExperiment(factory, Technique::rc());
        EXPECT_EQ(rc.bucket(Bucket::Write), 0u) << name;
        EXPECT_LT(rc.execTime,
                  static_cast<Tick>(1.05 * sc.execTime)) << name;
    }
}
