/**
 * @file
 * Unit tests for the cache tag arrays and the MSHR set.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace dashsim;

namespace {

constexpr Addr line(unsigned i) { return static_cast<Addr>(i) * lineBytes; }

} // namespace

TEST(PrimaryCache, MissThenHit)
{
    PrimaryCache pc(CacheGeometry{2 * 1024});
    EXPECT_FALSE(pc.probe(line(5)));
    pc.fill(line(5));
    EXPECT_TRUE(pc.probe(line(5)));
    EXPECT_TRUE(pc.probe(line(5) + 7));  // any byte in the line
}

TEST(PrimaryCache, DirectMappedConflict)
{
    PrimaryCache pc(CacheGeometry{2 * 1024});  // 128 lines
    pc.fill(line(3));
    pc.fill(line(3 + 128));  // same set
    EXPECT_FALSE(pc.probe(line(3)));
    EXPECT_TRUE(pc.probe(line(3 + 128)));
}

TEST(PrimaryCache, InvalidateOnlyMatchingTag)
{
    PrimaryCache pc(CacheGeometry{2 * 1024});
    pc.fill(line(3));
    pc.invalidate(line(3 + 128));  // same set, different tag: no effect
    EXPECT_TRUE(pc.probe(line(3)));
    pc.invalidate(line(3));
    EXPECT_FALSE(pc.probe(line(3)));
}

TEST(PrimaryCache, ResetDropsEverything)
{
    PrimaryCache pc(CacheGeometry{2 * 1024});
    for (unsigned i = 0; i < 64; ++i)
        pc.fill(line(i));
    pc.reset();
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_FALSE(pc.probe(line(i)));
}

TEST(PrimaryCache, TwoWaySetHoldsConflictingPair)
{
    // 2 KiB, 2 ways -> 64 sets: lines 3, 3+64, 3+128 all map to set 3.
    PrimaryCache pc(CacheGeometry{2 * 1024, 2});
    pc.fill(line(3));
    pc.fill(line(3 + 64));
    EXPECT_TRUE(pc.probe(line(3)));
    EXPECT_TRUE(pc.probe(line(3 + 64)));
    // Third conflicting line evicts the oldest fill (FIFO).
    pc.fill(line(3 + 128));
    EXPECT_FALSE(pc.probe(line(3)));
    EXPECT_TRUE(pc.probe(line(3 + 64)));
    EXPECT_TRUE(pc.probe(line(3 + 128)));
}

TEST(PrimaryCache, RefillDoesNotResetFifoOrder)
{
    // FIFO (not LRU): re-filling an already-present line must not
    // refresh its replacement stamp.
    PrimaryCache pc(CacheGeometry{2 * 1024, 2});
    pc.fill(line(3));
    pc.fill(line(3 + 64));
    pc.fill(line(3));  // hit; still the oldest fill
    pc.fill(line(3 + 128));
    EXPECT_FALSE(pc.probe(line(3)));
    EXPECT_TRUE(pc.probe(line(3 + 64)));
}

TEST(PrimaryCache, InvalidateFreesWayForNextFill)
{
    PrimaryCache pc(CacheGeometry{2 * 1024, 2});
    pc.fill(line(3));
    pc.fill(line(3 + 64));
    pc.invalidate(line(3 + 64));
    pc.fill(line(3 + 128));  // takes the freed way
    EXPECT_TRUE(pc.probe(line(3)));
    EXPECT_TRUE(pc.probe(line(3 + 128)));
}

TEST(SecondaryCache, TwoWayVictimIsOldestFill)
{
    // 4 KiB, 2 ways -> 128 sets: lines 7, 7+128, 7+256 share a set.
    SecondaryCache sc(CacheGeometry{4 * 1024, 2});
    sc.fill(line(7), LineState::Dirty);
    sc.fill(line(7 + 128), LineState::Shared);
    auto v = sc.fill(line(7 + 256), LineState::Shared);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.addr, line(7));
    EXPECT_EQ(sc.probe(line(7)), LineState::Invalid);
    EXPECT_EQ(sc.probe(line(7 + 128)), LineState::Shared);
    EXPECT_EQ(sc.probe(line(7 + 256)), LineState::Shared);
}

TEST(SecondaryCache, TwoWayFillPrefersInvalidWayOverVictim)
{
    SecondaryCache sc(CacheGeometry{4 * 1024, 2});
    sc.fill(line(7), LineState::Shared);
    sc.fill(line(7 + 128), LineState::Shared);
    sc.invalidate(line(7));
    auto v = sc.fill(line(7 + 256), LineState::Shared);
    EXPECT_FALSE(v.valid);  // reused the invalidated way, no eviction
    EXPECT_EQ(sc.probe(line(7 + 128)), LineState::Shared);
    EXPECT_EQ(sc.probe(line(7 + 256)), LineState::Shared);
}

TEST(SecondaryCache, WaysOneMatchesDirectMapped)
{
    // The default geometry (ways == 1) must behave exactly direct-mapped:
    // every conflicting fill displaces, no associativity slack.
    SecondaryCache sc(CacheGeometry{4 * 1024});
    sc.fill(line(7), LineState::Shared);
    auto v = sc.fill(line(7 + 256), LineState::Shared);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, line(7));
}

TEST(SecondaryCache, StatesAndUpgrades)
{
    SecondaryCache sc(CacheGeometry{4 * 1024});
    EXPECT_EQ(sc.probe(line(9)), LineState::Invalid);
    sc.fill(line(9), LineState::Shared);
    EXPECT_EQ(sc.probe(line(9)), LineState::Shared);
    sc.upgrade(line(9));
    EXPECT_EQ(sc.probe(line(9)), LineState::Dirty);
    sc.downgrade(line(9));
    EXPECT_EQ(sc.probe(line(9)), LineState::Shared);
    sc.invalidate(line(9));
    EXPECT_EQ(sc.probe(line(9)), LineState::Invalid);
}

TEST(SecondaryCache, DowngradeOnlyAffectsDirty)
{
    SecondaryCache sc(CacheGeometry{4 * 1024});
    sc.fill(line(1), LineState::Shared);
    sc.downgrade(line(1));
    EXPECT_EQ(sc.probe(line(1)), LineState::Shared);
}

TEST(SecondaryCache, CleanVictimNeedsNoWriteback)
{
    SecondaryCache sc(CacheGeometry{4 * 1024});  // 256 lines
    sc.fill(line(7), LineState::Shared);
    auto v = sc.fill(line(7 + 256), LineState::Shared);
    EXPECT_TRUE(v.valid);
    EXPECT_FALSE(v.dirty);
    EXPECT_EQ(v.addr, line(7));
}

TEST(SecondaryCache, DirtyVictimReportsWriteback)
{
    SecondaryCache sc(CacheGeometry{4 * 1024});
    sc.fill(line(7), LineState::Dirty);
    auto v = sc.fill(line(7 + 256), LineState::Dirty);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.addr, line(7));
}

TEST(SecondaryCache, RefillSameLineNoVictim)
{
    SecondaryCache sc(CacheGeometry{4 * 1024});
    sc.fill(line(7), LineState::Shared);
    auto v = sc.fill(line(7), LineState::Dirty);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(sc.probe(line(7)), LineState::Dirty);
}

TEST(MshrSet, AllocateFindRelease)
{
    MshrSet m(4);
    EXPECT_EQ(m.find(line(3)), nullptr);
    m.allocate(line(3), 100, false, true);
    auto *e = m.find(line(3));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->complete, 100u);
    EXPECT_TRUE(e->prefetch);
    EXPECT_FALSE(e->exclusive);
    m.release(line(3));
    EXPECT_EQ(m.find(line(3)), nullptr);
}

TEST(MshrSet, MatchesAnyByteInLine)
{
    MshrSet m(4);
    m.allocate(line(3), 50, false, false);
    EXPECT_NE(m.find(line(3) + 15), nullptr);
    EXPECT_EQ(m.find(line(4)), nullptr);
}

TEST(MshrSet, FullAndEarliestComplete)
{
    MshrSet m(2);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.earliestComplete(), maxTick);
    m.allocate(line(1), 300, false, false);
    m.allocate(line(2), 200, true, false);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.earliestComplete(), 200u);
    m.release(line(2));
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.earliestComplete(), 300u);
}

TEST(MshrSet, PoisoningSurvivesUntilRelease)
{
    MshrSet m(2);
    auto &e = m.allocate(line(1), 100, false, false);
    e.poisoned = true;
    EXPECT_TRUE(m.find(line(1))->poisoned);
}

TEST(MshrSetDeathTest, DuplicateLinePanics)
{
    MshrSet m(4);
    m.allocate(line(1), 100, false, false);
    EXPECT_DEATH(m.allocate(line(1), 200, false, false), "duplicate");
}
