/**
 * @file
 * Tests for the coherence-invariant checker (src/check/invariant.*).
 *
 * The positive tests drive real protocol traffic through a MemorySystem
 * with the checker hooked in and expect silence. The negative tests
 * corrupt the protocol state through the debug mutators - one injected
 * inconsistency per invariant class - and expect the audit to flag it.
 */

#include <gtest/gtest.h>

#include "check/invariant.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"

using namespace dashsim;

namespace {

struct CheckRig : ::testing::Test
{
    EventQueue eq;
    SharedMemory mem{16};
    MemConfig mcfg{};
    MemorySystem ms{eq, mem, mcfg};
    CheckConfig ccfg{};

    CheckRig()
    {
        ccfg.coherence = true;
        ccfg.failFast = false;  // collect, do not panic
        ccfg.auditInterval = 64;
    }

    static bool
    hasKind(const CoherenceChecker &chk, InvariantViolation::Kind k)
    {
        for (const auto &v : chk.violations())
            if (v.kind == k)
                return true;
        return false;
    }
};

} // namespace

// ---------------------------------------------------------------------
// Clean traffic: the checker must stay silent through ordinary
// protocol activity (fills, upgrades, invalidations, rmw, prefetch).
// ---------------------------------------------------------------------

TEST_F(CheckRig, CleanTrafficNoViolations)
{
    CoherenceChecker chk(ms, ccfg);
    ms.setCheckHook(
        [](void *c, Addr line) {
            static_cast<CoherenceChecker *>(c)->onTransition(line);
        },
        &chk);

    Addr a = mem.allocLocal(4096, 0);
    Addr b = mem.allocLocal(4096, 5);

    // Shared fills from several nodes, then an exclusive upgrade that
    // invalidates them, then atomic traffic on another line.
    for (NodeId n = 0; n < 8; ++n) {
        ms.read(n, a, eq.now());
        eq.run();
    }
    ms.rmw(3, a, RmwOp::FetchAdd, 1, 4, eq.now(), [](std::uint64_t) {});
    eq.run();
    ms.read(2, b + 64, eq.now());
    eq.run();
    ms.rmw(7, b + 64, RmwOp::TestAndSet, 0, 4, eq.now(), [](std::uint64_t) {});
    eq.run();
    ms.prefetch(1, a, false, eq.now());
    eq.run();

    chk.finalAudit();
    EXPECT_TRUE(chk.violations().empty());
    EXPECT_GT(chk.transitionsChecked(), 0u);
}

// ---------------------------------------------------------------------
// Injected violations, one per invariant class. Each corruption may
// trip more than one invariant (they deliberately overlap); the test
// asserts the *expected* class is among those reported.
// ---------------------------------------------------------------------

TEST_F(CheckRig, InjectedDirtyWithoutOwnerCopy)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // Directory claims node 3 owns the line dirty; node 3 holds nothing
    // (no cached copy, no fill in flight, no pending writeback).
    DirEntry &e = ms.debugDirEntry(lineAddr(a));
    e.state = DirEntry::State::Dirty;
    e.owner = 3;
    e.sharers.clear();

    chk.auditAll();
    EXPECT_TRUE(hasKind(chk, InvariantViolation::Kind::DirtyExclusive));
}

TEST_F(CheckRig, InjectedDirtyWithForeignCopy)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // Legitimate dirty ownership at node 2...
    ms.rmw(2, a, RmwOp::FetchAdd, 1, 4, eq.now(), [](std::uint64_t) {});
    eq.run();
    // ...then a second, stale copy materializes at node 5.
    ms.debugSecondary(5).fill(lineAddr(a), LineState::Shared);

    chk.auditAll();
    EXPECT_TRUE(hasKind(chk, InvariantViolation::Kind::DirtyExclusive));
}

TEST_F(CheckRig, InjectedSharedWithDirtyCopy)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // Legitimate shared copies at nodes 0 and 2. (A lone reader gets
    // the line in Dirty state - the exclusive-grant optimization - so
    // two readers are needed to put the directory in Shared.)
    ms.read(0, a, eq.now());
    eq.run();
    ms.read(2, a, eq.now());
    eq.run();
    ASSERT_EQ(ms.dirSnapshot(lineAddr(a)).state, DirEntry::State::Shared);
    // Corruption: node 1 holds the line *dirty* while the directory
    // still says Shared (and does not list node 1).
    ms.debugSecondary(1).fill(lineAddr(a), LineState::Dirty);

    chk.auditAll();
    EXPECT_TRUE(hasKind(chk, InvariantViolation::Kind::SharedClean));
}

TEST_F(CheckRig, InjectedUncachedButCached)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // The line was never requested - its directory entry is Uncached -
    // yet a copy appears in node 0's secondary cache.
    ms.debugSecondary(0).fill(lineAddr(a), LineState::Shared);

    chk.auditAll();
    EXPECT_TRUE(hasKind(chk, InvariantViolation::Kind::UncachedEmpty));
}

TEST_F(CheckRig, InjectedInclusionBreak)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // Primary cache holds a line the secondary does not: inclusion
    // (which every invalidation path relies on) is broken.
    ms.debugPrimary(0).fill(lineAddr(a));

    chk.auditAll();
    EXPECT_TRUE(hasKind(chk, InvariantViolation::Kind::Inclusion));
}

TEST_F(CheckRig, InjectedMshrForInstalledLine)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // Line properly installed at node 0...
    ms.read(0, a, eq.now());
    eq.run();
    // ...but a live (non-poisoned) fill for it is still outstanding.
    ms.debugMshrs(0).allocate(lineAddr(a), eq.now() + 100, false, false);

    chk.auditAll();
    EXPECT_TRUE(hasKind(chk, InvariantViolation::Kind::MshrPresent));
}

// ---------------------------------------------------------------------
// The same injections above node 32, on a 64-node machine: the checker
// must see corruption that the old 32-bit sharer mask could not even
// represent.
// ---------------------------------------------------------------------

namespace {

struct CheckRig64 : ::testing::Test
{
    EventQueue eq;
    SharedMemory mem{64};
    MemConfig mcfg;
    CheckConfig ccfg{};

    CheckRig64()
    {
        mcfg.numNodes = 64;
        ccfg.coherence = true;
        ccfg.failFast = false;
        ccfg.auditInterval = 64;
    }
};

} // namespace

TEST_F(CheckRig64, InjectedDirtyOwnerAboveNode32WithoutCopy)
{
    MemorySystem ms(eq, mem, mcfg);
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    DirEntry &e = ms.debugDirEntry(lineAddr(a));
    e.state = DirEntry::State::Dirty;
    e.owner = 40;
    e.sharers.clear();

    chk.auditAll();
    bool found = false;
    for (const auto &v : chk.violations())
        if (v.kind == InvariantViolation::Kind::DirtyExclusive)
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(CheckRig64, InjectedDirtyCopyAboveNode32UnderSharedDir)
{
    MemorySystem ms(eq, mem, mcfg);
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    // Legitimate shared copies at nodes 33 and 63 (two readers so the
    // exclusive-grant optimization cannot leave the entry Dirty)...
    ms.read(33, a, eq.now());
    eq.run();
    ms.read(63, a, eq.now());
    eq.run();
    ASSERT_EQ(ms.dirSnapshot(lineAddr(a)).state, DirEntry::State::Shared);
    ASSERT_TRUE(ms.dirSnapshot(lineAddr(a)).sharers.test(63));
    // ...then node 45 materializes a dirty copy the directory never
    // granted.
    ms.debugSecondary(45).fill(lineAddr(a), LineState::Dirty);

    chk.auditAll();
    bool found = false;
    for (const auto &v : chk.violations())
        if (v.kind == InvariantViolation::Kind::SharedClean)
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(CheckRig64, InjectedUncachedButCachedAboveNode32)
{
    MemorySystem ms(eq, mem, mcfg);
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    ms.debugSecondary(50).fill(lineAddr(a), LineState::Shared);

    chk.auditAll();
    bool found = false;
    for (const auto &v : chk.violations())
        if (v.kind == InvariantViolation::Kind::UncachedEmpty)
            found = true;
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Reporting mechanics.
// ---------------------------------------------------------------------

TEST_F(CheckRig, ViolationsAreDeduplicated)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    DirEntry &e = ms.debugDirEntry(lineAddr(a));
    e.state = DirEntry::State::Dirty;
    e.owner = 3;

    chk.auditAll();
    chk.auditAll();
    chk.auditAll();
    std::size_t dirty_reports = 0;
    for (const auto &v : chk.violations())
        if (v.kind == InvariantViolation::Kind::DirtyExclusive &&
            v.line == lineAddr(a))
            ++dirty_reports;
    EXPECT_EQ(dirty_reports, 1u);
    EXPECT_EQ(chk.auditsRun(), 3u);
}

TEST_F(CheckRig, ViolationCarriesContext)
{
    CoherenceChecker chk(ms, ccfg);
    Addr a = mem.allocLocal(lineBytes, 0);

    DirEntry &e = ms.debugDirEntry(lineAddr(a));
    e.state = DirEntry::State::Dirty;
    e.owner = 3;

    chk.auditAll();
    ASSERT_FALSE(chk.violations().empty());
    const InvariantViolation &v = chk.violations().front();
    EXPECT_EQ(v.line, lineAddr(a));
    EXPECT_EQ(v.dir.state, DirEntry::State::Dirty);
    EXPECT_FALSE(v.detail.empty());
    EXPECT_STRNE(violationKindName(v.kind), "?");
}
