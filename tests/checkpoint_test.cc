/**
 * @file
 * Barrier-point checkpoint correctness: capturing a run at a randomly
 * chosen barrier episode, serializing the blob through a file, and
 * resuming it on a fresh machine must produce a RunResult AND a full
 * counter-registry dump byte-identical to the straight-through run,
 * for every checkpointable quick workload. Plus header validation
 * (magic / config hash / workload key), eligibility fatals, and the
 * RunBatch warm-start path behind DASHSIM_CKPT_DIR.
 *
 * The test harness sets DASHSIM_CHECK=1; checkpointing requires the
 * checkers off (they are observability consumers), so every config
 * here clears them explicitly. The identity being proven is exactly
 * the one the checkers would otherwise audit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "obs/registry.hh"
#include "sim/logging.hh"

using namespace dashsim;

namespace {

/** Quick-config machine with the checkers cleared (see file comment). */
MachineConfig
ckptConfig()
{
    MachineConfig cfg;
    cfg.check.coherence = false;
    cfg.check.race = false;
    cfg.check.conservation = false;
    return cfg;
}

/** RunResult + full counter registry, serialized for byte comparison. */
std::string
fullDump(Machine &m, const RunResult &r)
{
    std::string out = serializeResult(r);
    obs::Registry reg;
    m.fillRegistry(reg, r);
    out += "--- registry ---\n";
    reg.forEach([&](const std::string &k, std::uint64_t v) {
        out += k + "=" + std::to_string(v) + "\n";
    });
    return out;
}

/** Straight-through reference dump for @p name under @p cfg. */
std::string
straightThrough(const std::string &name, const MachineConfig &cfg)
{
    auto w = testWorkload(name)();
    Machine m(cfg);
    RunResult r = m.run(*w);
    return fullDump(m, r);
}

/** Capture at @p episodes, round-trip the blob through a file, resume
 *  on a fresh machine, and dump the resumed result. */
std::string
captureAndResume(const std::string &name, const MachineConfig &cfg,
                 std::uint32_t episodes)
{
    auto w1 = testWorkload(name)();
    Machine m1(cfg);
    std::vector<std::uint8_t> blob = m1.captureRun(*w1, episodes);
    EXPECT_FALSE(blob.empty());

    const std::string path = ::testing::TempDir() + "ckpt_" + name +
                             "_" + std::to_string(episodes) + ".ckpt";
    EXPECT_TRUE(ckpt::writeFile(path, blob)) << path;
    std::vector<std::uint8_t> loaded;
    if (!ckpt::readFile(path, loaded)) {
        ADD_FAILURE() << "readFile failed: " << path;
        return "";
    }
    EXPECT_EQ(blob, loaded);
    std::remove(path.c_str());

    auto w2 = testWorkload(name)();
    Machine m2(cfg);
    RunResult r = m2.resumeRun(*w2, loaded);
    return fullDump(m2, r);
}

/**
 * The round-trip identity for one app: the reference run against a
 * capture at the first, the last, and a (seeded-)randomly chosen
 * barrier episode.
 */
void
expectRoundTripIdentity(const std::string &name)
{
    const MachineConfig cfg = ckptConfig();
    auto probe = testWorkload(name)();
    ASSERT_TRUE(probe->checkpointable());
    const std::uint32_t max_ep = probe->checkpointEpisodes();
    ASSERT_GE(max_ep, 1u);
    ASSERT_TRUE(Machine::checkpointEligible(cfg));

    const std::string ref = straightThrough(name, cfg);

    std::mt19937 rng(0xC0FFEE ^ max_ep);
    std::vector<std::uint32_t> episodes = {1, max_ep};
    if (max_ep > 2) {
        std::uniform_int_distribution<std::uint32_t> pick(2, max_ep - 1);
        episodes.push_back(pick(rng));
    }
    for (std::uint32_t ep : episodes) {
        SCOPED_TRACE(name + " @ episode " + std::to_string(ep));
        EXPECT_EQ(ref, captureAndResume(name, cfg, ep));
    }
}

} // namespace

TEST(CheckpointRoundTrip, Mp3d) { expectRoundTripIdentity("MP3D"); }
TEST(CheckpointRoundTrip, Lu) { expectRoundTripIdentity("LU"); }
TEST(CheckpointRoundTrip, Pthor) { expectRoundTripIdentity("PTHOR"); }

// ---------------------------------------------------------------------
// Header validation and eligibility fatals.
// ---------------------------------------------------------------------

TEST(CheckpointHeader, RejectsCorruptMagic)
{
    const MachineConfig cfg = ckptConfig();
    auto w1 = testWorkload("LU")();
    std::vector<std::uint8_t> blob = Machine(cfg).captureRun(*w1, 1);
    blob[0] ^= 0xff;

    auto w2 = testWorkload("LU")();
    Machine m(cfg);
    ScopedErrorCapture errors;
    EXPECT_THROW(m.resumeRun(*w2, blob), SimError);
}

TEST(CheckpointHeader, RejectsStaleVersion)
{
    const MachineConfig cfg = ckptConfig();
    auto w1 = testWorkload("LU")();
    std::vector<std::uint8_t> blob = Machine(cfg).captureRun(*w1, 1);

    // Rewrite the header version to 1 (the pre-SharerSet format, which
    // encoded sharers as a fixed u32): the mismatch must be caught at
    // the header check, not by mis-parsing the directory image.
    blob[4] = 1;
    blob[5] = blob[6] = blob[7] = 0;

    auto w2 = testWorkload("LU")();
    Machine m(cfg);
    ScopedErrorCapture errors;
    EXPECT_THROW(m.resumeRun(*w2, blob), SimError);
}

TEST(CheckpointHeader, RejectsConfigHashMismatch)
{
    const MachineConfig cfg = ckptConfig();
    auto w1 = testWorkload("LU")();
    std::vector<std::uint8_t> blob = Machine(cfg).captureRun(*w1, 1);

    // A timing-relevant knob differs: still eligible, but the capture
    // is invalid for this machine.
    MachineConfig other = ckptConfig();
    other.mem.lat.netHop += 1;
    ASSERT_TRUE(Machine::checkpointEligible(other));
    auto w2 = testWorkload("LU")();
    Machine m(other);
    ScopedErrorCapture errors;
    EXPECT_THROW(m.resumeRun(*w2, blob), SimError);
}

TEST(CheckpointHeader, RejectsWorkloadKeyMismatch)
{
    const MachineConfig cfg = ckptConfig();
    auto w1 = testWorkload("LU")();
    std::vector<std::uint8_t> blob = Machine(cfg).captureRun(*w1, 1);

    // Same app, different problem seed: different checkpointKey().
    auto w2 = testWorkload("LU", 0x5eed)();
    Machine m(cfg);
    ScopedErrorCapture errors;
    EXPECT_THROW(m.resumeRun(*w2, blob), SimError);
}

TEST(CheckpointEligibility, FatalsOnIneligibleConfigAndBadEpisode)
{
    // Active checkers make the config ineligible.
    MachineConfig checked = ckptConfig();
    checked.check.coherence = true;
    EXPECT_FALSE(Machine::checkpointEligible(checked));
    {
        auto w = testWorkload("LU")();
        Machine m(checked);
        ScopedErrorCapture errors;
        EXPECT_THROW(m.captureRun(*w, 1), SimError);
    }

    const MachineConfig cfg = ckptConfig();
    {
        // Episode out of the workload's guaranteed range.
        auto w = testWorkload("LU")();
        Machine m(cfg);
        ScopedErrorCapture errors;
        EXPECT_THROW(m.captureRun(*w, w->checkpointEpisodes() + 1),
                     SimError);
    }
    {
        auto w = testWorkload("LU")();
        Machine m(cfg);
        ScopedErrorCapture errors;
        EXPECT_THROW(m.captureRun(*w, 0), SimError);
    }
}

// ---------------------------------------------------------------------
// RunBatch warm-start behind DASHSIM_CKPT_DIR.
// ---------------------------------------------------------------------

TEST(CheckpointWarmStart, BatchReusesCheckpointsByteIdentically)
{
    auto configure = [](MachineConfig &cfg) {
        cfg.check.coherence = false;
        cfg.check.race = false;
        cfg.check.conservation = false;
    };
    // Two techniques sharing a config-hash prefix would each get their
    // own checkpoint (consistency is hashed); the sweep-level reuse is
    // across repeated grid points and across the fast-path/shard/
    // checker variants, which hash identically.
    // Each point twice: under a 2-worker batch the duplicate pair can
    // miss the same checkpoint key concurrently, exercising the
    // per-thread temp-file publish path in ckpt::writeFile.
    std::vector<RunPoint> points;
    for (auto &[name, factory] : testWorkloads()) {
        RunPoint p;
        p.factory = factory;
        p.label = name;
        p.configure = configure;
        points.push_back(p);
        points.push_back(std::move(p));
    }

    RunBatch cold(1);
    for (const auto &p : points)
        cold.add(p);
    auto ref = cold.run();

    const std::string dir = ::testing::TempDir() + "dashsim_warm";
    std::string cmd = "mkdir -p " + dir;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    ASSERT_EQ(setenv("DASHSIM_CKPT_DIR", dir.c_str(), 1), 0);

    // First warm run populates the cache, second one resumes from it;
    // both must match the cold reference byte-for-byte.
    for (int round = 0; round < 2; ++round) {
        RunBatch warm(2);
        for (const auto &p : points)
            warm.add(p);
        auto got = warm.run();
        ASSERT_EQ(ref.size(), got.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_TRUE(got[i].ok) << got[i].label << ": "
                                   << got[i].error;
            EXPECT_EQ(serializeResult(ref[i].result),
                      serializeResult(got[i].result))
                << ref[i].label << " differs on warm round " << round;
        }
    }
    ASSERT_EQ(unsetenv("DASHSIM_CKPT_DIR"), 0);
}

/** Stale cache entries (a pre-SharerSet format version in the header)
 *  must be rejected at the header check and transparently recaptured,
 *  not fed to resumeRun. */
TEST(CheckpointWarmStart, StaleCacheEntryIsRecaptured)
{
    RunPoint p;
    p.factory = testWorkload("LU");
    p.label = "LU";
    p.configure = [](MachineConfig &cfg) {
        cfg.check.coherence = false;
        cfg.check.race = false;
        cfg.check.conservation = false;
    };

    RunBatch cold(1);
    cold.add(p);
    auto ref = cold.run();
    ASSERT_TRUE(ref[0].ok) << ref[0].error;

    const std::string dir = ::testing::TempDir() + "dashsim_stale";
    std::string cmd = "mkdir -p " + dir;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    ASSERT_EQ(setenv("DASHSIM_CKPT_DIR", dir.c_str(), 1), 0);

    {
        RunBatch warm(1);
        warm.add(p);
        auto got = warm.run();
        ASSERT_TRUE(got[0].ok) << got[0].error;
    }

    // Age every cached blob to format version 1.
    unsigned aged = 0;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        std::vector<std::uint8_t> blob;
        ASSERT_TRUE(ckpt::readFile(ent.path().string(), blob));
        ASSERT_GE(blob.size(), 8u);
        blob[4] = 1;
        blob[5] = blob[6] = blob[7] = 0;
        ASSERT_TRUE(ckpt::writeFile(ent.path().string(), blob));
        ++aged;
    }
    ASSERT_GE(aged, 1u);

    RunBatch warm(1);
    warm.add(p);
    auto got = warm.run();
    ASSERT_TRUE(got[0].ok) << got[0].label << ": " << got[0].error;
    EXPECT_EQ(serializeResult(ref[0].result),
              serializeResult(got[0].result));
    ASSERT_EQ(unsetenv("DASHSIM_CKPT_DIR"), 0);
}
