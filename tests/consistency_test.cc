/**
 * @file
 * Consistency-model tests: litmus-style ordering checks and the
 * performance ordering of the four implemented models.
 *
 * The simulator commits values at completion time, so classic litmus
 * tests can be expressed directly: program a pair of processes, run
 * to completion, and inspect which outcomes occurred.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Lambda : public Workload
{
  public:
    using Setup = std::function<void(Machine &)>;
    using Body = std::function<SimProcess(Env)>;

    Lambda(Setup s, Body b) : _setup(std::move(s)), _body(std::move(b)) {}

    std::string name() const override { return "litmus"; }
    void setup(Machine &m) override { _setup(m); }
    SimProcess run(Env env) override { return _body(env); }

  private:
    Setup _setup;
    Body _body;
};

struct Lit
{
    Addr x = 0, y = 0;
    std::uint32_t r0 = 9, r1 = 9;
};

Lit g;

void
litSetup(Machine &m)
{
    // x is local to P1 and y is local to P0: the reads are fast local
    // fills while the other process's write is a slow remote
    // transaction, which is what exposes write-buffer reordering.
    g.x = m.memory().allocLocal(lineBytes, 1);
    g.y = m.memory().allocLocal(lineBytes, 0);
    g.r0 = g.r1 = 9;
}

MachineConfig
with(Consistency c)
{
    MachineConfig cfg;
    cfg.cpu.consistency = c;
    return cfg;
}

/**
 * Message passing: P0 writes data then flag; P1 spins on flag then
 * reads data. With a release-classified flag write this must never
 * observe stale data under ANY model.
 */
void
runMessagePassing(Consistency c)
{
    Machine m(with(c));
    Lambda w(litSetup, [](Env env) -> SimProcess {
        if (env.pid() == 0) {
            co_await env.write<std::uint32_t>(g.x, 41);
            co_await env.write<std::uint32_t>(g.x, 42);
            co_await env.writeRelease<std::uint32_t>(g.y, 1);
        } else if (env.pid() == 1) {
            co_await env.waitFlag(g.y, 1);
            g.r0 = co_await env.read<std::uint32_t>(g.x);
        }
        co_await env.compute(1);
    });
    m.run(w);
    EXPECT_EQ(g.r0, 42u) << "MP violated under model "
                         << static_cast<int>(c);
}

} // namespace

TEST(Litmus, MessagePassingSafeUnderAllModels)
{
    for (auto c : {Consistency::SC, Consistency::PC, Consistency::WC,
                   Consistency::RC})
        runMessagePassing(c);
}

TEST(Litmus, StoreBufferingForbiddenUnderSc)
{
    // SB: P0: x=1; r0=y.  P1: y=1; r1=x.  SC forbids r0==r1==0.
    // Our SC stalls each write to completion before the next access,
    // so the forbidden outcome cannot occur, at any interleaving the
    // contention model produces.
    for (int skew = 0; skew < 8; ++skew) {
        Machine m(with(Consistency::SC));
        Lambda w(litSetup, [skew](Env env) -> SimProcess {
            if (env.pid() == 0) {
                co_await env.compute(1 + skew * 7);
                co_await env.write<std::uint32_t>(g.x, 1);
                g.r0 = co_await env.read<std::uint32_t>(g.y);
            } else if (env.pid() == 1) {
                co_await env.compute(1 + skew * 3);
                co_await env.write<std::uint32_t>(g.y, 1);
                g.r1 = co_await env.read<std::uint32_t>(g.x);
            }
            co_await env.compute(1);
        });
        m.run(w);
        EXPECT_FALSE(g.r0 == 0 && g.r1 == 0)
            << "SC allowed the store-buffering outcome (skew " << skew
            << ")";
    }
}

TEST(Litmus, ReadsBypassBufferedWritesUnderRc)
{
    // The store-buffering *value* outcome (r0==r1==0) is not
    // producible in this simulator: directory state advances eagerly
    // when a write is issued, so a later read is always routed through
    // the write's effects even before the value commits (a documented
    // timing approximation, DESIGN.md section 7). The reordering that
    // RC permits is still demonstrable through timing: a local read
    // issued right after a slow remote write completes long before the
    // write does, i.e. the read bypassed the write buffer.
    auto run = [](Consistency c) {
        Machine m(with(c));
        Lambda w(litSetup, [](Env env) -> SimProcess {
            if (env.pid() == 0) {
                // x is remote (home 1): a ~64-cycle ownership write.
                co_await env.write<std::uint32_t>(g.x, 1);
                // y is local (home 0): a ~26-cycle fill.
                g.r0 = co_await env.read<std::uint32_t>(g.y);
            }
            co_await env.compute(1);
        });
        return m.run(w).execTime;
    };
    Tick sc = run(Consistency::SC);
    Tick rc = run(Consistency::RC);
    // SC serializes: >= 64 (write) + 26 (read). RC buffers the write:
    // the read completes without waiting for it.
    EXPECT_GE(sc, 90u);
    EXPECT_LT(rc, 64u);
}

TEST(Litmus, CoherenceSameAddressOrder)
{
    // Writes by one process to one location must be observed in
    // program order by everyone, under every model (cache coherence).
    for (auto c : {Consistency::SC, Consistency::PC, Consistency::WC,
                   Consistency::RC}) {
        Machine m(with(c));
        std::vector<std::uint32_t> seen;
        Lambda w(litSetup, [&seen](Env env) -> SimProcess {
            if (env.pid() == 0) {
                for (std::uint32_t v = 1; v <= 50; ++v)
                    co_await env.write<std::uint32_t>(g.x, v);
            } else if (env.pid() == 1) {
                for (int i = 0; i < 30; ++i) {
                    seen.push_back(
                        co_await env.read<std::uint32_t>(g.x));
                    co_await env.compute(13);
                }
            }
            co_await env.compute(1);
        });
        m.run(w);
        for (std::size_t i = 1; i < seen.size(); ++i)
            EXPECT_LE(seen[i - 1], seen[i])
                << "coherence order violated under model "
                << static_cast<int>(c);
    }
}

// ---------------------------------------------------------------------
// Model mechanics.
// ---------------------------------------------------------------------

TEST(ConsistencySpectrum, BufferedModelsReduceWriteStall)
{
    for (auto &[name, factory] : testWorkloads()) {
        auto sc = runExperiment(factory, Technique::sc());
        // WC and RC pipeline writes: no write stall at all. PC retires
        // writes in order, so its buffer can back up, but it must
        // still stall less than SC.
        for (auto t : {Technique::wc(), Technique::rc()}) {
            auto r = runExperiment(factory, t);
            EXPECT_EQ(r.bucket(Bucket::Write), 0u)
                << name << " under " << t.label();
        }
        auto pc = runExperiment(factory, Technique::pc());
        EXPECT_LT(pc.bucket(Bucket::Write), sc.bucket(Bucket::Write))
            << name;
    }
}

TEST(ConsistencySpectrum, OrderingScToRc)
{
    // SC should be the slowest and RC the fastest; PC and WC must land
    // in between (allow 5% noise, the paper's Section 4 claim).
    for (auto &[name, factory] : testWorkloads()) {
        auto sc = runExperiment(factory, Technique::sc()).execTime;
        auto pc = runExperiment(factory, Technique::pc()).execTime;
        auto wc = runExperiment(factory, Technique::wc()).execTime;
        auto rc = runExperiment(factory, Technique::rc()).execTime;
        // PC's in-order write retirement means lock acquisitions wait
        // for the whole pending write chain, which can cost lock-heavy
        // applications (PTHOR) more than SC's eager write stalls - an
        // interesting result in itself; allow it generous slack.
        EXPECT_LE(pc, 1.45 * sc) << name;
        EXPECT_LE(wc, 1.08 * sc) << name;
        EXPECT_LE(rc, 1.08 * pc) << name;
        EXPECT_LE(rc, 1.08 * wc) << name;
    }
}

TEST(ConsistencySpectrum, WcFencesAtSync)
{
    // A WC lock acquire waits for the context's outstanding writes;
    // an RC acquire does not. Construct a long write drain followed by
    // an immediate lock: WC's acquire completes later.
    auto run = [](Consistency c) {
        Machine m(with(c));
        Addr lk = 0;
        Tick got = 0;
        Lambda w(
            [&](Machine &mm) {
                litSetup(mm);
                lk = sync::allocLock(mm.memory());
            },
            [&](Env env) -> SimProcess {
                if (env.pid() == 0) {
                    for (int i = 0; i < 8; ++i)
                        co_await env.write<std::uint32_t>(
                            g.x + 0, i);  // slow remote line
                    co_await env.lock(lk);
                    co_await env.unlock(lk);
                }
                co_await env.compute(1);
            });
        auto r = m.run(w);
        got = r.execTime;
        return got;
    };
    EXPECT_GT(run(Consistency::WC), run(Consistency::RC));
}

TEST(ConsistencySpectrum, AppsVerifyUnderPcAndWc)
{
    for (auto &[name, factory] : testWorkloads()) {
        for (auto t : {Technique::pc(), Technique::wc()}) {
            auto r = runExperiment(factory, t);
            EXPECT_GT(r.execTime, 0u) << name << " " << t.label();
        }
    }
}
