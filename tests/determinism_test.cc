/**
 * @file
 * Host-parallelism must not perturb simulated results: the same
 * (workload, technique, seed) point produces a byte-identical
 * serialized RunResult at any job count, across repeated in-process
 * batches (which would expose leaked global state), and distinct
 * workload seeds genuinely change the simulated interleavings.
 *
 * The grids below are exactly the five figure grids the bench binaries
 * run (quick data sets).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace dashsim;

namespace {

/** The (app x technique) grid of one figure over the quick data sets. */
std::vector<RunPoint>
gridPoints(const std::vector<Technique> &techniques)
{
    std::vector<RunPoint> points;
    for (auto &[name, factory] : testWorkloads()) {
        for (const auto &t : techniques) {
            points.push_back(
                RunPoint{factory, t, {}, name + "/" + t.label()});
        }
    }
    return points;
}

/** Serialize every outcome, asserting each point succeeded. */
std::vector<std::string>
serializeAll(const std::vector<RunOutcome> &outcomes)
{
    std::vector<std::string> out;
    out.reserve(outcomes.size());
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.ok) << o.label << ": " << o.error;
        out.push_back("label=" + o.label + "\n" +
                      serializeResult(o.result));
    }
    return out;
}

/** Same grid at 1 worker and at 8: every point byte-identical. */
void
expectJobCountInvariant(const std::vector<Technique> &techniques)
{
    auto points = gridPoints(techniques);
    RunBatch serial(1);
    RunBatch parallel(8);
    for (const auto &p : points) {
        serial.add(p);
        parallel.add(p);
    }
    auto s1 = serializeAll(serial.run());
    auto s8 = serializeAll(parallel.run());
    ASSERT_EQ(s1.size(), s8.size());
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i], s8[i]) << "point " << i
                                << " differs between 1 and 8 jobs";
}

/**
 * Same grid through the sharded event kernel at 1, 2, 4, and 8 shards:
 * every point byte-identical to the sequential kernel. Shards = 1 takes
 * the classic single-queue path, so results[0] is the reference the
 * windowed kernel has to match exactly.
 */
void
expectShardCountInvariant(const std::vector<Technique> &techniques)
{
    auto points = gridPoints(techniques);
    std::vector<std::vector<std::string>> results;
    const std::uint32_t counts[] = {1, 2, 4, 8};
    for (std::uint32_t shards : counts) {
        RunBatch batch(8);
        for (auto p : points) {
            p.configure = [shards](MachineConfig &cfg) {
                cfg.shards = shards;
            };
            batch.add(std::move(p));
        }
        results.push_back(serializeAll(batch.run()));
    }
    for (std::size_t c = 1; c < results.size(); ++c) {
        ASSERT_EQ(results[0].size(), results[c].size());
        for (std::size_t i = 0; i < results[0].size(); ++i)
            EXPECT_EQ(results[0][i], results[c][i])
                << "point " << i << " differs between 1 and "
                << counts[c] << " shards";
    }
}

/**
 * 64-node grid (above the old 32-node sharer-mask cap): every scalable
 * directory format on the contended mesh, under RC. Used to prove the
 * big-machine configurations keep the same host-parallelism
 * invariances as the paper grids.
 */
std::vector<RunPoint>
grid64Points()
{
    const std::pair<const char *, DirFormat> formats[] = {
        {"fullbv", DirFormat::FullBitVector},
        {"limptr", DirFormat::LimitedPointer},
        {"coarse", DirFormat::CoarseVector},
    };
    std::vector<RunPoint> points;
    for (auto &[name, factory] : testWorkloads()) {
        for (const auto &[fname, f] : formats) {
            RunPoint p;
            p.factory = factory;
            p.technique = Technique::rc();
            p.label = name + "/64/" + fname;
            p.configure = [f](MachineConfig &cfg) {
                cfg.mem.numNodes = 64;
                cfg.mem.lat.mesh = true;
                cfg.mem.dirFormat = f;
            };
            points.push_back(std::move(p));
        }
    }
    return points;
}

} // namespace

TEST(Determinism, Figure2GridJobCountInvariant)
{
    expectJobCountInvariant({Technique::noCache(), Technique::sc()});
}

TEST(Determinism, Figure3GridJobCountInvariant)
{
    expectJobCountInvariant({Technique::sc(), Technique::rc()});
}

TEST(Determinism, Figure4GridJobCountInvariant)
{
    expectJobCountInvariant(
        {Technique::sc(), Technique::scPrefetch(), Technique::rc(),
         Technique::rcPrefetch()});
}

TEST(Determinism, Figure5GridJobCountInvariant)
{
    expectJobCountInvariant(
        {Technique::sc(), Technique::multiContext(2, 16),
         Technique::multiContext(4, 16), Technique::multiContext(2, 4),
         Technique::multiContext(4, 4)});
}

TEST(Determinism, Figure6GridJobCountInvariant)
{
    expectJobCountInvariant(
        {Technique::sc(), Technique::multiContext(2, 4),
         Technique::multiContext(4, 4), Technique::rc(),
         Technique::multiContext(2, 4, Consistency::RC),
         Technique::multiContext(4, 4, Consistency::RC),
         Technique::rcPrefetch(),
         Technique::multiContext(2, 4, Consistency::RC, true),
         Technique::multiContext(4, 4, Consistency::RC, true)});
}

TEST(Determinism, Figure2GridShardCountInvariant)
{
    expectShardCountInvariant({Technique::noCache(), Technique::sc()});
}

TEST(Determinism, Figure3GridShardCountInvariant)
{
    expectShardCountInvariant({Technique::sc(), Technique::rc()});
}

TEST(Determinism, Figure4GridShardCountInvariant)
{
    expectShardCountInvariant(
        {Technique::sc(), Technique::scPrefetch(), Technique::rc(),
         Technique::rcPrefetch()});
}

TEST(Determinism, Figure5GridShardCountInvariant)
{
    expectShardCountInvariant(
        {Technique::sc(), Technique::multiContext(2, 16),
         Technique::multiContext(4, 16), Technique::multiContext(2, 4),
         Technique::multiContext(4, 4)});
}

TEST(Determinism, Figure6GridShardCountInvariant)
{
    expectShardCountInvariant(
        {Technique::sc(), Technique::multiContext(2, 4),
         Technique::multiContext(4, 4), Technique::rc(),
         Technique::multiContext(2, 4, Consistency::RC),
         Technique::multiContext(4, 4, Consistency::RC),
         Technique::rcPrefetch(),
         Technique::multiContext(2, 4, Consistency::RC, true),
         Technique::multiContext(4, 4, Consistency::RC, true)});
}

/** The 64-node mesh grid at 1 worker and at 8: byte-identical. */
TEST(Determinism, SixtyFourNodeGridJobCountInvariant)
{
    auto points = grid64Points();
    RunBatch serial(1);
    RunBatch parallel(8);
    for (const auto &p : points) {
        serial.add(p);
        parallel.add(p);
    }
    auto s1 = serializeAll(serial.run());
    auto s8 = serializeAll(parallel.run());
    ASSERT_EQ(s1.size(), s8.size());
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i], s8[i]) << points[i].label
                                << " differs between 1 and 8 jobs";
}

/** The 64-node mesh grid through the sharded kernel at 1 and 4 shards:
 *  byte-identical. The shard override composes with (not replaces) the
 *  grid's own 64-node configure hook. */
TEST(Determinism, SixtyFourNodeGridShardCountInvariant)
{
    auto points = grid64Points();
    std::vector<std::vector<std::string>> results;
    for (std::uint32_t shards : {1u, 4u}) {
        RunBatch batch(8);
        for (auto p : points) {
            auto base = p.configure;
            p.configure = [base, shards](MachineConfig &cfg) {
                if (base)
                    base(cfg);
                cfg.shards = shards;
            };
            batch.add(std::move(p));
        }
        results.push_back(serializeAll(batch.run()));
    }
    ASSERT_EQ(results[0].size(), results[1].size());
    for (std::size_t i = 0; i < results[0].size(); ++i)
        EXPECT_EQ(results[0][i], results[1][i])
            << points[i].label << " differs between 1 and 4 shards";
}

/** The DASHSIM_SHARDS environment knob reaches machines built with the
 *  default config (shards = 0) and leaves results byte-identical. */
TEST(Determinism, ShardEnvKnobIsByteIdentical)
{
    auto points = gridPoints({Technique::sc()});
    RunBatch batch(1);
    for (const auto &p : points)
        batch.add(p);

    auto baseline = serializeAll(batch.run());
    ASSERT_EQ(setenv("DASHSIM_SHARDS", "4", 1), 0);
    auto sharded = serializeAll(batch.run());
    ASSERT_EQ(unsetenv("DASHSIM_SHARDS"), 0);

    ASSERT_EQ(baseline.size(), sharded.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        EXPECT_EQ(baseline[i], sharded[i])
            << "point " << i << " differs under DASHSIM_SHARDS=4";
}

/** Two runs of the same batch object in one process: byte-identical.
 *  Leaked global state (a shared RNG, an accumulating stat) would make
 *  the second pass drift. */
TEST(Determinism, RepeatedInProcessBatchesAreIdentical)
{
    RunBatch batch(8);
    for (auto &p : gridPoints({Technique::sc(), Technique::rc()}))
        batch.add(std::move(p));
    auto first = serializeAll(batch.run());
    auto second = serializeAll(batch.run());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i], second[i])
            << "point " << i << " drifted on the second batch";
}

/** Distinct seeds must change PTHOR's simulated lock-grant
 *  interleavings, not just relabel the same execution. */
TEST(Determinism, DistinctSeedsChangePthorLockInterleavings)
{
    RunBatch batch(8);
    batch.add(testWorkload("PTHOR", 0x1111), Technique::sc(), {}, "a");
    batch.add(testWorkload("PTHOR", 0x2222), Technique::sc(), {}, "b");
    // And the same seed again: seeds, not labels, drive the run.
    batch.add(testWorkload("PTHOR", 0x1111), Technique::sc(), {}, "c");
    auto outcomes = batch.run();
    ASSERT_EQ(outcomes.size(), 3u);
    for (const auto &o : outcomes)
        ASSERT_TRUE(o.ok) << o.label << ": " << o.error;

    const RunResult &a = outcomes[0].result;
    const RunResult &b = outcomes[1].result;
    EXPECT_NE(serializeResult(a), serializeResult(b));
    // The circuit topology and stimulus differ, so the lock traffic
    // (queue-lock grants and the retries lost races produce) shifts.
    EXPECT_TRUE(a.lockRetries != b.lockRetries ||
                a.locks != b.locks || a.execTime != b.execTime);
    EXPECT_EQ(serializeResult(a), serializeResult(outcomes[2].result));
}
