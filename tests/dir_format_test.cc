/**
 * @file
 * Directory scalability tests: the 64-node regression for the lifted
 * 32-node sharer-bitmask cap, plus the semantics and accounting of the
 * scalable directory formats (limited-pointer Dir_i_B with
 * broadcast-on-overflow, coarse vector with region invalidation).
 *
 * The protocol-level tests drive a bare MemorySystem; the closing
 * tests run full 64-node machines (contended mesh on) under each
 * format with the verification layer active (DASHSIM_CHECK=1 from
 * tests/CMakeLists.txt), so coherence, race, and phase-conservation
 * audits all cover the new formats end to end.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hh"
#include "mem/mem_system.hh"
#include "obs/registry.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace dashsim;

namespace {

/** Bare protocol rig with a configurable node count and format. */
struct FormatRig
{
    EventQueue eq;
    SharedMemory mem;
    MemConfig mcfg;

    FormatRig(std::uint32_t nodes, DirFormat f, std::uint32_t pointers = 4,
              std::uint32_t region = 8)
        : mem(nodes)
    {
        mcfg.numNodes = nodes;
        mcfg.dirFormat = f;
        mcfg.dirPointers = pointers;
        mcfg.dirRegionSize = region;
    }
};

} // namespace

// ---------------------------------------------------------------------
// The lifted cap: >32 sharers on a 64-node machine, then an exclusive
// upgrade that must invalidate every one of them. Every assertion here
// crosses the old `1u << node` boundary.
// ---------------------------------------------------------------------

TEST(DirFormat, SixtyFourSharersThenExclusiveUpgrade)
{
    FormatRig rig(64, DirFormat::FullBitVector);
    MemorySystem ms(rig.eq, rig.mem, rig.mcfg);
    Addr a = rig.mem.allocLocal(lineBytes, 0);

    for (NodeId n = 0; n < 64; ++n) {
        ms.read(n, a, rig.eq.now());
        rig.eq.run();
    }
    DirEntry e = ms.dirSnapshot(lineAddr(a));
    ASSERT_EQ(e.state, DirEntry::State::Shared);
    EXPECT_EQ(e.sharers.count(), 64u);
    for (NodeId n : {0u, 31u, 32u, 33u, 45u, 63u})
        EXPECT_TRUE(e.sharers.test(n)) << "node " << n;

    // Exclusive upgrade from node 5: all 63 other copies invalidated.
    ms.writeSc(5, a, 1, 4, rig.eq.now());
    rig.eq.run();
    e = ms.dirSnapshot(lineAddr(a));
    EXPECT_EQ(e.state, DirEntry::State::Dirty);
    EXPECT_EQ(e.owner, 5u);
    EXPECT_TRUE(e.sharers.empty());
    for (NodeId n = 0; n < 64; ++n) {
        if (n == 5)
            continue;
        EXPECT_EQ(ms.stats(n).invalidationsReceived, 1u) << "node " << n;
        EXPECT_EQ(ms.secondaryStateOf(n, lineAddr(a)), LineState::Invalid)
            << "node " << n;
    }
    // Full bit vector is exact: no overflow, no over-invalidation.
    EXPECT_EQ(ms.dirOverflowCount(), 0u);
    EXPECT_EQ(ms.overInvalidationCount(), 0u);
}

// ---------------------------------------------------------------------
// Limited-pointer Dir_i_B: the i+1'th sharer overflows the pointer
// array; an exclusive request against an overflowed entry broadcasts
// invalidations to every node.
// ---------------------------------------------------------------------

TEST(DirFormat, LimitedPointerOverflowBroadcasts)
{
    FormatRig rig(16, DirFormat::LimitedPointer, /*pointers=*/2);
    MemorySystem ms(rig.eq, rig.mem, rig.mcfg);
    Addr a = rig.mem.allocLocal(lineBytes, 0);

    // Readers 1, 2: within the two pointers (the first read takes the
    // exclusive-grant path; the second demotes it to Shared {1,2}).
    for (NodeId n : {1u, 2u}) {
        ms.read(n, a, rig.eq.now());
        rig.eq.run();
    }
    EXPECT_EQ(ms.dirOverflowCount(), 0u);

    // Reader 3 is the third sharer: pointer overflow.
    ms.read(3, a, rig.eq.now());
    rig.eq.run();
    EXPECT_EQ(ms.dirOverflowCount(), 1u);
    DirEntry e = ms.dirSnapshot(lineAddr(a));
    EXPECT_EQ(e.sharers.count(), 3u); // exact set still tracked
    EXPECT_TRUE(e.overflowed);

    // Exclusive upgrade from node 1: Dir_i_B has lost the sharer
    // identities, so it broadcasts to all 15 other nodes; 13 of them
    // (everyone but exact sharers 2 and 3) are over-invalidations.
    const std::uint64_t epoch2 = ms.cacheEpoch(2);
    const std::uint64_t epoch8 = ms.cacheEpoch(8);
    ms.writeSc(1, a, 1, 4, rig.eq.now());
    rig.eq.run();
    EXPECT_EQ(ms.overInvalidationCount(), 13u);
    // Real copy holders pay a direct-exec window invalidation; a
    // broadcast target that never held the line must not — its epoch
    // bump would spuriously kill fast-path state on an uninvolved
    // node.
    EXPECT_GT(ms.cacheEpoch(2), epoch2);
    EXPECT_EQ(ms.cacheEpoch(8), epoch8);
    std::uint64_t received = 0;
    for (NodeId n = 0; n < 16; ++n)
        received += ms.stats(n).invalidationsReceived;
    EXPECT_EQ(received, 15u);
    EXPECT_EQ(ms.stats(1).invalidationsReceived, 0u); // never self
    e = ms.dirSnapshot(lineAddr(a));
    EXPECT_EQ(e.state, DirEntry::State::Dirty);
    EXPECT_EQ(e.owner, 1u);
    EXPECT_FALSE(e.overflowed); // full reset clears the sticky flag
}

/** Below the pointer limit the format is exact: no broadcast. */
TEST(DirFormat, LimitedPointerExactWithinPointers)
{
    FormatRig rig(16, DirFormat::LimitedPointer, /*pointers=*/4);
    MemorySystem ms(rig.eq, rig.mem, rig.mcfg);
    Addr a = rig.mem.allocLocal(lineBytes, 0);

    for (NodeId n : {1u, 2u, 3u}) {
        ms.read(n, a, rig.eq.now());
        rig.eq.run();
    }
    ms.writeSc(1, a, 1, 4, rig.eq.now());
    rig.eq.run();
    EXPECT_EQ(ms.dirOverflowCount(), 0u);
    EXPECT_EQ(ms.overInvalidationCount(), 0u);
    std::uint64_t received = 0;
    for (NodeId n = 0; n < 16; ++n)
        received += ms.stats(n).invalidationsReceived;
    EXPECT_EQ(received, 2u); // exactly sharers 2 and 3
}

// ---------------------------------------------------------------------
// Coarse vector: one bit per dirRegionSize-node region; invalidations
// cover whole regions, and members of a covered region that never held
// the line count as over-invalidations.
// ---------------------------------------------------------------------

TEST(DirFormat, CoarseVectorInvalidatesWholeRegions)
{
    FormatRig rig(16, DirFormat::CoarseVector, /*pointers=*/4,
                  /*region=*/4);
    MemorySystem ms(rig.eq, rig.mem, rig.mcfg);
    Addr a = rig.mem.allocLocal(lineBytes, 0);

    // Sharers {1, 2, 5}: regions {0..3} and {4..7} are marked.
    for (NodeId n : {1u, 2u, 5u}) {
        ms.read(n, a, rig.eq.now());
        rig.eq.run();
    }

    // Exclusive upgrade from node 1: both regions are swept minus the
    // requester, i.e. {0,2,3,4,5,6,7} - 7 invalidations, 5 of which
    // hit nodes with no copy (everyone but 2 and 5).
    const std::uint64_t epoch5 = ms.cacheEpoch(5);
    const std::uint64_t epoch3 = ms.cacheEpoch(3);
    ms.writeSc(1, a, 1, 4, rig.eq.now());
    rig.eq.run();
    EXPECT_EQ(ms.overInvalidationCount(), 5u);
    // Region sweep: sharer 5 pays a direct-exec epoch bump, region
    // bystander 3 does not.
    EXPECT_GT(ms.cacheEpoch(5), epoch5);
    EXPECT_EQ(ms.cacheEpoch(3), epoch3);
    for (NodeId n : {0u, 2u, 3u, 4u, 5u, 6u, 7u})
        EXPECT_EQ(ms.stats(n).invalidationsReceived, 1u) << "node " << n;
    for (NodeId n : {1u, 8u, 12u, 15u})
        EXPECT_EQ(ms.stats(n).invalidationsReceived, 0u) << "node " << n;
    // Region bits never overflow a pointer array.
    EXPECT_EQ(ms.dirOverflowCount(), 0u);
}

// ---------------------------------------------------------------------
// Full 64-node machines under each format, contended mesh on, with the
// coherence / race / phase-conservation checkers active (conservation
// violations panic, so a clean completion is the assertion).
// ---------------------------------------------------------------------

namespace {

std::uint64_t
registryValue(Machine &m, const RunResult &r, const std::string &key)
{
    obs::Registry reg;
    m.fillRegistry(reg, r);
    EXPECT_TRUE(reg.has(key)) << key;
    return reg.has(key) ? reg.get(key) : 0;
}

void
runCheckedGrid(DirFormat f, std::uint64_t *overflows = nullptr,
               std::uint64_t *over_invals = nullptr)
{
    MachineConfig cfg;
    cfg.mem.numNodes = 64;
    cfg.mem.lat.mesh = true;
    cfg.mem.dirFormat = f;
    cfg.mem.dirPointers = 4;
    cfg.mem.dirRegionSize = 8;

    auto w = testWorkload("LU")();
    Machine m(cfg);
    RunResult r = m.run(*w);
    EXPECT_EQ(r.coherenceViolations, 0u);
    EXPECT_EQ(r.racesDetected, 0u);
    EXPECT_GT(r.execTime, 0u);
    if (overflows)
        *overflows = registryValue(m, r, "machine.dir.overflows");
    if (over_invals)
        *over_invals =
            registryValue(m, r, "machine.dir.over_invalidations");
}

} // namespace

TEST(DirFormat, FullBitVector64NodeGridClean)
{
    std::uint64_t overflows = 1, over = 1;
    runCheckedGrid(DirFormat::FullBitVector, &overflows, &over);
    EXPECT_EQ(overflows, 0u);
    EXPECT_EQ(over, 0u);
}

TEST(DirFormat, LimitedPointer64NodeGridClean)
{
    std::uint64_t overflows = 0, over = 0;
    runCheckedGrid(DirFormat::LimitedPointer, &overflows, &over);
    // LU's pivot column is read by far more than 4 nodes: the format
    // must overflow and pay broadcast invalidations.
    EXPECT_GT(overflows, 0u);
    EXPECT_GT(over, 0u);
}

TEST(DirFormat, CoarseVector64NodeGridClean)
{
    std::uint64_t over = 0;
    runCheckedGrid(DirFormat::CoarseVector, nullptr, &over);
    EXPECT_GT(over, 0u);
}

/** A torus needs a full grid: 64 nodes is 8x8, so it must construct
 *  and run; a partial grid must be rejected. */
TEST(DirFormat, TorusRequiresFullGrid)
{
    MachineConfig cfg;
    cfg.mem.numNodes = 64;
    cfg.mem.lat.mesh = true;
    cfg.mem.lat.torus = true;
    auto w = testWorkload("LU")();
    Machine m(cfg);
    RunResult r = m.run(*w);
    EXPECT_EQ(r.coherenceViolations, 0u);

    // 13 nodes lays out as a ragged 4x4 grid with three holes; wrap
    // links through the holes would be meaningless.
    MachineConfig bad;
    bad.mem.numNodes = 13;
    bad.mem.lat.mesh = true;
    bad.mem.lat.torus = true;
    ScopedErrorCapture errors;
    EXPECT_THROW(Machine{bad}, SimError);
}
