/**
 * @file
 * Unit tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace dashsim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesOnlyWhenEventsExecute)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.runOne();
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 10)
            eq.schedule(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Tick>(i), [&] { ++count; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilExecutesInclusiveBoundary)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ScheduleAtAbsoluteTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "past");
}

TEST(EventQueue, ExecutedCountTracksEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, DeterministicAcrossRuns)
{
    auto run = []() {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i)
            eq.schedule(static_cast<Tick>((i * 37) % 13),
                        [&order, i] { order.push_back(i); });
        eq.run();
        return order;
    };
    EXPECT_EQ(run(), run());
}
