/**
 * @file
 * Unit tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace dashsim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesOnlyWhenEventsExecute)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    EXPECT_EQ(eq.now(), 0u);
    eq.runOne();
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 10)
            eq.schedule(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Tick>(i), [&] { ++count; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilExecutesInclusiveBoundary)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ScheduleAtAbsoluteTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "past");
}

TEST(EventQueue, ExecutedCountTracksEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, DeterministicAcrossRuns)
{
    auto run = []() {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 100; ++i)
            eq.schedule(static_cast<Tick>((i * 37) % 13),
                        [&order, i] { order.push_back(i); });
        eq.run();
        return order;
    };
    EXPECT_EQ(run(), run());
}

TEST(EventQueue, LargeCapturesFallBackToHeapCorrectly)
{
    // Captures beyond InlineCallback's inline buffer must still work
    // (heap fallback), preserving their payload bit-for-bit.
    EventQueue eq;
    std::array<std::uint64_t, 16> big{};  // 128 bytes > inlineCapacity
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = 0x1234567800000000ULL + i;
    std::uint64_t sum = 0;
    eq.schedule(5, [big, &sum] {
        for (auto v : big)
            sum += v & 0xffff;
    });
    static_assert(sizeof(big) > InlineCallback::inlineCapacity);
    eq.run();
    EXPECT_EQ(sum, (big.size() * (big.size() - 1)) / 2);
}

TEST(EventQueue, MoveOnlyCallablesAreSupported)
{
    EventQueue eq;
    auto payload = std::make_unique<int>(41);
    int seen = 0;
    eq.schedule(1, [p = std::move(payload), &seen] { seen = *p + 1; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, PendingCallbacksAreDestroyedWithTheQueue)
{
    // An undrained queue must release both inline and heap-fallback
    // callbacks (shared_ptr captures observe the destruction).
    auto token = std::make_shared<int>(7);
    std::array<std::shared_ptr<int>, 12> fat;
    fat.fill(token);
    const long baseline = token.use_count();  // token + 12 fat copies
    {
        EventQueue eq;
        eq.schedule(10, [token] {});      // inline storage (+1 ref)
        eq.schedule(20, [fat] {});        // heap fallback (+12 refs)
        EXPECT_EQ(token.use_count(), baseline + 13);
    }
    EXPECT_EQ(token.use_count(), baseline);
}

/**
 * Reference model: the pre-rewrite std::priority_queue kernel. The
 * custom indexed d-ary heap must reproduce its execution order exactly
 * — (tick, schedule order) lexicographic — on a million-event storm.
 */
namespace {

class ReferenceQueue
{
  public:
    void
    schedule(Tick when, std::uint64_t id)
    {
        heap.push(Entry{when, nextSeq++, id});
    }

    bool
    runOne(Tick &when, std::uint64_t &id)
    {
        if (heap.empty())
            return false;
        when = heap.top().when;
        id = heap.top().id;
        heap.pop();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t id;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::uint64_t nextSeq = 0;
};

} // namespace

TEST(EventQueueStress, MillionEventsMatchReferenceOrdering)
{
    // Interleaved schedule/run phases with heavy tick collisions (ticks
    // drawn from a small window) so FIFO tie-breaking is exercised
    // constantly, cross-checked event by event against the reference.
    constexpr std::uint64_t totalEvents = 1'000'000;
    constexpr std::uint64_t batch = 4096;

    EventQueue eq;
    ReferenceQueue ref;
    Rng rng(0xfeedf00d);

    std::vector<std::uint64_t> executed;
    executed.reserve(batch * 2);
    std::uint64_t nextId = 0;
    std::uint64_t checked = 0;

    while (checked < totalEvents) {
        // Schedule a batch at scattered (frequently colliding) ticks.
        for (std::uint64_t i = 0; i < batch; ++i) {
            Tick when = eq.now() + rng.below(64);
            std::uint64_t id = nextId++;
            ref.schedule(when, id);
            eq.schedule(when - eq.now(),
                        [id, &executed] { executed.push_back(id); });
        }
        // Drain a random fraction, then cross-check order and ticks.
        std::uint64_t drain = rng.below(batch) + batch / 2;
        executed.clear();
        std::uint64_t ran = eq.run(drain);
        ASSERT_EQ(ran, executed.size());
        for (std::uint64_t id : executed) {
            Tick refWhen = 0;
            std::uint64_t refId = 0;
            ASSERT_TRUE(ref.runOne(refWhen, refId));
            ASSERT_EQ(id, refId) << "divergence at event " << checked;
            ++checked;
        }
    }

    // Drain the tail completely.
    executed.clear();
    eq.run();
    for (std::uint64_t id : executed) {
        Tick refWhen = 0;
        std::uint64_t refId = 0;
        ASSERT_TRUE(ref.runOne(refWhen, refId));
        ASSERT_EQ(id, refId);
    }
    Tick w = 0;
    std::uint64_t i = 0;
    EXPECT_FALSE(ref.runOne(w, i));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueStress, SelfReschedulingChurnStaysAllocationStable)
{
    // A steady-state population of self-rescheduling events (the
    // simulator's hot pattern) must drain deterministically: same total
    // event count and final tick on repeated runs.
    auto run = []() {
        EventQueue eq;
        Rng rng(0x5eed);
        std::uint64_t remaining = 200'000;
        std::function<void()> tick;  // shared chain body
        struct Ev
        {
            EventQueue *eq;
            Rng *rng;
            std::uint64_t *remaining;
            std::function<void()> *tick;
        };
        Ev ev{&eq, &rng, &remaining, &tick};
        tick = [ev] {
            if (*ev.remaining == 0)
                return;
            --*ev.remaining;
            ev.eq->schedule(static_cast<Tick>(ev.rng->below(97) + 1),
                            *ev.tick);
        };
        for (int i = 0; i < 256; ++i)
            eq.schedule(static_cast<Tick>(rng.below(97) + 1), tick);
        eq.run();
        return std::pair<std::uint64_t, Tick>(eq.executed(), eq.now());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.first, 200'000u + 256u);
}
