/**
 * @file
 * Tests for the experiment/technique layer and the report formatting
 * helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace dashsim;

TEST(Technique, LabelsAreDescriptive)
{
    EXPECT_EQ(Technique::sc().label(), "SC");
    EXPECT_EQ(Technique::rc().label(), "RC");
    EXPECT_EQ(Technique::noCache().label(), "NoCache SC");
    EXPECT_EQ(Technique::rcPrefetch().label(), "RC+PF");
    EXPECT_EQ(Technique::multiContext(4, 16).label(), "SC 4ctx/sw16");
    EXPECT_EQ(
        Technique::multiContext(2, 4, Consistency::RC, true).label(),
        "RC+PF 2ctx/sw4");
}

TEST(Technique, MachineConfigMapping)
{
    Technique t = Technique::multiContext(4, 16, Consistency::RC, true);
    MachineConfig cfg = makeMachineConfig(t);
    EXPECT_EQ(cfg.cpu.numContexts, 4u);
    EXPECT_EQ(cfg.cpu.switchCycles, 16u);
    EXPECT_EQ(cfg.cpu.consistency, Consistency::RC);
    EXPECT_TRUE(cfg.cpu.prefetch);
    EXPECT_TRUE(cfg.mem.cacheSharedData);

    MachineConfig nc = makeMachineConfig(Technique::noCache());
    EXPECT_FALSE(nc.mem.cacheSharedData);
}

TEST(Technique, FullSizeCachesConfig)
{
    MemConfig full = MemConfig::fullSizeCaches();
    EXPECT_EQ(full.primary.sizeBytes, 64u * 1024u);
    EXPECT_EQ(full.secondary.sizeBytes, 256u * 1024u);
    EXPECT_EQ(full.primary.numLines(), 4096u);
}

TEST(Report, NormalizationMath)
{
    RunResult base;
    base.execTime = 1000;
    base.numProcessors = 16;
    RunResult r;
    r.execTime = 500;
    r.numProcessors = 16;
    r.buckets[static_cast<std::size_t>(Bucket::Busy)] = 16 * 200;

    EXPECT_DOUBLE_EQ(normalizedTime(r, base), 50.0);
    EXPECT_DOUBLE_EQ(speedup(r, base), 2.0);
    EXPECT_DOUBLE_EQ(normalizedBucket(r, Bucket::Busy, base), 20.0);
}

TEST(Report, BreakdownPrintsAllRows)
{
    RunResult base;
    base.execTime = 1000;
    base.numProcessors = 16;
    base.buckets[static_cast<std::size_t>(Bucket::Busy)] = 4000;
    std::ostringstream os;
    printBreakdown(os, "Title",
                   {{"Base", base}, {"Variant", base}}, 0, false);
    auto s = os.str();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("Base"), std::string::npos);
    EXPECT_NE(s.find("Variant"), std::string::npos);
    EXPECT_NE(s.find("Busy"), std::string::npos);
}

TEST(Report, Table2Prints)
{
    RunResult r;
    r.workload = "MP3D";
    r.busyCycles = 5774000;
    r.sharedReads = 1170000;
    r.sharedWrites = 530000;
    r.barriers = 448;
    r.sharedDataBytes = 401 * 1024;
    std::ostringstream os;
    printTable2(os, {r});
    EXPECT_NE(os.str().find("MP3D"), std::string::npos);
    EXPECT_NE(os.str().find("5774"), std::string::npos);
}

TEST(Report, PaperVsMeasuredFormat)
{
    auto s = paperVsMeasured(2.20, 2.04);
    EXPECT_NE(s.find("2.20"), std::string::npos);
    EXPECT_NE(s.find("2.04"), std::string::npos);
}

TEST(Workloads, PaperAndTestListsCoverAllThree)
{
    auto paper = paperWorkloads();
    auto test = testWorkloads();
    ASSERT_EQ(paper.size(), 3u);
    ASSERT_EQ(test.size(), 3u);
    EXPECT_EQ(paper[0].first, "MP3D");
    EXPECT_EQ(paper[1].first, "LU");
    EXPECT_EQ(paper[2].first, "PTHOR");
    // Factories build fresh instances.
    auto a = paper[0].second();
    auto b = paper[0].second();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->name(), "MP3D");
}

TEST(Machine, ProcessPlacementRoundRobin)
{
    MachineConfig cfg;
    cfg.cpu.numContexts = 4;
    Machine m(cfg);
    EXPECT_EQ(m.numProcesses(), 64u);
    EXPECT_EQ(m.nodeOfProcess(0), 0u);
    EXPECT_EQ(m.nodeOfProcess(15), 15u);
    EXPECT_EQ(m.nodeOfProcess(16), 0u);
    EXPECT_EQ(m.nodeOfProcess(63), 15u);
}
