/**
 * @file
 * Tests for the experiment/technique layer and the report formatting
 * helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/shard.hh"
#include "sim/logging.hh"

using namespace dashsim;

namespace {

/** Workload whose setup fails with a plain C++ exception. */
class ThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "throws"; }
    void setup(Machine &) override
    {
        throw std::runtime_error("deliberate setup failure");
    }
    SimProcess run(Env) override { co_return; }
};

/** Workload whose verify step fails through the fatal() path. */
class FatalWorkload : public Workload
{
  public:
    std::string name() const override { return "fatals"; }
    void setup(Machine &) override {}
    SimProcess run(Env) override { co_return; }
    void verify(Machine &) override { fatal("deliberate fatal"); }
};

} // namespace

TEST(Technique, LabelsAreDescriptive)
{
    EXPECT_EQ(Technique::sc().label(), "SC");
    EXPECT_EQ(Technique::rc().label(), "RC");
    EXPECT_EQ(Technique::noCache().label(), "NoCache SC");
    EXPECT_EQ(Technique::rcPrefetch().label(), "RC+PF");
    EXPECT_EQ(Technique::multiContext(4, 16).label(), "SC 4ctx/sw16");
    EXPECT_EQ(
        Technique::multiContext(2, 4, Consistency::RC, true).label(),
        "RC+PF 2ctx/sw4");
}

TEST(Technique, MachineConfigMapping)
{
    Technique t = Technique::multiContext(4, 16, Consistency::RC, true);
    MachineConfig cfg = makeMachineConfig(t);
    EXPECT_EQ(cfg.cpu.numContexts, 4u);
    EXPECT_EQ(cfg.cpu.switchCycles, 16u);
    EXPECT_EQ(cfg.cpu.consistency, Consistency::RC);
    EXPECT_TRUE(cfg.cpu.prefetch);
    EXPECT_TRUE(cfg.mem.cacheSharedData);

    MachineConfig nc = makeMachineConfig(Technique::noCache());
    EXPECT_FALSE(nc.mem.cacheSharedData);
}

TEST(Technique, FullSizeCachesConfig)
{
    MemConfig full = MemConfig::fullSizeCaches();
    EXPECT_EQ(full.primary.sizeBytes, 64u * 1024u);
    EXPECT_EQ(full.secondary.sizeBytes, 256u * 1024u);
    EXPECT_EQ(full.primary.numLines(), 4096u);
}

TEST(Report, NormalizationMath)
{
    RunResult base;
    base.execTime = 1000;
    base.numProcessors = 16;
    RunResult r;
    r.execTime = 500;
    r.numProcessors = 16;
    r.buckets[static_cast<std::size_t>(Bucket::Busy)] = 16 * 200;

    EXPECT_DOUBLE_EQ(normalizedTime(r, base), 50.0);
    EXPECT_DOUBLE_EQ(speedup(r, base), 2.0);
    EXPECT_DOUBLE_EQ(normalizedBucket(r, Bucket::Busy, base), 20.0);
}

TEST(Report, BreakdownPrintsAllRows)
{
    RunResult base;
    base.execTime = 1000;
    base.numProcessors = 16;
    base.buckets[static_cast<std::size_t>(Bucket::Busy)] = 4000;
    std::ostringstream os;
    printBreakdown(os, "Title",
                   {{"Base", base}, {"Variant", base}}, 0, false);
    auto s = os.str();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("Base"), std::string::npos);
    EXPECT_NE(s.find("Variant"), std::string::npos);
    EXPECT_NE(s.find("Busy"), std::string::npos);
}

TEST(Report, Table2Prints)
{
    RunResult r;
    r.workload = "MP3D";
    r.busyCycles = 5774000;
    r.sharedReads = 1170000;
    r.sharedWrites = 530000;
    r.barriers = 448;
    r.sharedDataBytes = 401 * 1024;
    std::ostringstream os;
    printTable2(os, {r});
    EXPECT_NE(os.str().find("MP3D"), std::string::npos);
    EXPECT_NE(os.str().find("5774"), std::string::npos);
}

TEST(Report, WriteRegistryJsonDumpsMachineCounters)
{
    std::string path = ::testing::TempDir() + "report_registry.json";
    Machine m(makeMachineConfig(Technique::sc()));
    auto w = testWorkload("LU")();
    RunResult r = m.run(*w);
    ASSERT_TRUE(writeRegistryJson(path, m, r));

    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"exec_time\""), std::string::npos);
    EXPECT_NE(text.find("\"p15\""), std::string::npos);
    EXPECT_NE(text.find("\"bucket\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, PaperVsMeasuredFormat)
{
    auto s = paperVsMeasured(2.20, 2.04);
    EXPECT_NE(s.find("2.20"), std::string::npos);
    EXPECT_NE(s.find("2.04"), std::string::npos);
}

TEST(Workloads, PaperAndTestListsCoverAllThree)
{
    auto paper = paperWorkloads();
    auto test = testWorkloads();
    ASSERT_EQ(paper.size(), 3u);
    ASSERT_EQ(test.size(), 3u);
    EXPECT_EQ(paper[0].first, "MP3D");
    EXPECT_EQ(paper[1].first, "LU");
    EXPECT_EQ(paper[2].first, "PTHOR");
    // Factories build fresh instances.
    auto a = paper[0].second();
    auto b = paper[0].second();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->name(), "MP3D");
}

TEST(Batch, EmptyBatchReturnsNoOutcomes)
{
    RunBatch b;
    EXPECT_EQ(b.size(), 0u);
    EXPECT_TRUE(b.run().empty());
    EXPECT_TRUE(runBatch({}).empty());
}

TEST(Batch, SingleRunMatchesDirectExperiment)
{
    auto factory = testWorkload("LU");
    RunBatch b(2);
    b.add(factory, Technique::sc(), {}, "lu-sc");
    auto outcomes = b.run();
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].label, "lu-sc");

    RunResult direct = runExperiment(factory, Technique::sc());
    EXPECT_EQ(serializeResult(outcomes[0].result),
              serializeResult(direct));
}

TEST(Batch, ThrowingRunReportsErrorAndSiblingsComplete)
{
    RunBatch b(4);
    b.add(testWorkload("LU"), Technique::sc(), {}, "good-1");
    b.add([] { return std::make_unique<ThrowingWorkload>(); },
          Technique::sc(), {}, "bad-throw");
    b.add([] { return std::make_unique<FatalWorkload>(); },
          Technique::sc(), {}, "bad-fatal");
    b.add(testWorkload("LU"), Technique::rc(), {}, "good-2");
    auto outcomes = b.run();
    ASSERT_EQ(outcomes.size(), 4u);

    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("deliberate setup failure"),
              std::string::npos);
    EXPECT_FALSE(outcomes[2].ok);
    EXPECT_NE(outcomes[2].error.find("deliberate fatal"),
              std::string::npos);
    EXPECT_NE(outcomes[2].error.find("fatal:"), std::string::npos);
    EXPECT_TRUE(outcomes[3].ok) << outcomes[3].error;
    EXPECT_GT(outcomes[3].result.execTime, 0u);
}

TEST(Batch, NullFactoryIsAnErrorNotACrash)
{
    RunBatch b(1);
    b.add(WorkloadFactory{}, Technique::sc(), {}, "null");
    auto outcomes = b.run();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_NE(outcomes[0].error.find("null workload factory"),
              std::string::npos);
}

TEST(Batch, OversubscriptionMoreJobsThanPoints)
{
    RunBatch b(16);
    b.add(testWorkload("LU"), Technique::sc(), {}, "only");
    EXPECT_EQ(b.jobs(), 16u);
    auto outcomes = b.run();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
}

TEST(Batch, ConfigureHookAdjustsMachineConfig)
{
    RunPoint p;
    p.factory = testWorkload("LU");
    p.technique = Technique::multiContext(4, 4);
    p.configure = [](MachineConfig &cfg) { cfg.cpu.switchThreshold = 64; };
    bool inspected = false;
    p.inspect = [&inspected](Machine &m, const RunResult &r) {
        inspected = true;
        EXPECT_EQ(m.config().cpu.switchThreshold, 64u);
        EXPECT_GT(r.execTime, 0u);
    };
    auto outcomes = runBatch({std::move(p)}, 1);
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_TRUE(inspected);
}

TEST(Batch, RunExperimentsReturnsResultsInOrder)
{
    auto rr = runExperiments(testWorkload("LU"),
                             {Technique::sc(), Technique::rc()});
    ASSERT_EQ(rr.size(), 2u);
    // RC removes write stall; the two runs must differ.
    EXPECT_EQ(rr[1].bucket(Bucket::Write), 0u);
    EXPECT_NE(serializeResult(rr[0]), serializeResult(rr[1]));
}

TEST(Batch, DefaultJobsHonorsEnvOverride)
{
    ::setenv("DASHSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::setenv("DASHSIM_JOBS", "not-a-number", 1);
    EXPECT_GE(defaultJobs(), 1u);
    ::unsetenv("DASHSIM_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Batch, InvalidJobsWarningIsCapturedIntoOutcomeLog)
{
    // defaultJobs() warns about a bad DASHSIM_JOBS value; when a batch
    // resolves its worker count, that warning must land in the first
    // outcome's buffered log, not escape to stderr mid-run.
    ::setenv("DASHSIM_JOBS", "bogus", 1);
    RunBatch b;
    b.add(testWorkload("LU"), Technique::sc(), {}, "only");
    auto outcomes = b.run();
    ::unsetenv("DASHSIM_JOBS");
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_NE(outcomes[0].log.find("ignoring invalid DASHSIM_JOBS"),
              std::string::npos)
        << "log was: " << outcomes[0].log;
}

TEST(Batch, ShardsFromEnvParsesAndFallsBack)
{
    ::unsetenv("DASHSIM_SHARDS");
    EXPECT_EQ(shardsFromEnv(), 1u);
    ::setenv("DASHSIM_SHARDS", "4", 1);
    EXPECT_EQ(shardsFromEnv(), 4u);
    ::setenv("DASHSIM_SHARDS", "zero?", 1);
    {
        ScopedLogCapture logs;
        EXPECT_EQ(shardsFromEnv(), 1u);
        EXPECT_NE(logs.take().find("invalid DASHSIM_SHARDS"),
                  std::string::npos);
    }
    ::unsetenv("DASHSIM_SHARDS");
}

TEST(Batch, NestedParallelismGuardClampsJobsTimesShards)
{
    // jobs x shards must not exceed the defaultJobs() host budget: with
    // a budget of 4 threads and 8-way sharded machines, an 8-job batch
    // must fall back to a single worker, and say so through the same
    // captured-log path as every other batch warning.
    ::setenv("DASHSIM_JOBS", "4", 1);
    ::setenv("DASHSIM_SHARDS", "8", 1);
    RunBatch b(8);
    b.add(testWorkload("LU"), Technique::sc(), {}, "a");
    b.add(testWorkload("LU"), Technique::rc(), {}, "b");
    auto outcomes = b.run();
    ::unsetenv("DASHSIM_SHARDS");
    ::unsetenv("DASHSIM_JOBS");

    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &o : outcomes)
        ASSERT_TRUE(o.ok) << o.label << ": " << o.error;
    EXPECT_NE(outcomes[0].log.find("clamping jobs to 1"),
              std::string::npos)
        << "log was: " << outcomes[0].log;
}

TEST(Batch, NestedParallelismGuardIsQuietWithinBudget)
{
    // 2 jobs x 2 shards fits a 4-thread budget: no clamp, no warning.
    ::setenv("DASHSIM_JOBS", "4", 1);
    ::setenv("DASHSIM_SHARDS", "2", 1);
    RunBatch b(2);
    b.add(testWorkload("LU"), Technique::sc(), {}, "a");
    b.add(testWorkload("LU"), Technique::rc(), {}, "b");
    auto outcomes = b.run();
    ::unsetenv("DASHSIM_SHARDS");
    ::unsetenv("DASHSIM_JOBS");

    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &o : outcomes)
        ASSERT_TRUE(o.ok) << o.label << ": " << o.error;
    EXPECT_EQ(outcomes[0].log.find("clamping jobs"), std::string::npos)
        << "log was: " << outcomes[0].log;
}

TEST(Logging, ScopedErrorCaptureTurnsFatalIntoException)
{
    ScopedErrorCapture capture;
    bool caught = false;
    try {
        fatal("captured %d", 42);
    } catch (const SimError &e) {
        caught = true;
        EXPECT_EQ(e.kind(), SimError::Kind::Fatal);
        EXPECT_NE(std::string(e.what()).find("captured 42"),
                  std::string::npos);
    }
    EXPECT_TRUE(caught);
}

TEST(Logging, ScopedLogCaptureBuffersWarnings)
{
    ScopedLogCapture capture;
    warn("buffered %s", "message");
    inform("status line");
    std::string text = capture.take();
    EXPECT_NE(text.find("warn: buffered message"), std::string::npos);
    EXPECT_NE(text.find("info: status line"), std::string::npos);
    EXPECT_TRUE(capture.take().empty());
}

TEST(Machine, ProcessPlacementRoundRobin)
{
    MachineConfig cfg;
    cfg.cpu.numContexts = 4;
    Machine m(cfg);
    EXPECT_EQ(m.numProcesses(), 64u);
    EXPECT_EQ(m.nodeOfProcess(0), 0u);
    EXPECT_EQ(m.nodeOfProcess(15), 15u);
    EXPECT_EQ(m.nodeOfProcess(16), 0u);
    EXPECT_EQ(m.nodeOfProcess(63), 15u);
}
