/**
 * @file
 * Interplay tests between the extensions and the core machinery:
 * traces with multiple contexts, apps on the mesh topology, queued
 * locks under every consistency model, and WC/PC fencing at the
 * synchronization primitives.
 */

#include <gtest/gtest.h>

#include "apps/mp3d.hh"
#include "core/experiment.hh"
#include "tango/sync.hh"
#include "tango/trace.hh"

using namespace dashsim;

namespace {

class Lambda : public Workload
{
  public:
    using Setup = std::function<void(Machine &)>;
    using Body = std::function<SimProcess(Env)>;

    Lambda(Setup s, Body b) : _setup(std::move(s)), _body(std::move(b)) {}

    std::string name() const override { return "ext-lambda"; }
    void setup(Machine &m) override { _setup(m); }
    SimProcess run(Env env) override { return _body(env); }

  private:
    Setup _setup;
    Body _body;
};

struct G
{
    Addr data = 0, lock = 0, bar = 0;
};
G g;

void
setupG(Machine &m)
{
    g.data = m.memory().allocRoundRobin(64 * 1024);
    g.lock = sync::allocLock(m.memory());
    g.bar = sync::allocBarrier(m.memory());
}

} // namespace

TEST(ExtensionInterplay, TraceRoundTripWithMultipleContexts)
{
    Mp3dConfig mc;
    mc.particles = 400;
    mc.steps = 1;
    Technique t = Technique::multiContext(2, 4, Consistency::RC);

    Machine m1(makeMachineConfig(t));
    Mp3d direct(mc);
    RunResult d = m1.run(direct);

    Machine m2(makeMachineConfig(t));
    TraceRecorder rec(std::make_unique<Mp3d>(mc));
    m2.run(rec);
    Trace tr = rec.takeTrace();
    ASSERT_EQ(tr.procs.size(), 32u);

    Machine m3(makeMachineConfig(t));
    TraceWorkload replay(std::move(tr));
    RunResult r = m3.run(replay);
    EXPECT_EQ(r.execTime, d.execTime);
}

TEST(ExtensionInterplay, AppsVerifyOnMesh)
{
    MemConfig mesh;
    mesh.lat.mesh = true;
    for (auto &[name, factory] : testWorkloads()) {
        for (auto t : {Technique::sc(), Technique::rc()}) {
            RunResult r = runExperiment(factory, t, mesh);
            EXPECT_GT(r.execTime, 0u) << name;
        }
    }
}

TEST(ExtensionInterplay, MeshIsDeterministicToo)
{
    MemConfig mesh;
    mesh.lat.mesh = true;
    auto wls = testWorkloads();
    auto a = runExperiment(wls[0].second, Technique::rc(), mesh);
    auto b = runExperiment(wls[0].second, Technique::rc(), mesh);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.buckets, b.buckets);
}

TEST(ExtensionInterplay, QueuedLocksUnderEveryModel)
{
    for (auto c : {Consistency::SC, Consistency::PC, Consistency::WC,
                   Consistency::RC}) {
        MachineConfig cfg;
        cfg.cpu.consistency = c;
        Machine m(cfg);
        Lambda w(setupG, [](Env env) -> SimProcess {
            for (int i = 0; i < 8; ++i) {
                co_await env.lockQueued(g.lock);
                auto v = co_await env.read<std::uint64_t>(g.data);
                co_await env.write<std::uint64_t>(g.data, v + 1);
                co_await env.unlockQueued(g.lock);
            }
        });
        m.run(w);
        EXPECT_EQ(m.memory().load<std::uint64_t>(g.data), 16u * 8u)
            << "model " << static_cast<int>(c);
    }
}

TEST(ExtensionInterplay, QueuedUnlockIsAReleaseUnderRc)
{
    // Data written before unlockQueued must be visible to the next
    // queued-lock holder.
    MachineConfig cfg;
    cfg.cpu.consistency = Consistency::RC;
    Machine m(cfg);
    bool ok = true;
    Lambda w(setupG, [&ok](Env env) -> SimProcess {
        for (int i = 0; i < 6; ++i) {
            co_await env.lockQueued(g.lock);
            auto seq = co_await env.read<std::uint32_t>(g.data);
            auto echo = co_await env.read<std::uint32_t>(g.data + 4);
            if (seq != echo)
                ok = false;  // saw the counter without its echo
            co_await env.write<std::uint32_t>(g.data, seq + 1);
            co_await env.compute(7);
            co_await env.write<std::uint32_t>(g.data + 4, seq + 1);
            co_await env.unlockQueued(g.lock);
        }
    });
    m.run(w);
    EXPECT_TRUE(ok);
    EXPECT_EQ(m.memory().load<std::uint32_t>(g.data), 96u);
}

TEST(ExtensionInterplay, TracesCaptureQueuedWorkloadsViaSyncOps)
{
    // The trace records t&t&s locks; queued locks are a processor
    // primitive not yet traced - make sure the recorder at least does
    // not disturb a queued-lock workload.
    MachineConfig cfg;
    cfg.cpu.consistency = Consistency::RC;
    Machine m(cfg);
    auto mk = []() {
        return std::make_unique<Lambda>(setupG, [](Env env) -> SimProcess {
            co_await env.lock(g.lock);
            auto v = co_await env.read<std::uint64_t>(g.data);
            co_await env.write<std::uint64_t>(g.data, v + 1);
            co_await env.unlock(g.lock);
        });
    };
    TraceRecorder rec(mk());
    m.run(rec);
    Trace t = rec.takeTrace();
    unsigned locks = 0;
    for (auto &ops : t.procs)
        for (auto &op : ops)
            locks += op.kind == TraceOp::Kind::Lock ? 1 : 0;
    EXPECT_EQ(locks, 16u);
}

TEST(ExtensionInterplay, WcBarrierStillCorrect)
{
    MachineConfig cfg;
    cfg.cpu.consistency = Consistency::WC;
    Machine m(cfg);
    std::array<std::uint32_t, 16> sums{};
    Lambda w(setupG, [&sums](Env env) -> SimProcess {
        co_await env.write<std::uint32_t>(g.data + 64 * env.pid(), 3);
        co_await env.barrier(g.bar, env.nprocs());
        std::uint32_t s = 0;
        for (unsigned p = 0; p < env.nprocs(); ++p)
            s += co_await env.read<std::uint32_t>(g.data + 64 * p);
        sums[env.pid()] = s;
    });
    m.run(w);
    for (auto s : sums)
        EXPECT_EQ(s, 48u);
}
