/**
 * @file
 * Differential identity proof for the direct-execution fast path: the
 * same figure grids the bench binaries run must serialize to the exact
 * same bytes with the fast path on and off, across host-parallelism
 * (DASHSIM_JOBS-style worker counts) and event-kernel shard counts,
 * and under the per-reference eligibility fuzzer. A second group pins
 * the Table 1 unloaded latencies through the Machine-level path with
 * the fast path forced off by observability (and asserts that guard
 * explicitly).
 *
 * The test harness sets DASHSIM_CHECK=1, which turns the protocol
 * checkers on by default — and active checkers disable the fast path,
 * which would make every comparison here vacuously on==off. Each arm
 * therefore clears the checker config explicitly; the identity the
 * checkers would have vouched for is exactly what the byte comparison
 * establishes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace dashsim;

namespace {

/** The (app x technique) grid of one figure over the quick data sets. */
std::vector<RunPoint>
gridPoints(const std::vector<Technique> &techniques)
{
    std::vector<RunPoint> points;
    for (auto &[name, factory] : testWorkloads()) {
        for (const auto &t : techniques) {
            points.push_back(
                RunPoint{factory, t, {}, name + "/" + t.label()});
        }
    }
    return points;
}

/** Serialize every outcome, asserting each point succeeded. */
std::vector<std::string>
serializeAll(const std::vector<RunOutcome> &outcomes)
{
    std::vector<std::string> out;
    out.reserve(outcomes.size());
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.ok) << o.label << ": " << o.error;
        out.push_back("label=" + o.label + "\n" +
                      serializeResult(o.result));
    }
    return out;
}

/**
 * Run one grid with the fast path configured @p fast, the checkers
 * cleared (see the file comment), @p shards kernel shards, and
 * @p jobs batch workers; serialize every point.
 */
std::vector<std::string>
runGrid(const std::vector<RunPoint> &points, bool fast,
        std::uint32_t shards, unsigned jobs,
        std::uint64_t fuzz_seed = 0)
{
    RunBatch batch(jobs);
    for (auto p : points) {
        p.configure = [fast, shards, fuzz_seed](MachineConfig &cfg) {
            cfg.cpu.fastPath = fast;
            cfg.cpu.fastPathFuzzSeed = fuzz_seed;
            cfg.shards = shards;
            cfg.check.coherence = false;
            cfg.check.race = false;
            cfg.check.conservation = false;
        };
        batch.add(std::move(p));
    }
    return serializeAll(batch.run());
}

void
expectSame(const std::vector<std::string> &a,
           const std::vector<std::string> &b, const std::string &what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "point " << i << " differs: " << what;
}

/**
 * Fast-path-off at (1 shard, 1 job) is the reference; fast-path-on
 * must match it byte-for-byte at every (shards, jobs) combination.
 * Comparing every on-combination against the one off-reference also
 * transitively establishes the off-arm's shard/job invariance (which
 * determinism_test proves directly).
 */
void
expectFastPathIdentity(const std::vector<Technique> &techniques,
                       const std::vector<std::pair<std::uint32_t,
                                                   unsigned>> &combos)
{
    auto points = gridPoints(techniques);
    auto off = runGrid(points, false, 1, 1);
    for (auto [shards, jobs] : combos) {
        auto on = runGrid(points, true, shards, jobs);
        expectSame(off, on,
                   "fast on vs off at shards=" + std::to_string(shards) +
                       " jobs=" + std::to_string(jobs));
    }
}

/** Full DASHSIM_SHARDS {1,4} x DASHSIM_JOBS {1,8} cross. */
const std::vector<std::pair<std::uint32_t, unsigned>> fullCross = {
    {1, 1}, {1, 8}, {4, 1}, {4, 8}};

/** Corner cross for the big grids, to bound suite runtime. */
const std::vector<std::pair<std::uint32_t, unsigned>> cornerCross = {
    {1, 1}, {4, 8}};

} // namespace

TEST(FastPathDiff, Figure2Grid)
{
    expectFastPathIdentity({Technique::noCache(), Technique::sc()},
                           fullCross);
}

TEST(FastPathDiff, Figure3Grid)
{
    expectFastPathIdentity({Technique::sc(), Technique::rc()},
                           fullCross);
}

TEST(FastPathDiff, Figure4Grid)
{
    expectFastPathIdentity(
        {Technique::sc(), Technique::scPrefetch(), Technique::rc(),
         Technique::rcPrefetch()},
        fullCross);
}

TEST(FastPathDiff, Figure5Grid)
{
    expectFastPathIdentity(
        {Technique::sc(), Technique::multiContext(2, 16),
         Technique::multiContext(4, 16), Technique::multiContext(2, 4),
         Technique::multiContext(4, 4)},
        cornerCross);
}

TEST(FastPathDiff, Figure6Grid)
{
    expectFastPathIdentity(
        {Technique::sc(), Technique::multiContext(2, 4),
         Technique::multiContext(4, 4), Technique::rc(),
         Technique::multiContext(2, 4, Consistency::RC),
         Technique::multiContext(4, 4, Consistency::RC),
         Technique::rcPrefetch(),
         Technique::multiContext(2, 4, Consistency::RC, true),
         Technique::multiContext(4, 4, Consistency::RC, true)},
        cornerCross);
}

/**
 * Randomized eligibility property: the fuzz knob flips fast-path
 * eligibility pseudo-randomly per reference (and per suspend seam),
 * exercising every interleaving of window-batched and general-path
 * references. Any seed must stay byte-identical to the unfuzzed run.
 */
TEST(FastPathDiff, EligibilityFuzzIsByteIdentical)
{
    auto points = gridPoints({Technique::sc(), Technique::rc()});
    auto baseline = runGrid(points, true, 1, 1, 0);
    for (std::uint64_t seed :
         {0x1ull, 0x2aull, 0x9e3779b97f4a7c15ull, 0xdeadbeefcafef00dull}) {
        auto fuzzed = runGrid(points, true, 1, 1, seed);
        expectSame(baseline, fuzzed,
                   "fuzz seed " + std::to_string(seed));
    }
}

/** DASHSIM_FASTPATH=0 is a process-wide kill switch: it must force the
 *  general path (observable via directExecActive) and, being on the
 *  byte-identical side of the gate, must not change any result. */
TEST(FastPathDiff, EnvKillSwitch)
{
    auto points = gridPoints({Technique::sc()});
    auto baseline = runGrid(points, true, 1, 1);

    ASSERT_EQ(setenv("DASHSIM_FASTPATH", "0", 1), 0);
    MachineConfig cfg;
    cfg.check = CheckConfig{};
    cfg.check.coherence = false;
    cfg.check.race = false;
    cfg.check.conservation = false;
    cfg.cpu.fastPath = true;
    EXPECT_FALSE(Machine(cfg).directExecActive());
    auto killed = runGrid(points, true, 1, 1);
    ASSERT_EQ(unsetenv("DASHSIM_FASTPATH"), 0);

    EXPECT_TRUE(Machine(cfg).directExecActive());
    expectSame(baseline, killed, "DASHSIM_FASTPATH=0");
}

/** Every observability or checker consumer must force the general
 *  dispatch path, one knob at a time. */
TEST(FastPathDiff, ObservabilityDisablesFastPath)
{
    auto eligible = [] {
        MachineConfig cfg;
        cfg.cpu.fastPath = true;
        cfg.check.coherence = false;
        cfg.check.race = false;
        cfg.check.conservation = false;
        return cfg;
    };

    EXPECT_TRUE(Machine(eligible()).directExecActive());

    MachineConfig c1 = eligible();
    c1.obs.attribution = true;
    EXPECT_FALSE(Machine(c1).directExecActive());

    MachineConfig c2 = eligible();
    c2.check.conservation = true;
    EXPECT_FALSE(Machine(c2).directExecActive());

    MachineConfig c3 = eligible();
    c3.check.coherence = true;
    EXPECT_FALSE(Machine(c3).directExecActive());

    MachineConfig c4 = eligible();
    c4.check.race = true;
    EXPECT_FALSE(Machine(c4).directExecActive());

    MachineConfig c5 = eligible();
    c5.cpu.numContexts = 2;
    EXPECT_FALSE(Machine(c5).directExecActive());

    MachineConfig c6 = eligible();
    c6.cpu.fastPath = false;
    EXPECT_FALSE(Machine(c6).directExecActive());

    MachineConfig c7 = eligible();
    c7.obs.registryPath = ::testing::TempDir() + "fastpath_gate_reg.json";
    EXPECT_FALSE(Machine(c7).directExecActive());
}

// ---------------------------------------------------------------------
// Table 1 unloaded latencies through the full Machine path.
// ---------------------------------------------------------------------

namespace {

/**
 * Unloaded-latency probe: process 0 (node 0) performs a deterministic
 * set of accesses hitting every Table 1 service class; process 2
 * (node 2) first dirties a few lines homed on node 1 so process 0 can
 * observe the 3-hop remote-dirty cases, then goes quiet. Process 0
 * separates itself with pure compute (no shared accesses), so every
 * probe runs on an otherwise idle machine. The dirty-line handoff is
 * deliberately unsynchronized (compute-delay ordered), so those
 * references are labeled racy for the happens-before detector.
 */
class Table1Probe : public Workload
{
  public:
    std::string name() const override { return "T1PROBE"; }

    static constexpr int kSamples = 3;

    void
    setup(Machine &m) override
    {
        SharedMemory &mem = m.memory();
        // Cache-set layout matters: the quick config's caches are
        // direct-mapped (primary 128 lines, secondary 256), so probe
        // lines are hand-placed inside page-aligned blocks at offsets
        // that never alias - a conflict would silently evict a staged
        // dirty line (writing it back clean) or a staged hit line and
        // shift that probe into a different Table 1 class.
        //
        // One 4 KiB block per sample on node 0: base and base+2048
        // conflict in the primary cache but land in distinct sets of
        // the secondary, staging the secondary hit. All bases map to
        // primary/secondary set 0.
        for (int i = 0; i < kSamples; ++i)
            localBlk[i] = mem.allocLocal(4096, 0, pageBytes);
        // Write-probe lines at +512: primary sets 32-35.
        Addr w0 = mem.allocLocal(pageBytes, 0, pageBytes);
        for (int i = 0; i < kSamples; ++i)
            localWr[i] = w0 + 512 + lineBytes * i;
        hitWr = w0 + 512 + lineBytes * 3;
        // Remote lines at +1024: primary sets 64-75.
        Addr r1 = mem.allocLocal(pageBytes, 1, pageBytes);
        for (int i = 0; i < kSamples; ++i) {
            remoteRd[i] = r1 + 1024 + lineBytes * i;
            dirtyRd[i] = r1 + 1024 + lineBytes * (3 + i);
            dirtyWr[i] = r1 + 1024 + lineBytes * (6 + i);
            remoteWr[i] = r1 + 1024 + lineBytes * (9 + i);
        }
    }

    SimProcess
    run(Env env) override
    {
        const unsigned pid = env.pid();
        if (pid == 2) {
            // Dirty the 3-hop lines: uncached remote-home writes (the
            // Table 1 "64" class, themselves unloaded samples of it).
            for (int i = 0; i < kSamples; ++i) {
                co_await env.writeRacy<std::uint32_t>(dirtyRd[i], 1);
                co_await env.writeRacy<std::uint32_t>(dirtyWr[i], 1);
            }
            co_return;
        }
        if (pid != 0)
            co_return;

        // Let process 2's writes drain on an otherwise idle machine.
        co_await env.compute(5000);

        for (int i = 0; i < kSamples; ++i) {
            // Read classes: local miss (26), primary hit (1), then
            // evict via the conflicting line (another 26) and re-read
            // for the secondary hit (14).
            (void)co_await env.read<std::uint32_t>(localBlk[i]);
            (void)co_await env.read<std::uint32_t>(localBlk[i]);
            (void)co_await env.read<std::uint32_t>(localBlk[i] + 2048);
            (void)co_await env.read<std::uint32_t>(localBlk[i]);
            // Remote home (72) and 3-hop remote dirty (90).
            (void)co_await env.read<std::uint32_t>(remoteRd[i]);
            (void)co_await env.readRacy<std::uint32_t>(dirtyRd[i]);

            // Write classes: local miss (18), owned hit (2; the first
            // hitWr write is itself an 18 miss, so write it twice),
            // remote miss (64), 3-hop remote dirty (82).
            co_await env.write<std::uint32_t>(localWr[i], 1);
            co_await env.write<std::uint32_t>(hitWr, 1);
            co_await env.write<std::uint32_t>(hitWr, 2);
            co_await env.write<std::uint32_t>(remoteWr[i], 1);
            co_await env.writeRacy<std::uint32_t>(dirtyWr[i], 2);
        }
    }

  private:
    Addr localBlk[kSamples] = {};
    Addr remoteRd[kSamples] = {};
    Addr dirtyRd[kSamples] = {};
    Addr dirtyWr[kSamples] = {};
    Addr localWr[kSamples] = {};
    Addr remoteWr[kSamples] = {};
    Addr hitWr = 0;
};

} // namespace

TEST(Table1Pin, UnloadedLatencyMediansWithFastPathForcedOff)
{
    MachineConfig cfg;
    cfg.mem.numNodes = 4;
    cfg.cpu.fastPath = true;  // requested, but observability wins
    cfg.obs.attribution = true;
    cfg.check.conservation = true;  // audits every record's phases

    Machine m(cfg);
    // The explicit guard: an observability consumer forces the
    // general dispatch path even though the config asked for the fast
    // path, so the latencies below are measured on the audited path.
    ASSERT_FALSE(m.directExecActive());
    ASSERT_NE(m.attribution(), nullptr);

    Table1Probe probe;
    RunResult r = m.run(probe);
    EXPECT_GT(r.execTime, 5000u);

    auto median = [&](obs::TxnOp op, ServiceLevel level) {
        const auto &c = m.attribution()->stats(op, level);
        EXPECT_GE(c.latency.count(), 3u)
            << obs::txnOpName(op) << "." << obs::serviceLevelName(level);
        return c.latency.median();
    };

    // Table 1, read column: 1 / 14 / 26 / 72 / 90.
    EXPECT_EQ(median(obs::TxnOp::Read, ServiceLevel::PrimaryHit), 1.0);
    EXPECT_EQ(median(obs::TxnOp::Read, ServiceLevel::SecondaryHit), 14.0);
    EXPECT_EQ(median(obs::TxnOp::Read, ServiceLevel::LocalNode), 26.0);
    EXPECT_EQ(median(obs::TxnOp::Read, ServiceLevel::HomeNode), 72.0);
    EXPECT_EQ(median(obs::TxnOp::Read, ServiceLevel::RemoteNode), 90.0);

    // Table 1, write column: 2 / 18 / 64 / 82. A write hit probes the
    // secondary tags (writes are no-allocate-in-primary on this
    // protocol's write path), so the 2-cycle hit class is SecondaryHit.
    EXPECT_EQ(median(obs::TxnOp::Write, ServiceLevel::SecondaryHit), 2.0);
    EXPECT_EQ(median(obs::TxnOp::Write, ServiceLevel::LocalNode), 18.0);
    EXPECT_EQ(median(obs::TxnOp::Write, ServiceLevel::HomeNode), 64.0);
    EXPECT_EQ(median(obs::TxnOp::Write, ServiceLevel::RemoteNode), 82.0);
}
