/**
 * @file
 * Figure-shape regression suite: runs the quick-mode grids behind
 * Figures 2-6 through the batch runner and asserts the paper's
 * qualitative findings as recorded in EXPERIMENTS.md — who wins, and
 * where the crossovers fall. A perf refactor that silently corrupts
 * the reproduction target fails here, not in a human's eyeball diff.
 *
 * The suite runs with the protocol-verification layer forced on
 * (DASHSIM_CHECK=1 from tests/CMakeLists.txt), so every grid point is
 * also a coherence and race audit.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace dashsim;

namespace {

/**
 * All technique points the Figure 2-6 shape claims need, run once per
 * app through the batch runner and shared across the tests.
 */
class FigureShapes : public ::testing::Test
{
  protected:
    static constexpr const char *apps[3] = {"MP3D", "LU", "PTHOR"};

    static void
    SetUpTestSuite()
    {
        results = new std::map<std::string, RunResult>();

        const std::pair<std::string, Technique> techniques[] = {
            {"nocache", Technique::noCache()},
            {"sc", Technique::sc()},
            {"rc", Technique::rc()},
            {"scpf", Technique::scPrefetch()},
            {"rcpf", Technique::rcPrefetch()},
            {"sc4ctx", Technique::multiContext(4, 4)},
            {"rc4ctx", Technique::multiContext(4, 4, Consistency::RC)},
        };

        RunBatch batch;
        for (auto &[name, factory] : testWorkloads())
            for (const auto &[key, t] : techniques)
                batch.add(factory, t, {}, name + "/" + key);

        for (auto &o : batch.run()) {
            ASSERT_TRUE(o.ok) << o.label << ": " << o.error;
            // The verification layer is on for the whole suite; a grid
            // point with protocol violations is not a valid shape.
            ASSERT_EQ(o.result.coherenceViolations, 0u) << o.label;
            ASSERT_EQ(o.result.racesDetected, 0u) << o.label;
            (*results)[o.label] = o.result;
        }
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        results = nullptr;
    }

    static const RunResult &
    at(const std::string &app, const std::string &key)
    {
        auto it = results->find(app + "/" + key);
        EXPECT_NE(it, results->end()) << app << "/" << key;
        return it->second;
    }

    static std::map<std::string, RunResult> *results;
};

std::map<std::string, RunResult> *FigureShapes::results = nullptr;
constexpr const char *FigureShapes::apps[3];

} // namespace

/** Figure 2: coherent caching of shared data is a clear win. */
TEST_F(FigureShapes, CachingSpeedsUpAllApps)
{
    for (const char *app : apps) {
        double s = speedup(at(app, "sc"), at(app, "nocache"));
        EXPECT_GT(s, 1.4) << app << ": caching speedup " << s;
    }
}

/** Figure 3: RC removes all write stall and never loses to SC. */
TEST_F(FigureShapes, RcAtLeastAsFastAsScEverywhere)
{
    for (const char *app : apps) {
        const RunResult &sc = at(app, "sc");
        const RunResult &rc = at(app, "rc");
        EXPECT_EQ(rc.bucket(Bucket::Write), 0u)
            << app << ": RC left write stall";
        EXPECT_LE(rc.execTime, sc.execTime)
            << app << ": RC slower than SC";
    }
    // And the paper's gain ordering: MP3D gains most, LU least.
    double mp3d = speedup(at("MP3D", "rc"), at("MP3D", "sc"));
    double lu = speedup(at("LU", "rc"), at("LU", "sc"));
    EXPECT_GT(mp3d, lu);
}

/** Figure 4: prefetching helps the regular applications. */
TEST_F(FigureShapes, PrefetchHelpsMp3dAndLu)
{
    for (const char *app : {"MP3D", "LU"}) {
        EXPECT_LT(at(app, "scpf").execTime, at(app, "sc").execTime)
            << app << ": SC+PF did not beat SC";
        EXPECT_LT(at(app, "rcpf").execTime, at(app, "rc").execTime)
            << app << ": RC+PF did not beat RC";
        EXPECT_GT(at(app, "rcpf").readHitPct, at(app, "rc").readHitPct)
            << app << ": prefetch did not raise the read hit rate";
        EXPECT_GT(at(app, "rcpf").bucket(Bucket::PfOverhead), 0u)
            << app << ": no prefetch overhead section";
    }
}

/** Figure 5: 4 contexts with a 4-cycle switch beat a single context. */
TEST_F(FigureShapes, FourContextsFourCycleSwitchBeatSingleContext)
{
    for (const char *app : apps) {
        const RunResult &one = at(app, "sc");
        const RunResult &four = at(app, "sc4ctx");
        EXPECT_LT(four.execTime, one.execTime)
            << app << ": 4ctx/sw4 normalized time "
            << normalizedTime(four, one);
    }
}

/** Figure 6: combining RC with prefetch is best (or tied) among the
 *  single-context techniques for the regular applications. */
TEST_F(FigureShapes, CombinedRcPrefetchBestOrTiedOnMp3dAndLu)
{
    for (const char *app : {"MP3D", "LU"}) {
        Tick best = at(app, "rcpf").execTime;
        for (const char *other : {"sc", "scpf", "rc"}) {
            EXPECT_LE(static_cast<double>(best),
                      1.02 * static_cast<double>(at(app, other).execTime))
                << app << ": RC+PF loses to " << other;
        }
    }
}

/** Figure 6: RC also improves the multi-context machine. */
TEST_F(FigureShapes, RcImprovesFourContexts)
{
    for (const char *app : apps) {
        EXPECT_LE(at(app, "rc4ctx").execTime,
                  at(app, "sc4ctx").execTime)
            << app << ": RC did not help 4 contexts";
    }
}

// ---------------------------------------------------------------------
// 64-node quick grid (contended mesh, limited-pointer directory): the
// qualitative claims must survive above the old 32-node cap. The quick
// inputs weak-scale poorly to 64 processors (fixed problem, growing
// sync cost), so only the structural orderings are asserted, not the
// 16-node magnitudes.
// ---------------------------------------------------------------------

namespace {

class FigureShapes64 : public ::testing::Test
{
  protected:
    static constexpr const char *apps[3] = {"MP3D", "LU", "PTHOR"};

    static void
    SetUpTestSuite()
    {
        results = new std::map<std::string, RunResult>();

        const std::pair<std::string, Technique> techniques[] = {
            {"nocache", Technique::noCache()},
            {"sc", Technique::sc()},
            {"rc", Technique::rc()},
        };

        RunBatch batch;
        for (auto &[name, factory] : testWorkloads()) {
            for (const auto &[key, t] : techniques) {
                RunPoint p;
                p.factory = factory;
                p.technique = t;
                p.label = name + "/" + key;
                p.configure = [](MachineConfig &cfg) {
                    cfg.mem.numNodes = 64;
                    cfg.mem.lat.mesh = true;
                    cfg.mem.dirFormat = DirFormat::LimitedPointer;
                };
                batch.add(std::move(p));
            }
        }

        for (auto &o : batch.run()) {
            ASSERT_TRUE(o.ok) << o.label << ": " << o.error;
            ASSERT_EQ(o.result.coherenceViolations, 0u) << o.label;
            ASSERT_EQ(o.result.racesDetected, 0u) << o.label;
            (*results)[o.label] = o.result;
        }
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        results = nullptr;
    }

    static const RunResult &
    at(const std::string &app, const std::string &key)
    {
        auto it = results->find(app + "/" + key);
        EXPECT_NE(it, results->end()) << app << "/" << key;
        return it->second;
    }

    static std::map<std::string, RunResult> *results;
};

std::map<std::string, RunResult> *FigureShapes64::results = nullptr;
constexpr const char *FigureShapes64::apps[3];

} // namespace

/** Figure 2's direction holds at 64 nodes: caching never loses. */
TEST_F(FigureShapes64, CachingStillWinsAt64Nodes)
{
    for (const char *app : apps) {
        double s = speedup(at(app, "sc"), at(app, "nocache"));
        EXPECT_GT(s, 1.0) << app << ": 64-node caching speedup " << s;
    }
}

/** Figure 3's direction holds at 64 nodes: RC hides most of the write
 *  latency and never loses to SC. Unlike the 16-node grid, write stall
 *  is not exactly zero here - the broadcast invalidation traffic of
 *  the overflowed limited-pointer directory can back up the 16-deep
 *  write buffer, and buffer-full stall is charged to the write bucket
 *  - but it must stay far below SC's per-write stalling. */
TEST_F(FigureShapes64, RcStillAtLeastAsFastAsScAt64Nodes)
{
    for (const char *app : apps) {
        const RunResult &sc = at(app, "sc");
        const RunResult &rc = at(app, "rc");
        EXPECT_LT(rc.bucket(Bucket::Write), sc.bucket(Bucket::Write) / 2)
            << app << ": RC did not hide most write stall at 64 nodes";
        EXPECT_LE(rc.execTime, sc.execTime)
            << app << ": RC slower than SC at 64 nodes";
    }
}
