/**
 * @file
 * Tests for the machine-inspection reports and the CSV exporter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hh"
#include "core/inspect.hh"
#include "core/report.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Sweep : public Workload
{
  public:
    std::string name() const override { return "sweep"; }

    void
    setup(Machine &m) override
    {
        base = m.memory().allocRoundRobin(32 * 1024);
        bar = sync::allocBarrier(m.memory());
    }

    SimProcess
    run(Env env) override
    {
        Addr mine = base + env.pid() * 2048;
        for (int i = 0; i < 40; ++i) {
            auto v = co_await env.read<std::uint64_t>(mine + 16 * i);
            co_await env.compute(5);
            co_await env.write<std::uint64_t>(mine + 16 * i, v + 1);
        }
        co_await env.barrier(bar, env.nprocs());
    }

    Addr base = 0, bar = 0;
};

} // namespace

TEST(Inspect, ServiceCountsCoverAllAccesses)
{
    Machine m(makeMachineConfig(Technique::sc()));
    Sweep w;
    RunResult r = m.run(w);
    MemoryInspection mi = inspectMemory(m, r.execTime);

    std::uint64_t total = 0;
    for (auto c : mi.serviceCounts)
        total += c;
    // Reads + writes + rmws all land in some service level.
    EXPECT_GE(total, r.sharedReads + r.sharedWrites);
    EXPECT_GT(mi.avgBusUtilization, 0.0);
    EXPECT_LE(mi.avgBusUtilization, 1.0);
    EXPECT_GE(mi.maxBusUtilization, mi.avgBusUtilization);
    EXPECT_GE(mi.remoteMissFraction, 0.0);
    EXPECT_LE(mi.remoteMissFraction, 1.0);
}

TEST(Inspect, UncachedRunsReportUncachedLevel)
{
    Machine m(makeMachineConfig(Technique::noCache()));
    Sweep w;
    RunResult r = m.run(w);
    MemoryInspection mi = inspectMemory(m, r.execTime);
    EXPECT_GT(mi.serviceCounts[static_cast<std::size_t>(
                  ServiceLevel::Uncached)],
              0u);
    EXPECT_EQ(mi.serviceCounts[static_cast<std::size_t>(
                  ServiceLevel::PrimaryHit)],
              0u);
}

TEST(Inspect, PrintedReportContainsSections)
{
    Machine m(makeMachineConfig(Technique::rc()));
    Sweep w;
    RunResult r = m.run(w);
    std::ostringstream os;
    printInspection(os, inspectMemory(m, r.execTime));
    auto s = os.str();
    EXPECT_NE(s.find("bus utilization"), std::string::npos);
    EXPECT_NE(s.find("remote-miss share"), std::string::npos);
}

TEST(Inspect, ServiceLevelNamesDistinct)
{
    for (int i = 0; i < 7; ++i)
        for (int j = i + 1; j < 7; ++j)
            EXPECT_STRNE(
                serviceLevelName(static_cast<ServiceLevel>(i)),
                serviceLevelName(static_cast<ServiceLevel>(j)));
}

TEST(Csv, WriteAndParseBack)
{
    Machine m(makeMachineConfig(Technique::rc()));
    Sweep w;
    RunResult r = m.run(w);
    std::string path = "/tmp/dashsim_csv_test.csv";
    writeCsv(path, "test series", {{"RC", r}});

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "# test series");
    std::getline(in, line);  // header
    EXPECT_NE(line.find("exec_cycles"), std::string::npos);
    std::getline(in, line);  // the row
    EXPECT_EQ(line.rfind("RC,", 0), 0u);
    // exec_cycles field round-trips.
    auto comma = line.find(',');
    auto next = line.find(',', comma + 1);
    EXPECT_EQ(std::stoull(line.substr(comma + 1, next - comma - 1)),
              r.execTime);
    std::remove(path.c_str());
}
