/**
 * @file
 * Consistency litmus tests (src/check/litmus.*): the classic
 * message-passing and store-buffering kernels must never show their
 * forbidden outcome under sequential consistency, and must show it
 * under release consistency (the reordering the paper's Section 4
 * exploits for performance). IRIW's exotic outcome is impossible under
 * both models because the directory protocol keeps stores atomic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/litmus.hh"

using namespace dashsim;

namespace {

std::string
histogram(const LitmusResult &r)
{
    std::ostringstream os;
    for (const auto &[key, n] : r.outcomes)
        os << "  " << key << " x" << n << "\n";
    return os.str();
}

} // namespace

TEST(Litmus, MessagePassingForbiddenUnderSc)
{
    auto r = runLitmus(LitmusKind::MessagePassing, Consistency::SC, 120);
    EXPECT_EQ(r.reordered, 0u) << histogram(r);
    EXPECT_EQ(r.iterations, 120u);
}

TEST(Litmus, MessagePassingObservableUnderRc)
{
    auto r = runLitmus(LitmusKind::MessagePassing, Consistency::RC, 120);
    EXPECT_GT(r.reordered, 0u) << histogram(r);
}

TEST(Litmus, StoreBufferingForbiddenUnderSc)
{
    auto r = runLitmus(LitmusKind::StoreBuffering, Consistency::SC, 64);
    EXPECT_EQ(r.reordered, 0u) << histogram(r);
}

TEST(Litmus, StoreBufferingObservableUnderRc)
{
    auto r = runLitmus(LitmusKind::StoreBuffering, Consistency::RC, 64);
    EXPECT_GT(r.reordered, 0u) << histogram(r);
}

TEST(Litmus, IriwAtomicStoresUnderSc)
{
    auto r = runLitmus(LitmusKind::Iriw, Consistency::SC, 48);
    EXPECT_EQ(r.reordered, 0u) << histogram(r);
}

TEST(Litmus, IriwAtomicStoresUnderRc)
{
    // Even under RC the two readers can never disagree on the order of
    // the two independent writes: invalidation-based coherence makes
    // each store visible to everyone at once (store atomicity).
    auto r = runLitmus(LitmusKind::Iriw, Consistency::RC, 48);
    EXPECT_EQ(r.reordered, 0u) << histogram(r);
}

// ---------------------------------------------------------------------
// The same kernels at 64 nodes: the racing quartet is unchanged but
// every protocol message now crosses the big machine's directory and
// (uniform) network, above the old 32-node cap. The consistency-model
// verdicts must be identical.
// ---------------------------------------------------------------------

TEST(Litmus, MessagePassingForbiddenUnderScAt64Nodes)
{
    auto r = runLitmus(LitmusKind::MessagePassing, Consistency::SC, 60,
                       64);
    EXPECT_EQ(r.reordered, 0u) << histogram(r);
    EXPECT_EQ(r.iterations, 60u);
}

TEST(Litmus, MessagePassingObservableUnderRcAt64Nodes)
{
    auto r = runLitmus(LitmusKind::MessagePassing, Consistency::RC, 60,
                       64);
    EXPECT_GT(r.reordered, 0u) << histogram(r);
}

TEST(Litmus, StoreBufferingForbiddenUnderScAt64Nodes)
{
    auto r = runLitmus(LitmusKind::StoreBuffering, Consistency::SC, 32,
                       64);
    EXPECT_EQ(r.reordered, 0u) << histogram(r);
}

TEST(Litmus, StoreBufferingObservableUnderRcAt64Nodes)
{
    auto r = runLitmus(LitmusKind::StoreBuffering, Consistency::RC, 32,
                       64);
    EXPECT_GT(r.reordered, 0u) << histogram(r);
}
