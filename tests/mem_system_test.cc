/**
 * @file
 * Unit tests for the DASH-style memory system: Table 1 latencies,
 * directory-protocol state transitions, read-exclusive grants, write
 * and prefetch buffers, store forwarding, invalidation-based watches,
 * and the uncached mode.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace dashsim;

namespace {

struct Rig : ::testing::Test
{
    EventQueue eq;
    SharedMemory mem{16};
    MemConfig cfg{};
    MemorySystem ms{eq, mem, cfg};
    Addr local, homed4, homed9;

    Rig()
        : local(mem.allocLocal(4096, 0)),
          homed4(mem.allocLocal(4096, 4)),
          homed9(mem.allocLocal(4096, 9))
    {}

    void settle() { eq.run(); }
    void settle(Tick t) { eq.runUntil(t); }
};

struct UncachedRig : Rig
{
    EventQueue eq2;
    SharedMemory mem2{16};
    MemConfig ucfg{};
    UncachedRig() { ucfg.cacheSharedData = false; }
};

} // namespace

// ---------------------------------------------------------------------
// Table 1 latencies (uncontended).
// ---------------------------------------------------------------------

TEST_F(Rig, Table1ReadLatencies)
{
    EXPECT_EQ(ms.read(0, local, 0).complete, 26u);     // local fill
    settle();
    EXPECT_EQ(ms.read(0, local, eq.now()).complete - eq.now(), 1u);

    EXPECT_EQ(ms.read(1, homed4, eq.now()).complete - eq.now(), 72u);
}

TEST_F(Rig, Table1SecondaryFill)
{
    ms.read(0, local, 0);
    settle();
    // Conflict in the 128-line primary but not the 256-line secondary.
    ms.read(0, local + 2048, eq.now());
    settle();
    Tick t0 = eq.now();
    auto o = ms.read(0, local, t0);
    EXPECT_EQ(o.complete - t0, 14u);
    EXPECT_EQ(o.level, ServiceLevel::SecondaryHit);
}

TEST_F(Rig, Table1WriteLatencies)
{
    EXPECT_EQ(ms.writeSc(0, local, 1, 4, 0).complete, 18u);
    settle();
    Tick t0 = eq.now();
    EXPECT_EQ(ms.writeSc(0, local, 2, 4, t0).complete - t0, 2u);

    EXPECT_EQ(ms.writeSc(1, homed4, 1, 4, t0).complete - t0, 64u);
}

TEST_F(Rig, Table1ThreeHopLatencies)
{
    // Node 9 dirties a line homed on node 4; node 0 then accesses it.
    ms.writeSc(9, homed4, 1, 4, 0);
    settle();
    Tick t0 = eq.now();
    EXPECT_EQ(ms.read(0, homed4, t0).complete - t0, 90u);
    settle();

    ms.writeSc(9, homed4 + 64, 1, 4, eq.now());
    settle();
    t0 = eq.now();
    EXPECT_EQ(ms.writeSc(0, homed4 + 64, 2, 4, t0).complete - t0, 82u);
}

// ---------------------------------------------------------------------
// Directory-protocol behavior.
// ---------------------------------------------------------------------

TEST_F(Rig, LocalReadGetsExclusiveGrant)
{
    ms.read(0, local, 0);
    settle();
    // The home granted ownership: the write retires in the cache.
    Tick t0 = eq.now();
    auto w = ms.writeSc(0, local, 1, 4, t0);
    EXPECT_EQ(w.complete - t0, 2u);
    EXPECT_TRUE(w.hit);
}

TEST_F(Rig, RemoteReadIsSharedNotExclusive)
{
    ms.read(1, homed4, 0);
    settle();
    Tick t0 = eq.now();
    auto w = ms.writeSc(1, homed4, 1, 4, t0);
    EXPECT_FALSE(w.hit);
    EXPECT_EQ(w.complete - t0, 64u);  // ownership upgrade at the home
}

TEST_F(Rig, WriteInvalidatesSharers)
{
    ms.read(1, homed4, 0);
    ms.read(2, homed4, 0);
    settle();
    // Node 3 writes: nodes 1 and 2 lose their copies.
    ms.writeSc(3, homed4, 7, 4, eq.now());
    settle();
    EXPECT_EQ(ms.stats(1).invalidationsReceived, 1u);
    EXPECT_EQ(ms.stats(2).invalidationsReceived, 1u);
    // Their next reads miss (three-hop to the new owner).
    Tick t0 = eq.now();
    auto o = ms.read(1, homed4, t0);
    EXPECT_FALSE(o.hit);
    EXPECT_EQ(o.level, ServiceLevel::RemoteNode);
}

TEST_F(Rig, SharingWritebackDowngradesOwner)
{
    ms.writeSc(9, homed4, 5, 4, 0);
    settle();
    ms.read(0, homed4, eq.now());  // 3-hop; 9 is downgraded to Shared
    settle();
    // Node 9 reading again still hits (kept a Shared copy)...
    Tick t0 = eq.now();
    EXPECT_TRUE(ms.read(9, homed4, t0).hit);
    // ...but writing again needs an ownership upgrade.
    auto w = ms.writeSc(9, homed4, 6, 4, t0);
    EXPECT_FALSE(w.hit);
}

TEST_F(Rig, InvalidationAcksArriveAfterOwnership)
{
    ms.read(1, homed4, 0);
    ms.read(2, homed4, 0);
    settle();
    Tick t0 = eq.now();
    auto w = ms.writeSc(3, homed4, 7, 4, t0);
    EXPECT_GT(w.ackDone, w.complete);
}

TEST_F(Rig, WritebackReturnsLineToMemory)
{
    // Dirty a line, then force its eviction with a conflicting fill.
    ms.writeSc(0, local, 1, 4, 0);
    settle();
    ms.read(0, local + 4096, eq.now());  // same secondary set
    settle();
    // After the writeback arrives the directory is Uncached, so another
    // node's read is serviced at the home (72), not three-hop (90).
    Tick t0 = eq.now();
    auto o = ms.read(3, local, t0);
    EXPECT_EQ(o.complete - t0, 72u);
    EXPECT_EQ(o.level, ServiceLevel::HomeNode);
}

TEST_F(Rig, ValueVisibleAfterCommit)
{
    ms.writeSc(0, local, 0x1234, 4, 0);
    settle();
    EXPECT_EQ(mem.loadRaw(local, 4), 0x1234u);
    // And a remote read observes it.
    auto o = ms.read(5, local, eq.now());
    settle();
    EXPECT_EQ(mem.loadRaw(local, 4), 0x1234u);
    (void)o;
}

// ---------------------------------------------------------------------
// MSHR combining and poisoning.
// ---------------------------------------------------------------------

TEST_F(Rig, DemandReadCombinesWithInFlightFill)
{
    auto o1 = ms.read(0, homed4, 0);
    // Second read of the same line before the first returns.
    auto o2 = ms.read(0, homed4 + 8, 5);
    EXPECT_EQ(o2.level, ServiceLevel::Combined);
    EXPECT_LE(o2.complete, o1.complete + 14);
    settle();
}

TEST_F(Rig, DemandCombinesWithPrefetch)
{
    auto p = ms.prefetch(0, homed4, false, 0);
    EXPECT_FALSE(p.dropped);
    auto o = ms.read(0, homed4, 10);
    EXPECT_EQ(o.level, ServiceLevel::Combined);
    settle();
    EXPECT_EQ(ms.stats(0).prefetchesCombined, 1u);
}

TEST_F(Rig, RacingInvalidationPoisonsFill)
{
    // Node 1 starts a read fill of a shared line; node 2 writes it
    // before the fill response lands. The response must not install.
    ms.read(1, homed4, 0);
    ms.writeSc(2, homed4, 9, 4, 1);
    settle();
    Tick t0 = eq.now();
    auto o = ms.read(1, homed4, t0);
    EXPECT_FALSE(o.hit);  // stale fill was discarded
}

// ---------------------------------------------------------------------
// Write buffer (release consistency).
// ---------------------------------------------------------------------

TEST_F(Rig, WriteBufferAcceptsImmediatelyWhenNotFull)
{
    auto o = ms.writeRc(0, homed4, 1, 4, 0, false);
    EXPECT_EQ(o.acceptTick, 0u);
    EXPECT_GT(o.complete, 0u);
    settle();
}

TEST_F(Rig, WriteBufferFullStalls)
{
    // 16-deep buffer: fill it with distinct remote lines; entry 17
    // must wait for a slot.
    BufferOutcome last{};
    for (unsigned i = 0; i < 17; ++i)
        last = ms.writeRc(0, homed4 + i * 64, 1, 4, 0, false);
    EXPECT_GT(last.acceptTick, 0u);
    settle();
}

TEST_F(Rig, WritesPipelineUnderRc)
{
    // Two remote writes issued back to back complete far closer than
    // two serial 64-cycle transactions.
    auto w1 = ms.writeRc(0, homed4, 1, 4, 0, false);
    auto w2 = ms.writeRc(0, homed4 + 64, 2, 4, 0, false);
    EXPECT_LT(w2.complete, w1.complete + 40);
    settle();
}

TEST_F(Rig, ReleaseWaitsForPriorWritesAndAcks)
{
    // Give the line a sharer so the first write generates an ack.
    ms.read(5, homed4, 0);
    settle();
    Tick t0 = eq.now();
    auto w1 = ms.writeRc(0, homed4, 1, 4, t0, false);
    auto rel = ms.writeRc(0, homed9, 2, 4, t0 + 1, true);
    EXPECT_GE(rel.complete, w1.ackDone);
    settle();
}

TEST_F(Rig, ReleaseOrderingIsPerContext)
{
    // Give the line a sharer so context 0's write carries a slow ack.
    ms.read(5, homed4, 0);
    settle();
    Tick t0 = eq.now();
    auto w1 = ms.writeRc(0, homed4, 1, 4, t0, false, /*ctx=*/0);
    ASSERT_GT(w1.ackDone, w1.complete);
    // A release from context 1 does not wait for context 0's write...
    auto rel1 = ms.writeRc(0, homed9, 2, 4, t0 + 1, true, /*ctx=*/1);
    EXPECT_LT(rel1.complete, w1.ackDone);
    // ...but a release from context 0 does.
    auto rel0 = ms.writeRc(0, homed9 + 64, 3, 4, t0 + 2, true, /*ctx=*/0);
    EXPECT_GE(rel0.complete, w1.ackDone);
    settle();
}

TEST_F(Rig, StoreForwardingReturnsPendingValue)
{
    ms.writeRc(0, homed4, 0xabcd, 4, 0, false);
    auto v = ms.pendingStoreValue(0, homed4);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0xabcdu);
    settle();
    // After the write commits the entry is gone.
    EXPECT_FALSE(ms.pendingStoreValue(0, homed4).has_value());
}

// ---------------------------------------------------------------------
// Read-modify-write.
// ---------------------------------------------------------------------

TEST_F(Rig, TestAndSetAtomicity)
{
    // Two racing test&sets: exactly one sees 0.
    std::uint64_t old1 = 99, old2 = 99;
    ms.rmw(1, homed4, RmwOp::TestAndSet, 0, 4, 0,
           [&](std::uint64_t o) { old1 = o; });
    ms.rmw(2, homed4, RmwOp::TestAndSet, 0, 4, 0,
           [&](std::uint64_t o) { old2 = o; });
    settle();
    EXPECT_TRUE((old1 == 0 && old2 == 1) || (old1 == 1 && old2 == 0));
    EXPECT_EQ(mem.loadRaw(homed4, 4), 1u);
}

TEST_F(Rig, FetchAddAccumulates)
{
    for (NodeId n = 0; n < 8; ++n)
        ms.rmw(n, homed4, RmwOp::FetchAdd, 3, 4, n, nullptr);
    settle();
    EXPECT_EQ(mem.loadRaw(homed4, 4), 24u);
}

TEST_F(Rig, ExchangeSwaps)
{
    mem.storeRaw(homed4, 7, 4);
    std::uint64_t old = 0;
    ms.rmw(0, homed4, RmwOp::Exchange, 42, 4, 0,
           [&](std::uint64_t o) { old = o; });
    settle();
    EXPECT_EQ(old, 7u);
    EXPECT_EQ(mem.loadRaw(homed4, 4), 42u);
}

// ---------------------------------------------------------------------
// Prefetch buffer.
// ---------------------------------------------------------------------

TEST_F(Rig, PrefetchInstallsLine)
{
    auto p = ms.prefetch(0, homed4, false, 0);
    EXPECT_FALSE(p.dropped);
    settle();
    Tick t0 = eq.now();
    auto o = ms.read(0, homed4, t0);
    EXPECT_TRUE(o.hit);
    EXPECT_EQ(o.complete - t0, 1u);
}

TEST_F(Rig, RedundantPrefetchDropped)
{
    ms.read(0, homed4, 0);
    settle();
    auto p = ms.prefetch(0, homed4, false, eq.now());
    EXPECT_TRUE(p.dropped);
    EXPECT_EQ(ms.stats(0).prefetchesDropped, 1u);
}

TEST_F(Rig, SharedCopyInadequateForExclusivePrefetch)
{
    ms.read(1, homed4, 0);   // another sharer exists
    ms.read(0, homed4, 0);
    settle();
    auto p = ms.prefetch(0, homed4, true, eq.now());
    EXPECT_FALSE(p.dropped);  // must still acquire ownership
    settle();
    Tick t0 = eq.now();
    auto w = ms.writeSc(0, homed4, 1, 4, t0);
    EXPECT_TRUE(w.hit);       // ...after which writes are cheap
}

TEST_F(Rig, ExclusivePrefetchMakesWriteCheap)
{
    auto p = ms.prefetch(0, homed4, true, 0);
    EXPECT_FALSE(p.dropped);
    settle();
    Tick t0 = eq.now();
    EXPECT_EQ(ms.writeSc(0, homed4, 1, 4, t0).complete - t0, 2u);
}

TEST_F(Rig, PrefetchBufferFullStalls)
{
    BufferOutcome last{};
    for (unsigned i = 0; i < 20; ++i)
        last = ms.prefetch(0, homed4 + i * 16, false, 0);
    EXPECT_GT(last.acceptTick, 0u);
    settle();
}

// ---------------------------------------------------------------------
// Watches.
// ---------------------------------------------------------------------

TEST_F(Rig, WatchFiresOnCommit)
{
    bool fired = false;
    ms.watchLine(homed4, [&] { fired = true; });
    ms.writeSc(0, homed4, 1, 4, 0);
    settle();
    EXPECT_TRUE(fired);
}

TEST_F(Rig, WatchIsOneShot)
{
    int fires = 0;
    ms.watchLine(homed4, [&] { ++fires; });
    ms.writeSc(0, homed4, 1, 4, 0);
    settle();
    ms.writeSc(0, homed4, 2, 4, eq.now());
    settle();
    EXPECT_EQ(fires, 1);
}

TEST_F(Rig, WatchScopedToLine)
{
    bool fired = false;
    ms.watchLine(homed4, [&] { fired = true; });
    ms.writeSc(0, homed4 + lineBytes, 1, 4, 0);  // neighbouring line
    settle();
    EXPECT_FALSE(fired);
}

// ---------------------------------------------------------------------
// Uncached mode (Figure 2 baseline).
// ---------------------------------------------------------------------

TEST(UncachedMode, LatenciesBelowCachedFills)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    cfg.cacheSharedData = false;
    MemorySystem ms(eq, mem, cfg);
    Addr local = mem.allocLocal(256, 0);
    Addr remote = mem.allocLocal(256, 7);

    auto r1 = ms.read(0, local, 0);
    EXPECT_EQ(r1.complete, 20u);  // 26 - 6
    auto r2 = ms.read(3, remote, 0);  // unrelated node: no bus overlap
    EXPECT_EQ(r2.complete, 64u);  // 72 - 8
    // Uncached reads schedule no events; advance the clock explicitly
    // so the earlier resource bookings are in the past.
    eq.runUntil(500);

    // Repeated reads never hit: nothing is cached.
    Tick t0 = eq.now();
    EXPECT_EQ(ms.read(0, local, t0).complete - t0, 20u);

    // Probe the write separately so it does not queue behind the read.
    Tick t1 = t0 + 100;
    auto w = ms.writeSc(0, local, 1, 4, t1);
    EXPECT_EQ(w.complete - t1, 12u);  // 18 - 6
    eq.run();
}

TEST(UncachedMode, PrefetchIsNoop)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    cfg.cacheSharedData = false;
    MemorySystem ms(eq, mem, cfg);
    Addr a = mem.allocLocal(256, 0);
    auto p = ms.prefetch(0, a, false, 0);
    EXPECT_TRUE(p.dropped);
}

// ---------------------------------------------------------------------
// Contended mesh on a partial grid.
// ---------------------------------------------------------------------

/**
 * Five nodes lay out as a ragged 3x2 grid with a hole at position 5
 * (2,1): a dimension-order route whose Y leg starts above the hole
 * traverses it. The traversal must cost its hop of latency without
 * booking a link calendar there (there is no node behind the hole —
 * indexing one was heap UB before the guard).
 */
TEST(PartialGridMesh, RoutesAcrossHolePositions)
{
    EventQueue eq;
    SharedMemory mem(5);
    MemConfig cfg;
    cfg.numNodes = 5;
    cfg.lat.mesh = true;
    MemorySystem ms(eq, mem, cfg);

    // Node 3 at (0,1) reads a line homed on node 2 at (2,0): the X leg
    // ends at (2,1) — the hole — and the Y leg crosses it. Manhattan
    // distance 3 gives hop = 6 + 7*3 = 27; the home-read base swaps
    // two uniform hops for two mesh hops: 72 - 2*20 + 2*27 = 86.
    Addr a = mem.allocLocal(lineBytes, 2);
    auto o = ms.read(3, a, 0);
    EXPECT_EQ(o.complete, 86u);
    eq.run();

    // All-pairs sweep: every route in the ragged grid completes.
    for (NodeId to = 0; to < 5; ++to) {
        Addr b = mem.allocLocal(lineBytes, to);
        for (NodeId from = 0; from < 5; ++from) {
            ms.read(from, b, eq.now());
            eq.run();
        }
        // Exclusive upgrade: invalidation and ack routes for every
        // sharer also walk the mesh.
        ms.writeSc(0, b, 1, 4, eq.now());
        eq.run();
    }
}

/**
 * Mesh hops smaller than netHop can drive the mesh-adjusted walk
 * bases below the uniform constants they replace; with Tick unsigned,
 * that underflow used to wrap to an astronomically large tick. It
 * must fail loudly instead.
 */
TEST(PartialGridMesh, UndersizedMeshHopsFailLoudly)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    cfg.lat.mesh = true;
    cfg.lat.meshBase = 1;
    cfg.lat.meshPerHop = 1;
    cfg.lat.netHop = 100;
    MemorySystem ms(eq, mem, cfg);
    Addr a = mem.allocLocal(lineBytes, 0);
    // readHome (72) folds in 2*netHop = 200 of uniform latency, but
    // the adjacent-node mesh path only restores 2*2 cycles: negative.
    ScopedErrorCapture errors;
    EXPECT_THROW(ms.read(1, a, 0), SimError);
}

// ---------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------

TEST_F(Rig, HitRatesTracked)
{
    ms.read(0, local, 0);
    settle();
    ms.read(0, local, eq.now());
    ms.tryFastRead(0, local);
    settle();
    auto hr = ms.totalReadHits();
    EXPECT_EQ(hr.accesses, 3u);
    EXPECT_EQ(hr.hits, 2u);
}

TEST_F(Rig, FillHookInvoked)
{
    int fills = 0;
    ms.setFillHook(
        [](void *ctx, NodeId, Tick, bool) {
            ++*static_cast<int *>(ctx);
        },
        &fills);
    ms.read(0, homed4, 0);
    settle();
    EXPECT_EQ(fills, 1);
}
