/**
 * @file
 * Tests for the observability layer (src/obs): per-transaction latency
 * attribution against Table 1, phase-vector conservation, the
 * hierarchical counter registry, and whole-machine stall-accounting
 * conservation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "mem/mem_system.hh"
#include "obs/attribution.hh"
#include "obs/registry.hh"
#include "obs/txn.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace dashsim;
using namespace dashsim::obs;

namespace {

/** MemorySystem rig with a txn hook collecting every record. */
struct ObsRig : ::testing::Test
{
    EventQueue eq;
    SharedMemory mem{16};
    MemConfig cfg{};
    MemorySystem ms{eq, mem, cfg};
    std::vector<TxnRecord> records;
    Addr local, homed4, homed4b, homed8;

    ObsRig()
        : local(mem.allocLocal(4096, 0)),
          homed4(mem.allocLocal(4096, 4)),
          homed4b(mem.allocLocal(4096, 4)),
          homed8(mem.allocLocal(4096, 8))
    {
        ms.setTxnHook(
            [](void *v, const TxnRecord &r) {
                static_cast<std::vector<TxnRecord> *>(v)->push_back(r);
            },
            &records);
    }

    void settle() { eq.run(); }

    Tick
    phase(const TxnRecord &r, TxnPhase p) const
    {
        return r.phases[static_cast<std::size_t>(p)];
    }
};

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n;
    while (f && (n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    if (f)
        std::fclose(f);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Phase attribution reproduces Table 1 exactly (uncontended).
// ---------------------------------------------------------------------

TEST_F(ObsRig, LocalReadPhases)
{
    EXPECT_EQ(ms.read(0, local, 0).complete, 26u);
    ASSERT_EQ(records.size(), 1u);
    const TxnRecord &r = records[0];
    EXPECT_EQ(r.op, TxnOp::Read);
    EXPECT_EQ(r.level, ServiceLevel::LocalNode);
    EXPECT_EQ(r.complete - r.start, 26u);
    EXPECT_EQ(phase(r, TxnPhase::Queue), 0u);
    EXPECT_EQ(phase(r, TxnPhase::Network), 0u);
    EXPECT_EQ(phase(r, TxnPhase::Issue), 2u);
    EXPECT_EQ(phase(r, TxnPhase::Fill), 8u);
    EXPECT_EQ(phase(r, TxnPhase::DirWait), 16u);
    EXPECT_EQ(r.phaseSum(), 26u);
}

TEST_F(ObsRig, HomeReadPhases)
{
    EXPECT_EQ(ms.read(1, homed4, 0).complete, 72u);
    ASSERT_EQ(records.size(), 1u);
    const TxnRecord &r = records[0];
    EXPECT_EQ(r.level, ServiceLevel::HomeNode);
    EXPECT_EQ(phase(r, TxnPhase::Network), 40u);  // 2 x 20-cycle hop
    EXPECT_EQ(phase(r, TxnPhase::Issue), 4u);
    EXPECT_EQ(phase(r, TxnPhase::Fill), 8u);
    EXPECT_EQ(phase(r, TxnPhase::DirWait), 20u);
    EXPECT_EQ(r.phaseSum(), 72u);
}

TEST_F(ObsRig, RemoteDirtyReadPhases)
{
    // Node 2 dirties the line, then node 1 reads: 3-hop forward, 90.
    ms.writeSc(2, homed4, 1, 4, 0);
    settle();
    records.clear();
    Tick t = eq.now();
    AccessOutcome o = ms.read(1, homed4, t);
    EXPECT_EQ(o.complete - t, 90u);
    ASSERT_EQ(records.size(), 1u);
    const TxnRecord &r = records[0];
    EXPECT_EQ(r.level, ServiceLevel::RemoteNode);
    EXPECT_EQ(phase(r, TxnPhase::Network), 60u);  // 3 hops
    EXPECT_EQ(phase(r, TxnPhase::Issue), 4u);
    EXPECT_EQ(phase(r, TxnPhase::RemoteFwd), 10u);
    EXPECT_EQ(phase(r, TxnPhase::Fill), 8u);
    EXPECT_EQ(phase(r, TxnPhase::DirWait), 8u);
    EXPECT_EQ(r.phaseSum(), 90u);
}

TEST_F(ObsRig, WritePhases)
{
    // Write-allocate miss to the home node: 64.
    Tick c = ms.writeSc(1, homed4, 1, 4, 0).complete;
    EXPECT_EQ(c, 64u);
    ASSERT_EQ(records.size(), 1u);
    const TxnRecord &r = records[0];
    EXPECT_EQ(r.op, TxnOp::Write);
    EXPECT_EQ(phase(r, TxnPhase::Network), 40u);
    EXPECT_EQ(phase(r, TxnPhase::Issue), 4u);
    EXPECT_EQ(phase(r, TxnPhase::Fill), 8u);
    EXPECT_EQ(phase(r, TxnPhase::DirWait), 12u);
    EXPECT_EQ(r.phaseSum(), 64u);
}

TEST_F(ObsRig, HitsChargeTheCacheLookup)
{
    ms.read(0, local, 0);
    settle();
    records.clear();
    Tick t = eq.now();
    EXPECT_EQ(ms.read(0, local, t).complete - t, 1u);  // primary hit
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].hit);
    EXPECT_EQ(records[0].level, ServiceLevel::PrimaryHit);
    EXPECT_EQ(phase(records[0], TxnPhase::CacheLookup), 1u);
    EXPECT_EQ(records[0].phaseSum(), 1u);
}

TEST_F(ObsRig, QueueingDelayLandsInTheQueuePhase)
{
    // Two concurrent misses from different nodes to the same home
    // directory: the second one queues, and the extra cycles must show
    // up in its Queue phase, keeping the phase sum conservative.
    ms.read(1, homed4, 0);
    AccessOutcome o2 = ms.read(2, homed4b, 0);
    ASSERT_EQ(records.size(), 2u);
    const TxnRecord &r2 = records[1];
    EXPECT_EQ(r2.complete - r2.start, o2.complete);
    EXPECT_EQ(phase(r2, TxnPhase::Queue),
              (o2.complete - 0) - 72u);  // everything beyond Table 1
    EXPECT_EQ(r2.phaseSum(), o2.complete - r2.start);
}

TEST_F(ObsRig, EveryRecordConserves)
{
    // A busy little mix: misses, hits, upgrades, rmws, prefetches.
    ms.read(0, local, 0);
    ms.read(1, homed4, 0);
    settle();
    ms.writeSc(1, homed4, 7, 4, eq.now());
    ms.rmw(2, local, RmwOp::FetchAdd, 1, 4, eq.now(), nullptr);
    ms.prefetch(3, homed8, false, eq.now());
    settle();
    EXPECT_GE(records.size(), 5u);
    for (const TxnRecord &r : records) {
        EXPECT_GE(r.complete, r.start);
        EXPECT_EQ(r.phaseSum(), r.complete - r.start)
            << txnOpName(r.op) << "." << serviceLevelName(r.level);
    }
}

// ---------------------------------------------------------------------
// Attribution aggregation and the conservation audit.
// ---------------------------------------------------------------------

TEST(Attribution, AggregatesPerClass)
{
    Attribution a(true);
    TxnRecord r{};
    r.node = 3;
    r.op = TxnOp::Read;
    r.level = ServiceLevel::HomeNode;
    r.start = 100;
    r.complete = 172;
    r.phase(TxnPhase::Network) = 40;
    r.phase(TxnPhase::Issue) = 4;
    r.phase(TxnPhase::Fill) = 8;
    r.phase(TxnPhase::DirWait) = 20;
    a.record(r);
    a.record(r);
    const auto &c = a.stats(TxnOp::Read, ServiceLevel::HomeNode);
    EXPECT_EQ(c.latency.count(), 2u);
    EXPECT_EQ(c.latency.median(), 72.0);
    EXPECT_EQ(c.phase(TxnPhase::Network), 80u);
    EXPECT_EQ(a.recorded(), 2u);
}

TEST(Attribution, DetectsPhaseConservationViolation)
{
    Attribution a(true);
    TxnRecord r{};
    r.op = TxnOp::Write;
    r.level = ServiceLevel::LocalNode;
    r.start = 0;
    r.complete = 18;
    r.phase(TxnPhase::Issue) = 2;  // 16 cycles unaccounted for
    ScopedErrorCapture capture;
    EXPECT_THROW(a.record(r), SimError);
}

TEST(Attribution, UncheckedModeAcceptsLossyRecords)
{
    Attribution a(false);
    TxnRecord r{};
    r.op = TxnOp::Write;
    r.level = ServiceLevel::LocalNode;
    r.complete = 18;
    a.record(r);
    EXPECT_EQ(a.recorded(), 1u);
}

// ---------------------------------------------------------------------
// Counter registry.
// ---------------------------------------------------------------------

TEST(Registry, NestsDottedNamesAsJsonObjects)
{
    Registry reg;
    reg.set("machine.exec_time", 1234);
    reg.set("p3.l2.miss.remote_dirty", 7);
    reg.set("p3.l2.miss.local", 2);
    reg.set("p3.l2.hit", 99);
    reg.add("p3.l2.hit", 1);
    EXPECT_EQ(reg.get("p3.l2.hit"), 100u);
    EXPECT_TRUE(reg.has("p3.l2.miss.local"));
    EXPECT_FALSE(reg.has("p3.l2.miss"));
    EXPECT_EQ(reg.size(), 4u);

    std::string path = ::testing::TempDir() + "registry_test.json";
    ASSERT_TRUE(reg.writeJson(path));
    std::string text = slurp(path);
    // Siblings share one nested object; values are plain integers.
    EXPECT_NE(text.find("\"machine\""), std::string::npos);
    EXPECT_NE(text.find("\"exec_time\": 1234"), std::string::npos);
    EXPECT_NE(text.find("\"remote_dirty\": 7"), std::string::npos);
    EXPECT_NE(text.find("\"hit\": 100"), std::string::npos);
    // "l2" must appear exactly once: hit and miss nest inside it.
    auto first = text.find("\"l2\"");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("\"l2\"", first + 1), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Whole-machine conservation and registry wiring.
// ---------------------------------------------------------------------

namespace {

RunResult
runWithObs(Machine &m, const std::string &app = "MP3D")
{
    auto w = testWorkload(app)();
    return m.run(*w);
}

} // namespace

TEST(MachineObs, BucketsConserveAndAttributionMatches)
{
    MachineConfig cfg;
    cfg.obs.attribution = true;
    cfg.check.conservation = true;
    Machine m(cfg);
    RunResult r = runWithObs(m);

    // Per-processor conservation (run() already panics on violation;
    // assert it here as the documented external contract too).
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        EXPECT_EQ(m.processor(n).stats().total(), r.execTime) << n;

    ASSERT_NE(m.attribution(), nullptr);
    EXPECT_GT(m.attribution()->recorded(), 0u);

    Registry reg;
    m.fillRegistry(reg, r);
    EXPECT_EQ(reg.get("machine.exec_time"), r.execTime);
    EXPECT_EQ(reg.get("attrib.total"), m.attribution()->recorded());
    EXPECT_TRUE(reg.has("p0.cpu.bucket.busy"));
    EXPECT_TRUE(reg.has("p0.l1.hit"));
    EXPECT_TRUE(reg.has("p0.res.dir.busy_cycles"));

    // Bucket counters mirror the processor stats exactly.
    std::uint64_t busy = 0;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        busy += reg.get("p" + std::to_string(n) + ".cpu.bucket.busy");
    EXPECT_EQ(busy, r.bucket(Bucket::Busy));
}

TEST(MachineObs, MultiContextConserves)
{
    MachineConfig cfg;
    cfg.cpu.numContexts = 4;
    cfg.cpu.switchCycles = 4;
    cfg.check.conservation = true;
    Machine m(cfg);
    RunResult r = runWithObs(m, "LU");
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        EXPECT_EQ(m.processor(n).stats().total(), r.execTime) << n;
}

/**
 * The conservation audit holds at every shard count: windowed sharded
 * execution must not drop, duplicate, or displace attributed cycles
 * relative to the sequential kernel. run() itself panics on a violation
 * (DASHSIM_CHECK=1 in the test environment keeps the checkers armed);
 * the per-processor totals are re-asserted here as the external
 * contract, and the kernel counters confirm the windowed path actually
 * executed.
 */
TEST(MachineObs, ConservationHoldsAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        for (const char *app : {"MP3D", "LU", "PTHOR"}) {
            MachineConfig cfg;
            cfg.shards = shards;
            cfg.obs.attribution = true;
            cfg.check.conservation = true;
            Machine m(cfg);
            RunResult r = runWithObs(m, app);
            for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
                EXPECT_EQ(m.processor(n).stats().total(), r.execTime)
                    << app << " shards=" << shards << " node " << n;

            Registry reg;
            m.fillRegistry(reg, r);
            EXPECT_EQ(reg.get("machine.kernel.shards"), shards);
            if (shards > 1)
                EXPECT_GT(reg.get("machine.kernel.windows"), 0u)
                    << app << " shards=" << shards
                    << ": sharded config never entered the window loop";
        }
    }
}

/**
 * 64-node contended-mesh grid: stall accounting and per-transaction
 * phase conservation stay clean above the old 32-node cap (run()
 * panics on a violation), and the per-link mesh calendars surface in
 * the registry with real traffic on them.
 */
TEST(MachineObs, SixtyFourNodeMeshConservesAndReportsLinkOccupancy)
{
    MachineConfig cfg;
    cfg.mem.numNodes = 64;
    cfg.mem.lat.mesh = true;
    cfg.obs.attribution = true;
    cfg.check.conservation = true;
    Machine m(cfg);
    RunResult r = runWithObs(m, "LU");
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        EXPECT_EQ(m.processor(n).stats().total(), r.execTime) << n;

    Registry reg;
    m.fillRegistry(reg, r);
    ASSERT_TRUE(reg.has("p0.res.linkE.busy_cycles"));
    std::uint64_t link_busy = 0;
    for (NodeId n = 0; n < cfg.mem.numNodes; ++n)
        for (const char *d : {"linkE", "linkW", "linkN", "linkS"})
            link_busy += reg.get("p" + std::to_string(n) + ".res." + d +
                                 ".busy_cycles");
    EXPECT_GT(link_busy, 0u);
}

TEST(MachineObs, AttributionOffByDefaultWithoutConsumers)
{
    MachineConfig cfg;
    cfg.check.conservation = false;
    Machine m(cfg);
    EXPECT_EQ(m.attribution(), nullptr);
    EXPECT_EQ(m.timeline(), nullptr);
}

TEST(MachineObs, RegistryDumpedToConfiguredPath)
{
    std::string path = ::testing::TempDir() + "machine_registry.json";
    MachineConfig cfg;
    cfg.obs.registryPath = path;
    Machine m(cfg);
    runWithObs(m);
    std::string text = slurp(path);
    EXPECT_NE(text.find("\"attrib\""), std::string::npos);
    EXPECT_NE(text.find("\"exec_time\""), std::string::npos);
    std::remove(path.c_str());
}
