/**
 * @file
 * The conservative parallel kernel (sim/pdes.hh) and its SPSC mailbox.
 *
 * The load-bearing properties:
 *  - cross-shard storms merge in (tick, src_shard, seq) order at every
 *    window boundary, so execution is deterministic;
 *  - a program produces identical results at any worker count (serial
 *    window loop included) and across repeated runs;
 *  - the conservative contract (no post below the lookahead horizon)
 *    and the mailbox capacity bound are enforced with panics.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/pdes.hh"
#include "sim/spsc.hh"

using namespace dashsim;

TEST(SpscMailbox, FifoOrderAndCapacityBound)
{
    SpscMailbox<int> box(4);
    EXPECT_EQ(box.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(box.tryPush(int{i}));
    int rejected = 99;
    EXPECT_FALSE(box.tryPush(std::move(rejected)));

    int v = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(box.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(box.tryPop(v));

    // The ring is reusable after a full drain (indices keep running).
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(box.tryPush(i + 10 * round));
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(box.tryPop(v));
            EXPECT_EQ(v, i + 10 * round);
        }
    }
}

TEST(SpscMailbox, CapacityRoundsUpToPowerOfTwo)
{
    SpscMailbox<int> box(5);
    EXPECT_EQ(box.capacity(), 8u);
    SpscMailbox<int> tiny(0);
    EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscMailbox, MoveOnlyPayloads)
{
    SpscMailbox<std::unique_ptr<int>> box(2);
    ASSERT_TRUE(box.tryPush(std::make_unique<int>(7)));
    std::unique_ptr<int> out;
    ASSERT_TRUE(box.tryPop(out));
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, 7);
    // Destructor must release still-queued non-trivial payloads (ASan
    // would catch the leak).
    ASSERT_TRUE(box.tryPush(std::make_unique<int>(8)));
}

namespace {

/**
 * A deterministic self-driving event storm. Each shard starts with a
 * population of chain events; every event logs its (tick, marker) into
 * shard-private storage, then either reschedules locally or posts a
 * continuation to a pseudo-randomly chosen shard at or beyond the
 * lookahead horizon. All randomness is per-shard and advances only when
 * that shard's events execute, so the storm is a pure function of the
 * configuration.
 */
class Storm
{
  public:
    /** @p postDelay: cross-posts target now + postDelay + jitter; must
     *  be >= lookahead to satisfy the conservative contract. */
    Storm(std::uint32_t shards, unsigned workers, Tick lookahead,
          unsigned population, unsigned budget, Tick postDelay = 0)
        : k(ShardedKernel::Config{shards, lookahead, workers, 1 << 12}),
          horizon(postDelay ? postDelay : lookahead), logs(shards)
    {
        rngs.reserve(shards);
        for (std::uint32_t s = 0; s < shards; ++s)
            rngs.emplace_back(0x9e3779b9u ^ (s * 0x85ebca6bu));
        for (std::uint32_t s = 0; s < shards; ++s) {
            for (unsigned i = 0; i < population; ++i) {
                const unsigned b = budget;
                k.schedule(s, 1 + i % 13,
                           [this, s, b] { event(s, b); });
            }
        }
    }

    std::uint64_t run() { return k.run(); }

    const std::vector<std::vector<std::uint64_t>> &shardLogs() const
    {
        return logs;
    }

    std::uint64_t windows() const { return k.windows(); }
    std::uint64_t crossPosts() const { return k.crossPosts(); }

  private:
    void
    event(std::uint32_t s, unsigned budget)
    {
        logs[s].push_back(k.now(s));
        if (budget == 0)
            return;
        auto &rng = rngs[s];
        const std::uint32_t r = static_cast<std::uint32_t>(rng());
        if (r % 4 == 0) {
            const std::uint32_t dst =
                static_cast<std::uint32_t>(rng()) % k.numShards();
            const Tick when =
                k.now(s) + horizon + static_cast<Tick>(rng() % 8);
            k.post(s, dst, when,
                   [this, dst, budget] { event(dst, budget - 1); });
        } else {
            k.schedule(s, 1 + r % 8,
                       [this, s, budget] { event(s, budget - 1); });
        }
    }

    ShardedKernel k;
    Tick horizon;
    std::vector<std::vector<std::uint64_t>> logs;
    std::vector<std::mt19937> rngs;
};

std::vector<std::vector<std::uint64_t>>
stormLogs(std::uint32_t shards, unsigned workers, Tick lookahead = 6,
          unsigned population = 64, unsigned budget = 40)
{
    Storm s(shards, workers, lookahead, population, budget);
    s.run();
    EXPECT_GT(s.crossPosts(), 0u) << "storm produced no cross traffic";
    return s.shardLogs();
}

} // namespace

TEST(PdesKernel, SingleShardRunsLikeAPlainQueue)
{
    ShardedKernel k(ShardedKernel::Config{1, 4, 1, 64});
    std::vector<Tick> ticks;
    k.schedule(0, 5, [&] { ticks.push_back(k.now(0)); });
    k.schedule(0, 2, [&] {
        ticks.push_back(k.now(0));
        k.schedule(0, 1, [&] { ticks.push_back(k.now(0)); });
    });
    EXPECT_EQ(k.run(), 3u);
    EXPECT_EQ(ticks, (std::vector<Tick>{2, 3, 5}));
    EXPECT_GE(k.windows(), 1u);
}

TEST(PdesKernel, ParallelMatchesSerialWindowLoop)
{
    const auto serial = stormLogs(4, 1);
    const auto parallel = stormLogs(4, 4);
    EXPECT_EQ(serial, parallel);
}

TEST(PdesKernel, WorkerCountInvariance)
{
    const auto w1 = stormLogs(8, 1);
    const auto w2 = stormLogs(8, 2);
    const auto w3 = stormLogs(8, 3);  // shards not divisible by workers
    const auto w8 = stormLogs(8, 8);
    EXPECT_EQ(w1, w2);
    EXPECT_EQ(w1, w3);
    EXPECT_EQ(w1, w8);
}

TEST(PdesKernel, RepeatedRunsAreIdentical)
{
    const auto a = stormLogs(4, 4);
    const auto b = stormLogs(4, 4);
    EXPECT_EQ(a, b);
}

TEST(PdesKernel, WiderLookaheadBatchesMoreWorkPerWindow)
{
    // Same program (fixed post horizon), two window widths: the wide
    // configuration must advance in far fewer barrier rounds. This is
    // the whole point of deriving lookahead from the minimum cross-node
    // latency instead of lockstepping tick by tick.
    Storm narrow(4, 1, 2, 64, 40, 16);
    Storm wide(4, 1, 16, 64, 40, 16);
    narrow.run();
    wide.run();
    EXPECT_LT(wide.windows() * 2, narrow.windows());
}

/**
 * The deterministic tie-break, pinned exactly: several shards post to
 * one receiver at the *same* tick within the same window. Arrival order
 * at the receiver must be (tick, src_shard, seq) regardless of the
 * producing shards' host interleaving.
 */
TEST(PdesKernel, EqualTickMergeBreaksTiesBySrcShardThenSeq)
{
    constexpr std::uint32_t S = 5;  // shard 0 receives, 1..4 produce
    constexpr Tick L = 8;
    ShardedKernel k(ShardedKernel::Config{S, L, S, 1 << 10});
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arrivals;
    std::vector<Tick> arrivalTicks;

    // Every producer runs chain events at the same ticks and posts two
    // messages per step, all targeting exactly now + L, so each window
    // boundary delivers one batch of equal-tick messages from all four
    // producers at once.
    struct Chain
    {
        ShardedKernel *k;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> *arrivals;
        std::vector<Tick> *arrivalTicks;
        std::array<std::uint32_t, S> seq{};

        void
        step(std::uint32_t src, unsigned rounds)
        {
            for (int copy = 0; copy < 2; ++copy) {
                const std::uint32_t n = seq[src]++;
                const Tick when = k->now(src) + L;
                k->post(src, 0, when, [this, src, n, when] {
                    arrivals->push_back({src, n});
                    arrivalTicks->push_back(when);
                });
            }
            if (rounds > 0) {
                k->schedule(src, L, [this, src, rounds] {
                    step(src, rounds - 1);
                });
            }
        }
    };

    // One Chain per producer: seq counters are shard-private.
    std::vector<Chain> chains(S, Chain{&k, &arrivals, &arrivalTicks});
    for (std::uint32_t src = 1; src < S; ++src) {
        Chain *c = &chains[src];
        k.schedule(src, 4, [c, src] { c->step(src, 20); });
    }
    k.run();

    ASSERT_EQ(arrivals.size(), 4u * 2u * 21u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        const bool laterTick = arrivalTicks[i] > arrivalTicks[i - 1];
        const bool sameTick = arrivalTicks[i] == arrivalTicks[i - 1];
        const auto &[src0, n0] = arrivals[i - 1];
        const auto &[src1, n1] = arrivals[i];
        EXPECT_TRUE(laterTick ||
                    (sameTick &&
                     (src1 > src0 || (src1 == src0 && n1 > n0))))
            << "arrival " << i << " out of (tick, src, seq) order: "
            << "(" << arrivalTicks[i - 1] << "," << src0 << "," << n0
            << ") then (" << arrivalTicks[i] << "," << src1 << ","
            << n1 << ")";
    }
}

/**
 * Randomized storm property: for every source shard, the receiver
 * observes that shard's messages in (tick, seq) order — the per-source
 * projection of the (tick, src_shard, seq) merge key — no matter how
 * delivery batches interleave across windows.
 */
TEST(PdesKernel, RandomizedStormMergesPerSourceInTickSeqOrder)
{
    constexpr std::uint32_t S = 6;  // shard 0 receives, 1..5 produce
    constexpr Tick L = 5;
    ShardedKernel k(ShardedKernel::Config{S, L, S, 1 << 12});

    struct Msg
    {
        Tick when;
        std::uint32_t src;
        std::uint32_t seq;
    };
    std::vector<Msg> received;
    std::vector<std::uint32_t> nextSeq(S, 0);
    std::vector<std::mt19937> rngs;
    for (std::uint32_t s = 0; s < S; ++s)
        rngs.emplace_back(12345u + s);

    struct Producer
    {
        ShardedKernel *k;
        std::vector<Msg> *received;
        std::vector<std::uint32_t> *nextSeq;
        std::vector<std::mt19937> *rngs;

        void
        step(std::uint32_t src, unsigned rounds)
        {
            auto &rng = (*rngs)[src];
            const unsigned burst = 1 + rng() % 4;
            for (unsigned i = 0; i < burst; ++i) {
                const std::uint32_t n = (*nextSeq)[src]++;
                const Tick when =
                    k->now(src) + L + static_cast<Tick>(rng() % 17);
                k->post(src, 0, when, [this, src, n, when] {
                    received->push_back(Msg{when, src, n});
                });
            }
            if (rounds > 0) {
                const Tick next = 1 + rng() % 9;
                k->schedule(src, next, [this, src, rounds] {
                    step(src, rounds - 1);
                });
            }
        }
    };

    Producer p{&k, &received, &nextSeq, &rngs};
    for (std::uint32_t src = 1; src < S; ++src)
        k.schedule(src, 1 + src, [&p, src] { p.step(src, 60); });
    k.run();

    ASSERT_FALSE(received.empty());
    // Per-source projection: ticks non-decreasing, seq increasing
    // within a tick.
    std::vector<Msg> last(S, Msg{0, 0, 0});
    std::vector<bool> seen(S, false);
    for (const auto &m : received) {
        // Global tick order first: the receiver's clock never goes back.
        if (seen[m.src]) {
            EXPECT_GE(m.when, last[m.src].when)
                << "src " << m.src << " went back in time";
            if (m.when == last[m.src].when)
                EXPECT_GT(m.seq, last[m.src].seq)
                    << "src " << m.src << " reordered within tick "
                    << m.when;
        }
        last[m.src] = m;
        seen[m.src] = true;
    }
}

TEST(PdesKernel, PostBelowLookaheadHorizonPanics)
{
    ShardedKernel k(ShardedKernel::Config{2, 10, 1, 64});
    k.schedule(0, 50, [&k] {
        // Window end is at least 51; tick 51 - 1 is below the horizon.
        k.post(0, 1, k.now(0), [] {});
    });
    ScopedErrorCapture capture;
    EXPECT_THROW(k.run(), SimError);
}

TEST(PdesKernel, MailboxOverflowPanics)
{
    ShardedKernel k(ShardedKernel::Config{2, 4, 1, 4});
    ScopedErrorCapture capture;
    EXPECT_THROW(
        {
            for (int i = 0; i < 100; ++i)
                k.post(0, 1, 100, [] {});
        },
        SimError);
}

TEST(PdesKernel, WorkerPanicIsMarshalledToCaller)
{
    ShardedKernel k(ShardedKernel::Config{4, 4, 4, 64});
    for (std::uint32_t s = 0; s < 4; ++s)
        k.schedule(s, 1, [] {});
    k.schedule(2, 7, [] { panic("injected failure on shard 2"); });
    ScopedErrorCapture capture;
    try {
        k.run();
        FAIL() << "worker panic did not propagate";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("injected failure"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PdesKernel, WorkerWarningsAreReemittedToTheCaller)
{
    ShardedKernel k(ShardedKernel::Config{4, 4, 4, 64});
    for (std::uint32_t s = 0; s < 4; ++s) {
        k.schedule(s, 1 + s, [s] {
            warn("shard %u says hello", s);
        });
    }
    ScopedLogCapture logs;
    k.run();
    const std::string text = logs.take();
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_NE(text.find("shard " + std::to_string(s) + " says hello"),
                  std::string::npos)
            << "missing worker log for shard " << s << "; got: " << text;
    }
}
