/**
 * @file
 * Tests for the processor model: time accounting, consistency-model
 * stall behavior, context switching, and the synchronization
 * primitives, driven through small hand-written workloads.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

/** Workload whose body is supplied as a per-process lambda. */
class Lambda : public Workload
{
  public:
    using Setup = std::function<void(Machine &)>;
    using Body = std::function<SimProcess(Env)>;

    Lambda(Setup s, Body b) : _setup(std::move(s)), _body(std::move(b)) {}

    std::string name() const override { return "lambda"; }
    void setup(Machine &m) override { _setup(m); }
    SimProcess run(Env env) override { return _body(env); }

  private:
    Setup _setup;
    Body _body;
};

struct Shared
{
    Addr data = 0;
    Addr lock = 0;
    Addr bar = 0;
};

Shared g;

MachineConfig
cfgWith(Consistency c, std::uint32_t ctxs = 1, Tick sw = 4)
{
    MachineConfig cfg;
    cfg.cpu.consistency = c;
    cfg.cpu.numContexts = ctxs;
    cfg.cpu.switchCycles = sw;
    return cfg;
}

void
basicSetup(Machine &m)
{
    auto &mem = m.memory();
    g.data = mem.allocRoundRobin(64 * 1024);
    g.lock = sync::allocLock(mem);
    g.bar = sync::allocBarrier(mem);
}

/** Check the core accounting invariant on a result. */
void
expectAccountingSane(const RunResult &r)
{
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.busyCycles, 0u);
    // Every processor accounts at least the full run; keep-cpu stalls
    // may extend slightly past the end tick.
    EXPECT_GE(r.totalCycles(),
              static_cast<std::uint64_t>(r.execTime) * r.numProcessors);
    EXPECT_LE(r.totalCycles(),
              static_cast<std::uint64_t>(r.execTime) * r.numProcessors +
                  r.numProcessors * 200u);
}

} // namespace

TEST(Processor, ComputeOnlyIsAllBusy)
{
    Machine m(cfgWith(Consistency::SC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        co_await env.compute(1000);
    });
    auto r = m.run(w);
    EXPECT_EQ(r.busyCycles, 16u * 1000u);
    EXPECT_EQ(r.execTime, 1000u);
    expectAccountingSane(r);
}

TEST(Processor, ReadStallAccountedUnderSc)
{
    Machine m(cfgWith(Consistency::SC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        // Each process reads its own distinct remote-ish line once.
        Addr a = g.data + env.pid() * 1024;
        (void)co_await env.read<std::uint64_t>(a);
        co_await env.compute(10);
    });
    auto r = m.run(w);
    EXPECT_GT(r.bucket(Bucket::Read), 0u);
    EXPECT_EQ(r.bucket(Bucket::Write), 0u);
    expectAccountingSane(r);
}

TEST(Processor, WriteStallOnlyUnderSc)
{
    auto body = [](Env env) -> SimProcess {
        // Distinct lines with some computation between writes - the
        // pattern RC's write pipelining is designed for. (A pure
        // back-to-back burst of >16 writes legitimately fills the
        // write buffer and stalls even under RC.)
        Addr a = g.data + env.pid() * 1024;
        for (int i = 0; i < 12; ++i) {
            co_await env.write<std::uint32_t>(a + 64 * i, i);
            co_await env.compute(20);
        }
    };
    Machine msc(cfgWith(Consistency::SC));
    Lambda wsc(basicSetup, body);
    auto rsc = msc.run(wsc);

    Machine mrc(cfgWith(Consistency::RC));
    Lambda wrc(basicSetup, body);
    auto rrc = mrc.run(wrc);

    EXPECT_GT(rsc.bucket(Bucket::Write), 0u);
    EXPECT_EQ(rrc.bucket(Bucket::Write), 0u);  // buffered, never stalls
    EXPECT_LT(rrc.execTime, rsc.execTime);
}

TEST(Processor, RcWriteValuesStillCommit)
{
    Machine m(cfgWith(Consistency::RC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        Addr a = g.data + env.pid() * 1024;
        for (std::uint32_t i = 0; i < 16; ++i)
            co_await env.write<std::uint32_t>(a + 4 * i, i + 1);
        co_await env.compute(1);
    });
    auto r = m.run(w);
    (void)r;
    for (unsigned pid = 0; pid < 16; ++pid)
        for (std::uint32_t i = 0; i < 16; ++i)
            EXPECT_EQ(m.memory().load<std::uint32_t>(
                          g.data + pid * 1024 + 4 * i),
                      i + 1);
}

TEST(Processor, ReadAfterOwnWriteForwardsValue)
{
    Machine m(cfgWith(Consistency::RC));
    std::uint32_t seen = 0;
    Lambda w(basicSetup, [&seen](Env env) -> SimProcess {
        if (env.pid() == 0) {
            co_await env.write<std::uint32_t>(g.data, 77);
            seen = co_await env.read<std::uint32_t>(g.data);
        }
        co_await env.compute(1);
    });
    m.run(w);
    EXPECT_EQ(seen, 77u);
}

TEST(Processor, LockProvidesMutualExclusion)
{
    Machine m(cfgWith(Consistency::RC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        for (int i = 0; i < 25; ++i) {
            co_await env.lock(g.lock);
            auto v = co_await env.read<std::uint64_t>(g.data);
            co_await env.compute(3);
            co_await env.write<std::uint64_t>(g.data, v + 1);
            co_await env.unlock(g.lock);
        }
    });
    auto r = m.run(w);
    EXPECT_EQ(m.memory().load<std::uint64_t>(g.data), 16u * 25u);
    EXPECT_EQ(r.locks, 16u * 25u);
    EXPECT_GT(r.bucket(Bucket::Sync), 0u);
}

TEST(Processor, LockMutualExclusionUnderScToo)
{
    Machine m(cfgWith(Consistency::SC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        for (int i = 0; i < 10; ++i) {
            co_await env.lock(g.lock);
            auto v = co_await env.read<std::uint64_t>(g.data);
            co_await env.write<std::uint64_t>(g.data, v + 1);
            co_await env.unlock(g.lock);
        }
    });
    m.run(w);
    EXPECT_EQ(m.memory().load<std::uint64_t>(g.data), 160u);
}

TEST(Processor, BarrierSeparatesPhases)
{
    // Phase 1: everyone writes a slot. Barrier. Phase 2: everyone reads
    // all slots; every value must be visible.
    Machine m(cfgWith(Consistency::RC));
    std::array<std::uint32_t, 16> sums{};
    Lambda w(basicSetup, [&sums](Env env) -> SimProcess {
        co_await env.write<std::uint32_t>(g.data + 64 * env.pid(), 5);
        co_await env.barrier(g.bar, env.nprocs());
        std::uint32_t sum = 0;
        for (unsigned p = 0; p < env.nprocs(); ++p)
            sum += co_await env.read<std::uint32_t>(g.data + 64 * p);
        sums[env.pid()] = sum;
        co_await env.barrier(g.bar, env.nprocs());
    });
    auto r = m.run(w);
    for (auto s : sums)
        EXPECT_EQ(s, 5u * 16u);
    EXPECT_EQ(r.barriers, 2u * 16u);
}

TEST(Processor, BarrierReusableManyTimes)
{
    Machine m(cfgWith(Consistency::SC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        for (int i = 0; i < 12; ++i) {
            co_await env.compute(5 + env.pid());
            co_await env.barrier(g.bar, env.nprocs());
        }
    });
    auto r = m.run(w);
    EXPECT_EQ(r.barriers, 12u * 16u);
}

TEST(Processor, WaitFlagReleasesWaiters)
{
    Machine m(cfgWith(Consistency::RC));
    std::array<std::uint32_t, 16> seen{};
    Lambda w(basicSetup, [&seen](Env env) -> SimProcess {
        Addr flag = g.data;
        Addr value = g.data + 64;
        if (env.pid() == 0) {
            co_await env.compute(500);
            co_await env.write<std::uint32_t>(value, 31337);
            co_await env.writeRelease<std::uint32_t>(flag, 1);
        } else {
            co_await env.waitFlag(flag, 1);
            seen[env.pid()] =
                co_await env.read<std::uint32_t>(value);
        }
    });
    auto r = m.run(w);
    for (unsigned p = 1; p < 16; ++p)
        EXPECT_EQ(seen[p], 31337u) << "pid " << p;
    EXPECT_EQ(r.locks, 15u);  // waitFlag counts as a lock acquisition
}

TEST(Processor, FetchAddIsAtomicAcrossProcessors)
{
    Machine m(cfgWith(Consistency::SC));
    std::array<std::uint64_t, 16> olds{};
    Lambda w(basicSetup, [&olds](Env env) -> SimProcess {
        olds[env.pid()] = co_await env.fetchAdd(g.data, 1);
    });
    m.run(w);
    EXPECT_EQ(m.memory().load<std::uint32_t>(g.data), 16u);
    // All old values distinct.
    std::sort(olds.begin(), olds.end());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(olds[i], i);
}

TEST(Processor, MultiContextRunsAllProcesses)
{
    for (std::uint32_t ctxs : {2u, 4u}) {
        Machine m(cfgWith(Consistency::SC, ctxs));
        std::vector<int> ran(16 * ctxs, 0);
        Lambda w(basicSetup, [&ran](Env env) -> SimProcess {
            Addr a = g.data + env.pid() * 128;
            for (int i = 0; i < 5; ++i) {
                (void)co_await env.read<std::uint64_t>(a);
                co_await env.compute(20);
                co_await env.write<std::uint64_t>(a, i);
            }
            ran[env.pid()] = 1;
        });
        auto r = m.run(w);
        for (auto x : ran)
            EXPECT_EQ(x, 1);
        EXPECT_GT(r.contextSwitches, 0u);
        EXPECT_GT(r.bucket(Bucket::Switching), 0u);
        expectAccountingSane(r);
    }
}

TEST(Processor, SwitchOverheadScalesWithSwitchCycles)
{
    auto run = [](Tick sw) {
        Machine m(cfgWith(Consistency::SC, 4, sw));
        Lambda w(basicSetup, [](Env env) -> SimProcess {
            Addr a = g.data + env.pid() * 512;
            for (int i = 0; i < 50; ++i) {
                (void)co_await env.read<std::uint64_t>(a + 16 * (i % 30));
                co_await env.compute(8);
            }
        });
        return m.run(w);
    };
    auto r4 = run(4);
    auto r16 = run(16);
    ASSERT_GT(r4.contextSwitches, 0u);
    // Same switch count pattern, 4x the per-switch cost.
    EXPECT_GT(r16.bucket(Bucket::Switching),
              2 * r4.bucket(Bucket::Switching));
}

TEST(Processor, SingleContextNeverSwitches)
{
    Machine m(cfgWith(Consistency::SC, 1));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        (void)co_await env.read<std::uint64_t>(g.data + env.pid() * 64);
        co_await env.compute(10);
    });
    auto r = m.run(w);
    EXPECT_EQ(r.contextSwitches, 0u);
    EXPECT_EQ(r.bucket(Bucket::Switching), 0u);
    EXPECT_EQ(r.bucket(Bucket::AllIdle), 0u);
}

TEST(Processor, PrefetchChargesOverhead)
{
    MachineConfig cfg = cfgWith(Consistency::RC);
    cfg.cpu.prefetch = true;
    Machine m(cfg);
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        Addr a = g.data + env.pid() * 2048;
        for (int i = 0; i < 20; ++i) {
            co_await env.prefetch(a + 16 * (i + 4));
            (void)co_await env.read<std::uint64_t>(a + 16 * i);
            co_await env.compute(10);
        }
    });
    auto r = m.run(w);
    EXPECT_GT(r.bucket(Bucket::PfOverhead), 0u);
    EXPECT_GT(r.prefetchesIssued, 0u);
}

TEST(Processor, DeterministicExecution)
{
    auto run = []() {
        Machine m(cfgWith(Consistency::RC, 2));
        Lambda w(basicSetup, [](Env env) -> SimProcess {
            for (int i = 0; i < 10; ++i) {
                co_await env.lock(g.lock);
                auto v = co_await env.read<std::uint64_t>(g.data);
                co_await env.write<std::uint64_t>(g.data, v + 1);
                co_await env.unlock(g.lock);
                co_await env.compute(7);
            }
        });
        return m.run(w);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.buckets, b.buckets);
    EXPECT_EQ(a.locks, b.locks);
}

TEST(Processor, QueuedLockMutualExclusion)
{
    for (auto cons : {Consistency::SC, Consistency::RC}) {
        Machine m(cfgWith(cons));
        Lambda w(basicSetup, [](Env env) -> SimProcess {
            for (int i = 0; i < 15; ++i) {
                co_await env.lockQueued(g.lock);
                auto v = co_await env.read<std::uint64_t>(g.data);
                co_await env.compute(4);
                co_await env.write<std::uint64_t>(g.data, v + 1);
                co_await env.unlockQueued(g.lock);
            }
        });
        auto r = m.run(w);
        EXPECT_EQ(m.memory().load<std::uint64_t>(g.data), 16u * 15u);
        EXPECT_EQ(r.locks, 16u * 15u);
        EXPECT_EQ(r.lockRetries, 0u);  // handoff: nobody ever retries
    }
}

TEST(Processor, QueuedLockFifoGrantOrder)
{
    // All processes contend once; grants must be handed off without
    // any retry storm and every process gets the lock exactly once.
    Machine m(cfgWith(Consistency::RC, 2));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        co_await env.barrier(g.bar, env.nprocs());
        co_await env.lockQueued(g.lock);
        auto v = co_await env.read<std::uint64_t>(g.data);
        co_await env.write<std::uint64_t>(g.data, v + 1);
        co_await env.unlockQueued(g.lock);
    });
    auto r = m.run(w);
    EXPECT_EQ(m.memory().load<std::uint64_t>(g.data), 32u);
    EXPECT_EQ(r.locks, 32u);
    EXPECT_EQ(r.lockRetries, 0u);
}

TEST(Processor, RunLengthSampled)
{
    Machine m(cfgWith(Consistency::SC));
    Lambda w(basicSetup, [](Env env) -> SimProcess {
        Addr a = g.data + env.pid() * 512;
        for (int i = 0; i < 10; ++i) {
            co_await env.compute(11);
            (void)co_await env.read<std::uint64_t>(a + 16 * i);
        }
    });
    auto r = m.run(w);
    EXPECT_NEAR(r.medianRunLength, 12.0, 3.0);  // 11 compute + 1 issue
}
