/**
 * @file
 * Property-based tests: machine-wide invariants that must hold for
 * every technique configuration and for randomized workloads.
 *
 *   P1. Time accounting: every processor's bucket sum covers the run.
 *   P2. Determinism: identical configurations produce identical runs.
 *   P3. Memory semantics: lock-protected counters are exact; values
 *       written before a release are visible after the matching
 *       acquire, under every consistency/context combination.
 *   P4. Monotone technique sanity: caches and RC never lose big.
 *   P5. Protocol liveness: randomized access storms always drain.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "sim/random.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Lambda : public Workload
{
  public:
    using Setup = std::function<void(Machine &)>;
    using Body = std::function<SimProcess(Env)>;

    Lambda(Setup s, Body b) : _setup(std::move(s)), _body(std::move(b)) {}

    std::string name() const override { return "prop-lambda"; }
    void setup(Machine &m) override { _setup(m); }
    SimProcess run(Env env) override { return _body(env); }

  private:
    Setup _setup;
    Body _body;
};

struct Shared
{
    Addr data = 0;
    Addr lock = 0;
    Addr bar = 0;
    Addr flag = 0;
};

Shared g;

void
setupShared(Machine &m)
{
    auto &mem = m.memory();
    g.data = mem.allocRoundRobin(256 * 1024);
    g.lock = sync::allocLock(mem);
    g.bar = sync::allocBarrier(mem);
    g.flag = mem.allocRoundRobin(lineBytes);
}

/**
 * A mixed workload touching every operation type: strided reads and
 * writes, a lock-protected counter, a flag handoff, and barriers, with
 * per-process deterministic randomness.
 */
SimProcess
mixedBody(Env env)
{
    Rng rng(1000 + env.pid());
    const unsigned np = env.nprocs();
    co_await env.barrier(g.bar, np);

    for (int round = 0; round < 3; ++round) {
        // Strided private-ish region.
        Addr mine = g.data + 4096 + env.pid() * 2048;
        for (int i = 0; i < 24; ++i) {
            Addr a = mine + 16 * static_cast<Addr>(rng.below(100));
            auto v = co_await env.read<std::uint64_t>(a);
            co_await env.compute(6);
            co_await env.write<std::uint64_t>(a, v + 1);
            if (env.prefetching() && i % 4 == 0)
                co_await env.prefetch(mine + 16 * rng.below(100));
        }
        // Shared counter under the lock.
        co_await env.lock(g.lock);
        auto c = co_await env.read<std::uint64_t>(g.data);
        co_await env.compute(2);
        co_await env.write<std::uint64_t>(g.data, c + 1);
        co_await env.unlock(g.lock);

        co_await env.barrier(g.bar, np);
    }

    // Flag handoff: pid 0 publishes, everyone else consumes.
    if (env.pid() == 0) {
        co_await env.write<std::uint64_t>(g.data + 64, 0xfeedULL);
        co_await env.writeRelease<std::uint32_t>(g.flag, 1);
    } else {
        co_await env.waitFlag(g.flag, 1);
        auto v = co_await env.read<std::uint64_t>(g.data + 64);
        if (v != 0xfeedULL)
            panic("release/acquire visibility violated: %llx",
                  static_cast<unsigned long long>(v));
    }
    co_await env.barrier(g.bar, np);
}

} // namespace

class TechniqueGrid : public ::testing::TestWithParam<Technique>
{};

TEST_P(TechniqueGrid, MixedWorkloadInvariants)
{
    const Technique t = GetParam();
    auto once = [&]() {
        Machine m(makeMachineConfig(t));
        Lambda w(setupShared, mixedBody);
        RunResult r = m.run(w);
        // P3: exact counter.
        EXPECT_EQ(m.memory().load<std::uint64_t>(g.data),
                  3u * m.numProcesses());
        return r;
    };
    RunResult r1 = once();
    RunResult r2 = once();

    // P1: accounting covers the run on every processor.
    EXPECT_GE(r1.totalCycles(),
              static_cast<std::uint64_t>(r1.execTime) *
                  r1.numProcessors);

    // P2: determinism.
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_EQ(r1.buckets, r2.buckets);
    EXPECT_EQ(r1.sharedReads, r2.sharedReads);
    EXPECT_EQ(r1.locks, r2.locks);

    // Single-context runs never report multi-context buckets and
    // vice versa for stall categories.
    if (t.contexts == 1) {
        EXPECT_EQ(r1.bucket(Bucket::Switching), 0u);
        EXPECT_EQ(r1.bucket(Bucket::AllIdle), 0u);
    }
    if (t.consistency == Consistency::RC) {
        EXPECT_EQ(r1.bucket(Bucket::Write), 0u);
    }
    if (!t.prefetch) {
        EXPECT_EQ(r1.prefetchesIssued, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, TechniqueGrid,
    ::testing::Values(
        Technique::noCache(), Technique::sc(), Technique::rc(),
        Technique::scPrefetch(), Technique::rcPrefetch(),
        Technique::multiContext(2, 16), Technique::multiContext(4, 16),
        Technique::multiContext(2, 4), Technique::multiContext(4, 4),
        Technique::multiContext(2, 4, Consistency::RC),
        Technique::multiContext(4, 4, Consistency::RC),
        Technique::multiContext(4, 4, Consistency::RC, true)),
    [](const ::testing::TestParamInfo<Technique> &info) {
        std::string s = info.param.label();
        for (auto &ch : s)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return s;
    });

// ---------------------------------------------------------------------
// P5: randomized protocol storms (raw MemorySystem level).
// ---------------------------------------------------------------------

class ProtocolStorm : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ProtocolStorm, RandomAccessesAlwaysDrain)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    MemorySystem ms(eq, mem, cfg);
    Rng rng(GetParam());

    // A small pool of lines so nodes constantly conflict.
    Addr pool = mem.allocRoundRobin(64 * lineBytes);
    Tick t = 0;
    for (int i = 0; i < 3000; ++i) {
        NodeId n = static_cast<NodeId>(rng.below(16));
        Addr a = pool + rng.below(64) * lineBytes;
        switch (rng.below(4)) {
          case 0: {
            auto o = ms.read(n, a, t);
            ASSERT_GE(o.complete, t);
            ASSERT_LE(o.complete - t, 5000u);
            break;
          }
          case 1: {
            auto o = ms.writeSc(n, a, i, 4, t);
            ASSERT_GE(o.complete, t);
            ASSERT_LE(o.ackDone - t, 5000u);
            break;
          }
          case 2:
            ms.writeRc(n, a, i, 4, t, rng.chance(0.2),
                       static_cast<ContextId>(rng.below(4)));
            break;
          default:
            ms.rmw(n, a, RmwOp::FetchAdd, 1, 4, t, nullptr);
            break;
        }
        t += rng.below(20);
        if (i % 256 == 0)
            eq.runUntil(t);
    }
    eq.run();  // must drain without panics
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolStorm,
                         ::testing::Values(1u, 2u, 3u, 42u, 1991u));

// ---------------------------------------------------------------------
// P4: technique-ordering sanity on the scaled-down apps.
// ---------------------------------------------------------------------

TEST(TechniqueOrdering, CachesAndRcNeverCatastrophic)
{
    for (auto &[name, factory] : testWorkloads()) {
        auto nocache = runExperiment(factory, Technique::noCache());
        auto sc = runExperiment(factory, Technique::sc());
        auto rc = runExperiment(factory, Technique::rc());
        EXPECT_LT(sc.execTime, nocache.execTime) << name;
        EXPECT_LT(rc.execTime, 1.05 * sc.execTime) << name;
    }
}
