/**
 * @file
 * Systematic directory-protocol transition tests: for every initial
 * sharing state x access type x requester relationship, check the
 * service level, the uncontended latency, and the resulting state
 * (observed through follow-up probes). This is the state-machine
 * coverage that the scenario tests in mem_system_test.cc sample only
 * pointwise.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim/event_queue.hh"

using namespace dashsim;

namespace {

/** Initial sharing state of the line under test. */
enum class InitState
{
    Uncached,       // nobody has it
    SharedByOther,  // node `other` holds a read-shared copy
    SharedBySelf,   // requester holds a read-shared copy
    DirtyOther,     // node `other` owns it dirty
    DirtySelf,      // requester owns it dirty
};

/** Which access the requester performs. */
enum class Op
{
    Read,
    Write,
    Rmw,
};

struct Case
{
    InitState init;
    Op op;
    bool home_local;        // requester == home?
    Tick expected_latency;  // uncontended, from Table 1 (0 = don't check)
    bool expected_hit;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    const Case &c = info.param;
    std::string s;
    switch (c.init) {
      case InitState::Uncached: s = "Uncached"; break;
      case InitState::SharedByOther: s = "SharedOther"; break;
      case InitState::SharedBySelf: s = "SharedSelf"; break;
      case InitState::DirtyOther: s = "DirtyOther"; break;
      case InitState::DirtySelf: s = "DirtySelf"; break;
    }
    s += c.op == Op::Read ? "_Read" : c.op == Op::Write ? "_Write"
                                                        : "_Rmw";
    s += c.home_local ? "_LocalHome" : "_RemoteHome";
    return s;
}

class ProtocolMatrix : public ::testing::TestWithParam<Case>
{
  protected:
    EventQueue eq;
    SharedMemory mem{16};
    MemConfig cfg{};
    MemorySystem ms{eq, mem, cfg};

    static constexpr NodeId req = 0;
    static constexpr NodeId other = 7;

    Addr line = 0;

    /** Prepare the line in the requested initial state. */
    void
    prepare(const Case &c)
    {
        line = mem.allocLocal(lineBytes, c.home_local ? req : 4);
        switch (c.init) {
          case InitState::Uncached:
            break;
          case InitState::SharedByOther:
            ms.read(other, line, eq.now());
            break;
          case InitState::SharedBySelf:
            // A remote-home read from req leaves a Shared copy; make
            // the line shared by another node first so a local-home
            // read is not exclusive-granted.
            ms.read(other, line, eq.now());
            eq.run();
            ms.read(req, line, eq.now());
            break;
          case InitState::DirtyOther:
            ms.writeSc(other, line, 1, 4, eq.now());
            break;
          case InitState::DirtySelf:
            ms.writeSc(req, line, 1, 4, eq.now());
            break;
        }
        eq.run();
        eq.runUntil(eq.now() + 500);  // quiesce acks and writebacks
    }
};

} // namespace

TEST_P(ProtocolMatrix, LatencyAndStateTransitions)
{
    const Case &c = GetParam();
    prepare(c);

    Tick t0 = eq.now();
    AccessOutcome o{};
    switch (c.op) {
      case Op::Read:
        o = ms.read(req, line, t0);
        break;
      case Op::Write:
        o = ms.writeSc(req, line, 7, 4, t0);
        break;
      case Op::Rmw:
        o = ms.rmw(req, line, RmwOp::FetchAdd, 1, 4, t0, nullptr);
        break;
    }
    if (c.expected_latency) {
        EXPECT_EQ(o.complete - t0, c.expected_latency);
    }
    EXPECT_EQ(o.hit, c.expected_hit);
    eq.run();
    eq.runUntil(eq.now() + 500);

    // Post-state sanity: after any access the requester can read the
    // line as a hit, and after a write/rmw it can write it as a hit.
    Tick t1 = eq.now();
    EXPECT_TRUE(ms.read(req, line, t1).hit);
    if (c.op != Op::Read) {
        auto w = ms.writeSc(req, line, 9, 4, t1);
        EXPECT_TRUE(w.hit);
        EXPECT_EQ(w.complete - t1, 2u);
    }
    eq.run();

    // And the data committed.
    if (c.op == Op::Write) {
        EXPECT_EQ(mem.loadRaw(line, 4), 9u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransitions, ProtocolMatrix,
    ::testing::Values(
        // --- reads ---
        Case{InitState::Uncached, Op::Read, true, 26, false},
        Case{InitState::Uncached, Op::Read, false, 72, false},
        Case{InitState::SharedByOther, Op::Read, true, 26, false},
        Case{InitState::SharedByOther, Op::Read, false, 72, false},
        Case{InitState::SharedBySelf, Op::Read, true, 1, true},
        Case{InitState::SharedBySelf, Op::Read, false, 1, true},
        Case{InitState::DirtyOther, Op::Read, false, 90, false},
        Case{InitState::DirtySelf, Op::Read, true, 1, true},
        Case{InitState::DirtySelf, Op::Read, false, 1, true},
        // --- writes ---
        Case{InitState::Uncached, Op::Write, true, 18, false},
        Case{InitState::Uncached, Op::Write, false, 64, false},
        Case{InitState::SharedByOther, Op::Write, true, 18, false},
        Case{InitState::SharedByOther, Op::Write, false, 64, false},
        Case{InitState::SharedBySelf, Op::Write, true, 18, false},
        Case{InitState::SharedBySelf, Op::Write, false, 64, false},
        Case{InitState::DirtyOther, Op::Write, false, 82, false},
        Case{InitState::DirtySelf, Op::Write, true, 2, true},
        Case{InitState::DirtySelf, Op::Write, false, 2, true},
        // --- read-modify-writes (need the data: read-path timing) ---
        Case{InitState::Uncached, Op::Rmw, true, 26, false},
        Case{InitState::Uncached, Op::Rmw, false, 72, false},
        Case{InitState::DirtyOther, Op::Rmw, false, 90, false},
        Case{InitState::DirtySelf, Op::Rmw, true, 2, true},
        Case{InitState::DirtySelf, Op::Rmw, false, 2, true}),
    caseName);

// ---------------------------------------------------------------------
// Mesh-topology latency structure (the uniform case is Table 1 above).
// ---------------------------------------------------------------------

TEST(MeshTopology, LatencyGrowsWithDistance)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    cfg.lat.mesh = true;
    MemorySystem ms(eq, mem, cfg);

    // Node 0 is grid (0,0); node 1 is one hop; node 15 is (3,3), six
    // hops away.
    Addr near = mem.allocLocal(lineBytes, 1);
    Addr far = mem.allocLocal(lineBytes, 15);
    auto near_o = ms.read(0, near, 0);
    auto far_o = ms.read(0, far, 0);
    EXPECT_LT(near_o.complete, far_o.complete);

    // One-hop round trip is cheaper than the uniform model; the
    // far-corner round trip costs more.
    EXPECT_LT(near_o.complete, 72u);
    EXPECT_GT(far_o.complete, 72u);
    eq.run();
}

TEST(MeshTopology, LocalAccessesUnaffected)
{
    EventQueue eq;
    SharedMemory mem(16);
    MemConfig cfg;
    cfg.lat.mesh = true;
    MemorySystem ms(eq, mem, cfg);
    Addr local = mem.allocLocal(lineBytes, 0);
    EXPECT_EQ(ms.read(0, local, 0).complete, 26u);
    eq.run();
}
