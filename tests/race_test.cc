/**
 * @file
 * Tests for the happens-before race detector (src/check/race.*).
 *
 * Unit tests feed synthetic operation streams straight into the
 * detector; integration tests run whole workloads - a deliberately racy
 * one the detector must flag, a properly synchronized twin it must not,
 * and the three paper applications under SC and RC, which are properly
 * labeled and must come out clean.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "check/race.hh"
#include "core/experiment.hh"
#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

using Kind = TraceOp::Kind;

TraceOp
mk(Kind k, Addr a, std::uint64_t operand = 0)
{
    TraceOp op;
    op.kind = k;
    op.addr = a;
    op.operand = operand;
    op.size = 4;
    return op;
}

constexpr Addr X = 0x100, F = 0x200, L = 0x300, B = 0x400, C = 0x500;

} // namespace

// ---------------------------------------------------------------------
// Synthetic streams. Stream order is simulated-time order, which is
// what Env guarantees (acquires recorded at the grant, barrier
// arrivals at issue).
// ---------------------------------------------------------------------

TEST(RaceDetector, WriteWriteRace)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 1));
    d.record(1, mk(Kind::Write, X, 2));
    ASSERT_EQ(d.races().size(), 1u);
    EXPECT_EQ(d.races()[0].addr, X);
    EXPECT_TRUE(d.races()[0].firstWrite);
    EXPECT_TRUE(d.races()[0].secondWrite);
}

TEST(RaceDetector, ReadWriteRace)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 1));
    d.record(1, mk(Kind::Read, X));
    ASSERT_EQ(d.races().size(), 1u);
    EXPECT_TRUE(d.races()[0].firstWrite);
    EXPECT_FALSE(d.races()[0].secondWrite);
}

TEST(RaceDetector, ConcurrentReadsAreNotARace)
{
    RaceDetector d(3);
    d.record(0, mk(Kind::Read, X));
    d.record(1, mk(Kind::Read, X));
    d.record(2, mk(Kind::Read, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, WriteAfterConcurrentReadsRaces)
{
    RaceDetector d(3);
    d.record(0, mk(Kind::Read, X));
    d.record(1, mk(Kind::Read, X));
    d.record(2, mk(Kind::Write, X, 1));
    // Racing against both readers, but deduplicated per address.
    EXPECT_EQ(d.races().size(), 1u);
}

TEST(RaceDetector, LockOrdersCriticalSections)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Lock, L));
    d.record(0, mk(Kind::Write, X, 1));
    d.record(0, mk(Kind::Unlock, L));
    d.record(1, mk(Kind::Lock, L));  // grant: after the release above
    d.record(1, mk(Kind::Write, X, 2));
    d.record(1, mk(Kind::Unlock, L));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, QueuedLockOrdersCriticalSections)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::QueuedLock, L));
    d.record(0, mk(Kind::Write, X, 1));
    d.record(0, mk(Kind::QueuedUnlock, L));
    d.record(1, mk(Kind::QueuedLock, L));
    d.record(1, mk(Kind::Read, X));
    d.record(1, mk(Kind::QueuedUnlock, L));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, DistinctLocksDoNotSynchronize)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Lock, L));
    d.record(0, mk(Kind::Write, X, 1));
    d.record(0, mk(Kind::Unlock, L));
    d.record(1, mk(Kind::Lock, L + 4));
    d.record(1, mk(Kind::Write, X, 2));
    d.record(1, mk(Kind::Unlock, L + 4));
    EXPECT_EQ(d.races().size(), 1u);
}

TEST(RaceDetector, BarrierSeparatesPhases)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 1));
    d.record(0, mk(Kind::Barrier, B, 2));
    d.record(1, mk(Kind::Barrier, B, 2));
    d.record(1, mk(Kind::Read, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, BarrierJoinIsRetroactive)
{
    // The last arrival joins *every* participant's clock, including
    // those that arrived (and were recorded) earlier: pid 1's arrival
    // record precedes pid 2's in the stream, yet pid 1 must still be
    // ordered after pid 2's pre-barrier write.
    RaceDetector d(3);
    d.record(2, mk(Kind::Write, X, 1));
    d.record(0, mk(Kind::Barrier, B, 3));
    d.record(1, mk(Kind::Barrier, B, 3));
    d.record(2, mk(Kind::Barrier, B, 3));
    d.record(1, mk(Kind::Read, X));
    d.record(0, mk(Kind::Read, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, SuccessiveBarrierEpisodesAreIndependent)
{
    RaceDetector d(2);
    for (int phase = 0; phase < 3; ++phase) {
        d.record(static_cast<unsigned>(phase % 2), mk(Kind::Write, X, 1));
        d.record(0, mk(Kind::Barrier, B, 2));
        d.record(1, mk(Kind::Barrier, B, 2));
    }
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, WriteReleaseWaitFlagSynchronizes)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 42));
    d.record(0, mk(Kind::WriteRelease, F, 1));
    d.record(1, mk(Kind::WaitFlag, F, 1));  // recorded at the wakeup
    d.record(1, mk(Kind::Read, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, PlainWriteWaitFlagSynchronizes)
{
    // Flags set with an ordinary write (no release annotation) still
    // order the waiter after the setter via the last-write epoch.
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 42));
    d.record(0, mk(Kind::Write, F, 1));
    d.record(1, mk(Kind::WaitFlag, F, 1));
    d.record(1, mk(Kind::Read, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, AtomicsSynchronize)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 1));
    d.record(0, mk(Kind::FetchAdd, C, 1));
    d.record(1, mk(Kind::FetchAdd, C, 1));
    d.record(1, mk(Kind::Read, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, ReadRacyIsExempt)
{
    RaceDetector d(2);
    d.record(0, mk(Kind::Write, X, 1));
    d.record(1, mk(Kind::ReadRacy, X));
    EXPECT_TRUE(d.races().empty());
}

TEST(RaceDetector, RacesDeduplicatedByAddress)
{
    RaceDetector d(2);
    for (int i = 0; i < 5; ++i) {
        d.record(0, mk(Kind::Write, X, 1));
        d.record(1, mk(Kind::Write, X, 2));
    }
    EXPECT_EQ(d.races().size(), 1u);
    EXPECT_EQ(d.opsSeen(), 10u);
}

// ---------------------------------------------------------------------
// Whole-machine integration: a seeded racy workload and its properly
// synchronized twin.
// ---------------------------------------------------------------------

namespace {

/** pid 0 writes, pid 1 reads, nothing orders them. */
struct RacyWorkload : Workload
{
    Addr x = 0, bar = 0;
    bool synchronized;

    explicit RacyWorkload(bool synchronized) : synchronized(synchronized) {}

    std::string
    name() const override
    {
        return synchronized ? "synced" : "racy";
    }

    void
    setup(Machine &m) override
    {
        x = m.memory().allocLocal(lineBytes, 0, lineBytes);
        bar = sync::allocBarrier(m.memory());
    }

    SimProcess
    run(Env env) override
    {
        if (env.pid() == 0)
            co_await env.write<std::uint32_t>(x, 7);
        if (synchronized)
            co_await env.barrier(bar, env.nprocs());
        if (env.pid() == 1)
            (void)co_await env.read<std::uint32_t>(x);
        co_await env.barrier(bar, env.nprocs());
    }
};

MachineConfig
checkedConfig(const Technique &t)
{
    MachineConfig cfg = makeMachineConfig(t);
    cfg.check.coherence = true;
    cfg.check.race = true;
    cfg.check.failFast = false;
    return cfg;
}

} // namespace

TEST(RaceIntegration, SeededRacyWorkloadIsFlagged)
{
    MachineConfig cfg = checkedConfig(Technique::sc());
    cfg.mem.numNodes = 4;
    Machine m(cfg);
    RacyWorkload w(false);
    RunResult r = m.run(w);
    EXPECT_GE(r.racesDetected, 1u);
    ASSERT_FALSE(m.raceDetector()->races().empty());
    EXPECT_EQ(m.raceDetector()->races()[0].addr, w.x);
}

TEST(RaceIntegration, SynchronizedTwinIsClean)
{
    MachineConfig cfg = checkedConfig(Technique::sc());
    cfg.mem.numNodes = 4;
    Machine m(cfg);
    RacyWorkload w(true);
    RunResult r = m.run(w);
    EXPECT_EQ(r.racesDetected, 0u);
    EXPECT_EQ(r.coherenceViolations, 0u);
}

// ---------------------------------------------------------------------
// The paper's applications are properly labeled: with both checkers on
// they must produce zero races and zero coherence violations under
// both SC and RC.
// ---------------------------------------------------------------------

TEST(RaceIntegration, AppsAreProperlyLabeled)
{
    for (auto &[name, factory] : testWorkloads()) {
        for (Technique t : {Technique::sc(), Technique::rc()}) {
            Machine m(checkedConfig(t));
            auto w = factory();
            RunResult r = m.run(*w);
            EXPECT_EQ(r.racesDetected, 0u)
                << name << " under " << t.label();
            EXPECT_EQ(r.coherenceViolations, 0u)
                << name << " under " << t.label();
            EXPECT_GT(m.raceDetector()->opsSeen(), 0u);
        }
    }
}
