/**
 * @file
 * Unit tests for the deterministic workload RNG.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace dashsim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 13ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(17);
    int buckets[8] = {};
    for (int i = 0; i < 8000; ++i)
        buckets[r.below(8)]++;
    for (int b = 0; b < 8; ++b)
        EXPECT_NEAR(buckets[b], 1000, 150);
}
