/**
 * @file
 * Unit tests for the FCFS resource reservations and the path walker
 * that models contention.
 */

#include <gtest/gtest.h>

#include "mem/resource.hh"

using namespace dashsim;

TEST(Resource, ImmediateServiceWhenFree)
{
    Resource r;
    EXPECT_EQ(r.acquire(100, 4), 100u);
    EXPECT_EQ(r.horizon(), 104u);
}

TEST(Resource, QueuesBehindEarlierBooking)
{
    Resource r;
    r.acquire(10, 6);
    EXPECT_EQ(r.acquire(12, 2), 16u);  // waits until 16
    EXPECT_EQ(r.acquire(100, 2), 100u);  // free again later
}

TEST(Resource, TracksUtilization)
{
    Resource r;
    r.acquire(0, 5);
    r.acquire(0, 3);
    EXPECT_EQ(r.busyCycles(), 8u);
    EXPECT_EQ(r.requests(), 2u);
    r.reset();
    EXPECT_EQ(r.busyCycles(), 0u);
    EXPECT_EQ(r.horizon(), 0u);
}

TEST(PathWalker, UncontendedPathHasZeroQueueing)
{
    Resource a, b, c;
    PathWalker w(1000);
    w.stage(a, 2, 1);
    w.stage(b, 10, 4);
    w.stage(c, 30, 6);
    EXPECT_EQ(w.queueing(), 0u);
    EXPECT_EQ(w.finish(72), 1072u);
}

TEST(PathWalker, QueueingIsMaxOverStagesNotSum)
{
    Resource a, b;
    // Pre-load both resources so each stage waits.
    a.acquire(0, 110);   // free at 110; stage ideal 102 -> wait 8
    b.acquire(0, 140);   // free at 140; stage ideal 120 -> wait 20
    PathWalker w(100);
    w.stage(a, 2, 1);
    w.stage(b, 20, 4);
    // Pipelined model: total queueing is the max (20), not 8 + 20.
    EXPECT_EQ(w.queueing(), 20u);
    EXPECT_EQ(w.finish(72), 192u);
}

TEST(PathWalker, StagesStillBookOccupancy)
{
    Resource a;
    PathWalker w1(0);
    w1.stage(a, 0, 4);
    PathWalker w2(0);
    w2.stage(a, 0, 4);
    EXPECT_EQ(w2.queueing(), 4u);  // second transaction queues
    EXPECT_EQ(a.busyCycles(), 8u);
}

TEST(Resource, BackfillsGapBeforeFarFutureBooking)
{
    Resource r;
    // A transaction books its reply far in the future...
    EXPECT_EQ(r.acquire(100, 4), 100u);
    // ...which must not block an earlier-in-time booking by a later
    // transaction: the gap before 100 is free.
    EXPECT_EQ(r.acquire(20, 4), 20u);
    // Overlapping requests still queue.
    EXPECT_EQ(r.acquire(99, 4), 104u);
}

TEST(Resource, GapTooSmallSkipsToNextFree)
{
    Resource r;
    r.acquire(10, 4);   // [10,14)
    r.acquire(16, 4);   // [16,20)
    // A 4-cycle request at 12 does not fit in [14,16): lands at 20.
    EXPECT_EQ(r.acquire(12, 4), 20u);
    // A 2-cycle request fits the gap exactly.
    EXPECT_EQ(r.acquire(12, 2), 14u);
}

TEST(PathWalker, BackToBackTransactionsPipelineAtBottleneck)
{
    // 10 transactions through a 6-cycle resource: the k-th waits ~6k.
    Resource dir;
    Tick last = 0;
    for (int k = 0; k < 10; ++k) {
        PathWalker w(0);
        w.stage(dir, 26, 6);
        last = w.finish(72);
    }
    EXPECT_EQ(last, 72u + 9 * 6);
}
