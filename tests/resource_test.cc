/**
 * @file
 * Unit tests for the FCFS resource reservations and the path walker
 * that models contention.
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/resource.hh"
#include "sim/random.hh"

using namespace dashsim;

namespace {

/**
 * Reference model: the pre-rewrite std::map<start, end> calendar. The
 * merged-interval vector must return the same service tick for every
 * booking — acquire() depends only on the union of busy ticks, which
 * merging preserves.
 */
class MapResource
{
  public:
    Tick
    acquire(Tick at, Tick occupancy)
    {
        Tick t = std::max(at, floorTick);
        if (occupancy == 0)
            return t;
        auto it = busy.lower_bound(t);
        if (it != busy.begin()) {
            auto prev = std::prev(it);
            if (prev->second > t)
                t = prev->second;
        }
        it = busy.lower_bound(t);
        while (it != busy.end() && it->first < t + occupancy) {
            t = it->second;
            ++it;
        }
        busy.emplace(t, t + occupancy);
        prune(t);
        return t;
    }

  private:
    void
    prune(Tick now)
    {
        constexpr Tick window = 4096;
        if (now <= window)
            return;
        Tick cut = now - window;
        while (!busy.empty() && busy.begin()->second <= cut)
            busy.erase(busy.begin());
        floorTick = std::max(floorTick, cut);
    }

    std::map<Tick, Tick> busy;
    Tick floorTick = 0;
};

} // namespace

TEST(Resource, ImmediateServiceWhenFree)
{
    Resource r;
    EXPECT_EQ(r.acquire(100, 4), 100u);
    EXPECT_EQ(r.horizon(), 104u);
}

TEST(Resource, QueuesBehindEarlierBooking)
{
    Resource r;
    r.acquire(10, 6);
    EXPECT_EQ(r.acquire(12, 2), 16u);  // waits until 16
    EXPECT_EQ(r.acquire(100, 2), 100u);  // free again later
}

TEST(Resource, TracksUtilization)
{
    Resource r;
    r.acquire(0, 5);
    r.acquire(0, 3);
    EXPECT_EQ(r.busyCycles(), 8u);
    EXPECT_EQ(r.requests(), 2u);
    r.reset();
    EXPECT_EQ(r.busyCycles(), 0u);
    EXPECT_EQ(r.horizon(), 0u);
}

TEST(PathWalker, UncontendedPathHasZeroQueueing)
{
    Resource a, b, c;
    PathWalker w(1000);
    w.stage(a, 2, 1);
    w.stage(b, 10, 4);
    w.stage(c, 30, 6);
    EXPECT_EQ(w.queueing(), 0u);
    EXPECT_EQ(w.finish(72), 1072u);
}

TEST(PathWalker, QueueingIsMaxOverStagesNotSum)
{
    Resource a, b;
    // Pre-load both resources so each stage waits.
    a.acquire(0, 110);   // free at 110; stage ideal 102 -> wait 8
    b.acquire(0, 140);   // free at 140; stage ideal 120 -> wait 20
    PathWalker w(100);
    w.stage(a, 2, 1);
    w.stage(b, 20, 4);
    // Pipelined model: total queueing is the max (20), not 8 + 20.
    EXPECT_EQ(w.queueing(), 20u);
    EXPECT_EQ(w.finish(72), 192u);
}

TEST(PathWalker, StagesStillBookOccupancy)
{
    Resource a;
    PathWalker w1(0);
    w1.stage(a, 0, 4);
    PathWalker w2(0);
    w2.stage(a, 0, 4);
    EXPECT_EQ(w2.queueing(), 4u);  // second transaction queues
    EXPECT_EQ(a.busyCycles(), 8u);
}

TEST(Resource, BackfillsGapBeforeFarFutureBooking)
{
    Resource r;
    // A transaction books its reply far in the future...
    EXPECT_EQ(r.acquire(100, 4), 100u);
    // ...which must not block an earlier-in-time booking by a later
    // transaction: the gap before 100 is free.
    EXPECT_EQ(r.acquire(20, 4), 20u);
    // Overlapping requests still queue.
    EXPECT_EQ(r.acquire(99, 4), 104u);
}

TEST(Resource, GapTooSmallSkipsToNextFree)
{
    Resource r;
    r.acquire(10, 4);   // [10,14)
    r.acquire(16, 4);   // [16,20)
    // A 4-cycle request at 12 does not fit in [14,16): lands at 20.
    EXPECT_EQ(r.acquire(12, 4), 20u);
    // A 2-cycle request fits the gap exactly.
    EXPECT_EQ(r.acquire(12, 2), 14u);
}

TEST(Resource, RandomizedBookingsMatchMapReference)
{
    // Replay the same randomized booking stream through both calendars:
    // advancing "now", near-term and far-future bookings, gap backfills,
    // zero occupancy, and enough span to trip the pruning window.
    Rng rng(0xca1e00da);
    Resource r;
    MapResource ref;
    Tick now = 0;
    for (int i = 0; i < 50000; ++i) {
        now += rng.below(8);
        Tick at = now;
        switch (rng.below(8)) {
          case 0:  // far-future reply stage
            at = now + 100 + rng.below(400);
            break;
          case 1:  // slightly behind current time (clipped by floor)
            at = now > 20 ? now - rng.below(20) : now;
            break;
          default:
            at = now + rng.below(30);
        }
        Tick occ = rng.below(10);  // includes zero occupancy
        Tick got = r.acquire(at, occ);
        Tick want = ref.acquire(at, occ);
        ASSERT_EQ(got, want)
            << "booking " << i << " at=" << at << " occ=" << occ;
        ASSERT_GE(got, at);
    }
}

TEST(Resource, HorizonUnaffectedByBackfill)
{
    Resource r;
    r.acquire(100, 4);
    EXPECT_EQ(r.horizon(), 104u);
    r.acquire(10, 4);  // backfills the gap, horizon unchanged
    EXPECT_EQ(r.horizon(), 104u);
}

TEST(PathWalker, BackToBackTransactionsPipelineAtBottleneck)
{
    // 10 transactions through a 6-cycle resource: the k-th waits ~6k.
    Resource dir;
    Tick last = 0;
    for (int k = 0; k < 10; ++k) {
        PathWalker w(0);
        w.stage(dir, 26, 6);
        last = w.finish(72);
    }
    EXPECT_EQ(last, 72u + 9 * 6);
}
