/**
 * @file
 * Unit tests for the distributed shared-memory arena and its page
 * placement policies.
 */

#include <gtest/gtest.h>

#include "mem/shared_memory.hh"

using namespace dashsim;

TEST(SharedMemory, AddressZeroNeverAllocated)
{
    SharedMemory m(4);
    Addr a = m.allocRoundRobin(8);
    EXPECT_NE(a, 0u);
    EXPECT_FALSE(m.mapped(0));
    EXPECT_TRUE(m.mapped(a));
}

TEST(SharedMemory, AllocationsAreLineAligned)
{
    SharedMemory m(4);
    for (int i = 0; i < 20; ++i) {
        Addr a = m.allocRoundRobin(3);  // odd size
        EXPECT_EQ(a % lineBytes, 0u);
    }
}

TEST(SharedMemory, CustomAlignmentHonored)
{
    SharedMemory m(2);
    Addr a = m.allocRoundRobin(8, 256);
    EXPECT_EQ(a % 256, 0u);
}

TEST(SharedMemory, RoundRobinPagePlacement)
{
    SharedMemory m(4);
    // Allocate several pages worth and check homes cycle.
    Addr first = m.allocRoundRobin(4 * pageBytes);
    NodeId h0 = m.homeOf(first);
    NodeId h1 = m.homeOf(first + pageBytes);
    NodeId h2 = m.homeOf(first + 2 * pageBytes);
    EXPECT_EQ((h0 + 1) % 4, h1);
    EXPECT_EQ((h1 + 1) % 4, h2);
}

TEST(SharedMemory, AllocLocalPinsEveryPage)
{
    SharedMemory m(8);
    Addr a = m.allocLocal(3 * pageBytes, 5);
    for (Addr off = 0; off < 3 * pageBytes; off += pageBytes)
        EXPECT_EQ(m.homeOf(a + off), 5u);
}

TEST(SharedMemory, AllocLocalDoesNotInheritForeignPageTail)
{
    SharedMemory m(8);
    Addr a = m.allocLocal(64, 2);
    Addr b = m.allocLocal(64, 3);
    EXPECT_EQ(m.homeOf(a), 2u);
    EXPECT_EQ(m.homeOf(b), 3u);
}

TEST(SharedMemory, AllocLocalPacksSameNode)
{
    SharedMemory m(8);
    Addr a = m.allocLocal(64, 2);
    Addr b = m.allocLocal(64, 2);
    // Same node: no page bump, allocations stay adjacent.
    EXPECT_EQ(b - a, 64u);
}

TEST(SharedMemory, TypedLoadStoreRoundTrip)
{
    SharedMemory m(2);
    Addr a = m.allocRoundRobin(64);
    m.store<double>(a, 3.25);
    m.store<std::uint32_t>(a + 8, 0xdeadbeef);
    m.store<float>(a + 12, -1.5f);
    EXPECT_DOUBLE_EQ(m.load<double>(a), 3.25);
    EXPECT_EQ(m.load<std::uint32_t>(a + 8), 0xdeadbeefu);
    EXPECT_FLOAT_EQ(m.load<float>(a + 12), -1.5f);
}

TEST(SharedMemory, RawAccessMatchesTyped)
{
    SharedMemory m(2);
    Addr a = m.allocRoundRobin(16);
    m.storeRaw(a, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.load<std::uint64_t>(a), 0x1122334455667788ull);
    EXPECT_EQ(m.loadRaw(a, 4), 0x55667788ull);
    EXPECT_EQ(m.loadRaw(a, 2), 0x7788ull);
    EXPECT_EQ(m.loadRaw(a, 1), 0x88ull);
}

TEST(SharedMemory, FootprintTracksAllocations)
{
    SharedMemory m(4);
    std::size_t before = m.footprint();
    m.allocRoundRobin(1000);
    EXPECT_GE(m.footprint(), before + 1000);
}

TEST(SharedMemory, FreshMemoryIsZeroed)
{
    SharedMemory m(4);
    Addr a = m.allocRoundRobin(256);
    for (unsigned i = 0; i < 256; i += 8)
        EXPECT_EQ(m.load<std::uint64_t>(a + i), 0u);
}

TEST(SharedMemoryDeathTest, BadNodePanics)
{
    SharedMemory m(4);
    EXPECT_DEATH(m.allocLocal(8, 9), "bad node");
}

TEST(SharedMemoryDeathTest, OutOfBoundsLoadPanics)
{
    SharedMemory m(2);
    EXPECT_DEATH(m.load<std::uint64_t>(1u << 30), "");
}
