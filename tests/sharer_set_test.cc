/**
 * @file
 * Unit tests for SharerSet (src/mem/sharer_set.hh), the dynamically
 * sized directory sharer bitset that replaced the raw 32-bit mask.
 * Exercises membership across the inline-word / spill boundary at node
 * 64, the ascending visit order the invalidation paths depend on, the
 * diagnostic hex rendering, equality across differently sized
 * representations, and the canonical checkpoint encoding.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/checkpoint.hh"
#include "mem/sharer_set.hh"

using namespace dashsim;

TEST(SharerSet, AddTestRemoveAcrossWordBoundary)
{
    SharerSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);

    // One member per interesting position: word 0 ends at node 63,
    // word 1 starts at node 64.
    for (NodeId n : {0u, 31u, 32u, 63u, 64u, 100u, 127u, 128u}) {
        EXPECT_FALSE(s.test(n)) << n;
        s.add(n);
        EXPECT_TRUE(s.test(n)) << n;
    }
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.count(), 8u);
    EXPECT_FALSE(s.test(65));
    EXPECT_FALSE(s.test(1023));

    s.remove(64);
    EXPECT_FALSE(s.test(64));
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(100));
    EXPECT_EQ(s.count(), 7u);

    // Removing an absent member (including one beyond every allocated
    // word) is a no-op.
    s.remove(64);
    s.remove(4096);
    EXPECT_EQ(s.count(), 7u);

    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.test(100));
}

TEST(SharerSet, NoneExcept)
{
    SharerSet s;
    EXPECT_TRUE(s.noneExcept(0));
    EXPECT_TRUE(s.noneExcept(77));

    s.add(45);
    EXPECT_TRUE(s.noneExcept(45));
    EXPECT_FALSE(s.noneExcept(44));
    EXPECT_FALSE(s.noneExcept(200));

    s.add(70);
    EXPECT_FALSE(s.noneExcept(45));
    EXPECT_FALSE(s.noneExcept(70));
}

TEST(SharerSet, ForEachVisitsAscending)
{
    SharerSet s;
    // Inserted out of order on purpose.
    for (NodeId n : {127u, 3u, 64u, 63u, 0u, 90u})
        s.add(n);

    std::vector<NodeId> seen;
    s.forEach([&](NodeId n) { seen.push_back(n); });
    EXPECT_EQ(seen, (std::vector<NodeId>{0, 3, 63, 64, 90, 127}));
}

TEST(SharerSet, HexMatchesLegacyFormatting)
{
    SharerSet s;
    EXPECT_EQ(s.hex(), "00000000");

    // Low-32 sets keep the old %08x rendering byte-for-byte.
    s.add(0);
    s.add(4);
    s.add(31);
    EXPECT_EQ(s.hex(), "80000011");

    // Bit 32 widens the inline word to 16 digits.
    s.add(32);
    EXPECT_EQ(s.hex(), "0000000180000011");

    // A spill word prints most-significant first.
    s.add(64);
    EXPECT_EQ(s.hex(), "00000000000000010000000180000011");
}

TEST(SharerSet, EqualityIgnoresTrailingZeroWords)
{
    SharerSet a, b;
    a.add(5);
    b.add(5);
    EXPECT_EQ(a, b);

    // Force b to allocate (and then vacate) a spill word: the logical
    // sets stay equal even though the representations differ.
    b.add(100);
    EXPECT_NE(a, b);
    b.remove(100);
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, a);

    a.add(65);
    EXPECT_NE(b, a);
}

TEST(SharerSet, SaveLoadRoundTripIsCanonical)
{
    SharerSet s;
    for (NodeId n : {1u, 33u, 64u, 190u})
        s.add(n);

    ckpt::Writer w;
    s.saveState(w);

    SharerSet loaded;
    loaded.add(7); // must be cleared by loadState
    ckpt::Reader r(w.data());
    loaded.loadState(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(loaded, s);
    EXPECT_FALSE(loaded.test(7));

    // Canonical encoding: a set that shrank back below the spill
    // boundary serializes identically to one that never spilled.
    SharerSet shrunk;
    shrunk.add(190);
    shrunk.add(9);
    shrunk.remove(190);
    SharerSet plain;
    plain.add(9);
    ckpt::Writer w1, w2;
    shrunk.saveState(w1);
    plain.saveState(w2);
    EXPECT_EQ(w1.data(), w2.data());
}
