/**
 * @file
 * Tests for the small simulator utilities: address arithmetic,
 * logging formatting, and configuration defaults.
 */

#include <gtest/gtest.h>

#include "cpu/cpu_config.hh"
#include "mem/mem_config.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

using namespace dashsim;

TEST(Types, LineAddressArithmetic)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(15), 0u);
    EXPECT_EQ(lineAddr(16), 16u);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(lineIndex(0), 0u);
    EXPECT_EQ(lineIndex(16), 1u);
    EXPECT_EQ(lineIndex(0xff), 0xfu);
    EXPECT_EQ(Addr{1} << lineShift, Addr{lineBytes});
}

TEST(Types, Sentinels)
{
    EXPECT_GT(maxTick, Tick{1} << 62);
    EXPECT_GE(invalidNode, 1u << 30);
}

TEST(Logging, VformatBasics)
{
    using dashsim::detail::vformat;
    EXPECT_EQ(vformat("plain"), "plain");
    EXPECT_EQ(vformat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(vformat("%s/%u", "x", 7u), "x/7");
    // Long output is not truncated.
    std::string big(500, 'a');
    EXPECT_EQ(vformat("%s", big.c_str()).size(), 500u);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(Config, PaperDefaults)
{
    MemConfig m;
    EXPECT_EQ(m.numNodes, 16u);
    EXPECT_EQ(m.primary.sizeBytes, 2u * 1024u);
    EXPECT_EQ(m.secondary.sizeBytes, 4u * 1024u);
    EXPECT_EQ(m.primary.numLines(), 128u);
    EXPECT_EQ(m.secondary.numLines(), 256u);
    EXPECT_EQ(m.writeBufferDepth, 16u);
    EXPECT_EQ(m.prefetchBufferDepth, 16u);
    EXPECT_TRUE(m.cacheSharedData);
    EXPECT_FALSE(m.lat.mesh);

    // The Table 1 anchor latencies.
    EXPECT_EQ(m.lat.readPrimaryHit, 1u);
    EXPECT_EQ(m.lat.readSecondary, 14u);
    EXPECT_EQ(m.lat.readLocal, 26u);
    EXPECT_EQ(m.lat.readHome, 72u);
    EXPECT_EQ(m.lat.readRemote, 90u);
    EXPECT_EQ(m.lat.writeSecondary, 2u);
    EXPECT_EQ(m.lat.writeLocal, 18u);
    EXPECT_EQ(m.lat.writeHome, 64u);
    EXPECT_EQ(m.lat.writeRemote, 82u);
}

TEST(Config, CpuDefaultsMatchPaper)
{
    CpuConfig c;
    EXPECT_EQ(c.consistency, Consistency::SC);
    EXPECT_EQ(c.numContexts, 1u);
    EXPECT_EQ(c.switchCycles, 4u);
    EXPECT_FALSE(c.prefetch);
    // Switch threshold: anything beyond the secondary cache.
    EXPECT_EQ(c.switchThreshold, 26u);
}

TEST(Config, BuffersWritesPredicate)
{
    EXPECT_FALSE(buffersWrites(Consistency::SC));
    EXPECT_TRUE(buffersWrites(Consistency::PC));
    EXPECT_TRUE(buffersWrites(Consistency::WC));
    EXPECT_TRUE(buffersWrites(Consistency::RC));
}
