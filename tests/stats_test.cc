/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace dashsim;

TEST(SampleStat, EmptyIsZero)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 0.0);
}

TEST(SampleStat, BasicMoments)
{
    SampleStat s;
    for (double v : {2.0, 4.0, 6.0, 8.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 20.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 8.0);
}

TEST(SampleStat, MedianOfSmallIntegers)
{
    SampleStat s;
    for (double v : {1, 2, 3, 4, 100})
        s.sample(v);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStat, MedianSkewedDistribution)
{
    SampleStat s;
    for (int i = 0; i < 99; ++i)
        s.sample(10.0);
    s.sample(100000.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(SampleStat, MedianLargeValuesQuantized)
{
    SampleStat s;
    for (int i = 0; i < 101; ++i)
        s.sample(1000.0);
    // Bucketing past 128 is exponential; the median must be within the
    // bucket width of the true value.
    EXPECT_NEAR(s.median(), 1000.0, 1000.0 / 2);
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.sample(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(HitRate, Percentages)
{
    HitRate hr;
    EXPECT_DOUBLE_EQ(hr.percent(), 0.0);
    hr.record(true);
    hr.record(true);
    hr.record(false);
    hr.record(true);
    EXPECT_EQ(hr.hits, 3u);
    EXPECT_EQ(hr.accesses, 4u);
    EXPECT_DOUBLE_EQ(hr.percent(), 75.0);
}
