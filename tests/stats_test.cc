/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"

using namespace dashsim;

namespace {

/**
 * Reference model: the pre-rewrite std::map-backed SampleStat histogram.
 * The flat-vector buckets must quantize every sample to exactly the same
 * bucket lower bound, so median() is bit-identical for any input stream.
 */
class MapSampleStat
{
  public:
    void
    sample(double v)
    {
        ++_count;
        _max = _count == 1 ? v : std::max(_max, v);
        buckets[quantize(v)]++;
    }

    double
    median() const
    {
        if (!_count)
            return 0.0;
        std::uint64_t half = (_count + 1) / 2;
        std::uint64_t seen = 0;
        for (const auto &[bucket, n] : buckets) {
            seen += n;
            if (seen >= half)
                return static_cast<double>(bucket);
        }
        return _max;
    }

    static std::int64_t
    quantize(double v)
    {
        auto i = static_cast<std::int64_t>(v);
        if (i <= 128)
            return i;
        std::int64_t w = 1;
        while ((128 << 1) * w <= i)
            w <<= 1;
        return i / w * w;
    }

  private:
    std::uint64_t _count = 0;
    double _max = 0.0;
    std::map<std::int64_t, std::uint64_t> buckets;
};

} // namespace

TEST(SampleStat, EmptyIsZero)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 0.0);
}

TEST(SampleStat, BasicMoments)
{
    SampleStat s;
    for (double v : {2.0, 4.0, 6.0, 8.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 20.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 8.0);
}

TEST(SampleStat, MedianOfSmallIntegers)
{
    SampleStat s;
    for (double v : {1, 2, 3, 4, 100})
        s.sample(v);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStat, MedianSkewedDistribution)
{
    SampleStat s;
    for (int i = 0; i < 99; ++i)
        s.sample(10.0);
    s.sample(100000.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(SampleStat, MedianLargeValuesQuantized)
{
    SampleStat s;
    for (int i = 0; i < 101; ++i)
        s.sample(1000.0);
    // Bucketing past 128 is exponential; the median must be within the
    // bucket width of the true value.
    EXPECT_NEAR(s.median(), 1000.0, 1000.0 / 2);
}

TEST(SampleStat, ResetClears)
{
    SampleStat s;
    s.sample(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(SampleStat, BucketsMatchMapReferenceAtBoundaries)
{
    // A single sample's median is that sample's bucket lower bound, so
    // this asserts per-value quantization identity with the old map
    // implementation at every bucket-width boundary.
    std::vector<std::uint64_t> values = {0, 1, 127, 128, 129, 200,
                                         255, 256, 257, 511, 512, 513,
                                         1023, 1024, 1025, 65535, 65536,
                                         (1ull << 40) - 1, 1ull << 40};
    for (std::uint64_t v : values) {
        SampleStat s;
        MapSampleStat ref;
        s.sample(static_cast<double>(v));
        ref.sample(static_cast<double>(v));
        EXPECT_DOUBLE_EQ(s.median(), ref.median()) << "value " << v;
    }
}

TEST(SampleStat, MedianMatchesMapReferenceOnRandomStreams)
{
    // Whole-stream identity: mixed magnitudes, heavy bucket collisions,
    // medians compared against the reference after every sample.
    Rng rng(0x57a75);
    SampleStat s;
    MapSampleStat ref;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t magnitude = rng.below(20);  // bit-length classes
        std::uint64_t v = rng.below((1ull << magnitude) + 1);
        s.sample(static_cast<double>(v));
        ref.sample(static_cast<double>(v));
        ASSERT_DOUBLE_EQ(s.median(), ref.median())
            << "after sample " << i << " (value " << v << ")";
    }
}

TEST(SampleStat, NegativeSamplesMatchMapReference)
{
    // Negatives take the cold map fallback; ordering across the
    // negative/positive boundary must still match the reference.
    SampleStat s;
    MapSampleStat ref;
    for (double v : {-5.0, -1.0, 0.0, 3.0, -2.0, 1000.0, -5.0}) {
        s.sample(v);
        ref.sample(v);
        ASSERT_DOUBLE_EQ(s.median(), ref.median()) << "value " << v;
    }
}

TEST(SampleStat, NegativeFractionsBinAsNegative)
{
    // Samples in (-1, 0) must take the negative fallback with a floored
    // key, not truncate to bucket 0: a single -0.5 sample has median -1
    // (the lower bound of its bucket), never 0.
    SampleStat s;
    s.sample(-0.5);
    EXPECT_DOUBLE_EQ(s.median(), -1.0);
    EXPECT_DOUBLE_EQ(s.minValue(), -0.5);
}

TEST(SampleStat, NegativeFractionsOrderBeforePositives)
{
    // The median scan walks negBuckets first; a (-1,0) sample that
    // leaked into buckets[0] would be visited *after* genuine
    // negatives and displace the median. With the fix the stream
    // {-0.5, -0.5, 3, 4, 5} has median 3 (3rd of 5), and
    // {-0.5, 2, 4} has median 2.
    SampleStat a;
    for (double v : {-0.5, -0.5, 3.0, 4.0, 5.0})
        a.sample(v);
    EXPECT_DOUBLE_EQ(a.median(), 3.0);

    SampleStat b;
    for (double v : {-0.5, 2.0, 4.0})
        b.sample(v);
    EXPECT_DOUBLE_EQ(b.median(), 2.0);

    // Majority-negative stream: the median must land in a negative
    // bucket, keyed by floor (so -1.5 counts as bucket -2).
    SampleStat c;
    for (double v : {-1.5, -0.25, 7.0})
        c.sample(v);
    EXPECT_DOUBLE_EQ(c.median(), -1.0);
}

TEST(SampleStat, PositiveFractionsStillTruncate)
{
    // Non-negative fractions keep the original truncation contract
    // (bucket lower bounds are integers).
    SampleStat s;
    s.sample(0.75);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    s.reset();
    s.sample(5.9);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(HitRate, Percentages)
{
    HitRate hr;
    EXPECT_DOUBLE_EQ(hr.percent(), 0.0);
    hr.record(true);
    hr.record(true);
    hr.record(false);
    hr.record(true);
    EXPECT_EQ(hr.hits, 3u);
    EXPECT_EQ(hr.accesses, 4u);
    EXPECT_DOUBLE_EQ(hr.percent(), 75.0);
}
