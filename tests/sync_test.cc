/**
 * @file
 * Tests for the shared-memory synchronization library: allocation
 * helpers and the lock-protected task queues.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/machine.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Lambda : public Workload
{
  public:
    using Setup = std::function<void(Machine &)>;
    using Body = std::function<SimProcess(Env)>;

    Lambda(Setup s, Body b) : _setup(std::move(s)), _body(std::move(b)) {}

    std::string name() const override { return "sync-lambda"; }
    void setup(Machine &m) override { _setup(m); }
    SimProcess run(Env env) override { return _body(env); }

  private:
    Setup _setup;
    Body _body;
};

} // namespace

TEST(SyncAlloc, LockInitializedFree)
{
    SharedMemory mem(4);
    Addr l = sync::allocLock(mem);
    EXPECT_EQ(mem.load<std::uint32_t>(l), 0u);
    Addr l2 = sync::allocLock(mem, 3);
    EXPECT_EQ(mem.homeOf(l2), 3u);
}

TEST(SyncAlloc, BarrierHasCountAndSenseLines)
{
    SharedMemory mem(4);
    Addr b = sync::allocBarrier(mem);
    EXPECT_EQ(mem.load<std::uint32_t>(b), 0u);
    EXPECT_EQ(mem.load<std::uint32_t>(b + lineBytes), 0u);
    // Count and sense on separate lines so waiters spin on sense only.
    EXPECT_NE(lineIndex(b), lineIndex(b + lineBytes));
}

TEST(SyncAlloc, TaskQueueLayout)
{
    SharedMemory mem(4);
    auto q = sync::allocTaskQueue(mem, 8, 2);
    EXPECT_EQ(mem.homeOf(q.base), 2u);
    EXPECT_EQ(q.capacity, 8u);
    EXPECT_NE(lineIndex(q.lockAddr()), lineIndex(q.headAddr()));
    EXPECT_EQ(q.slotAddr(0), q.base + 2 * lineBytes);
    EXPECT_EQ(q.slotAddr(8), q.slotAddr(0));  // wraps modulo capacity
}

TEST(TaskQueue, FifoSingleProcess)
{
    MachineConfig cfg;
    cfg.mem.numNodes = 1;
    Machine m(cfg);
    sync::TaskQueue q;
    std::vector<std::uint64_t> popped;
    Lambda w(
        [&](Machine &mm) {
            q = sync::allocTaskQueue(mm.memory(), 8, 0);
        },
        [&](Env env) -> SimProcess {
            bool ok = false;
            for (std::uint64_t v : {10, 20, 30})
                co_await sync::push(env, q, v, ok);
            std::uint64_t item = 0;
            while (true) {
                co_await sync::pop(env, q, item, ok);
                if (!ok)
                    break;
                popped.push_back(item);
            }
        });
    m.run(w);
    EXPECT_EQ(popped, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(TaskQueue, FullRejectsPush)
{
    MachineConfig cfg;
    cfg.mem.numNodes = 1;
    Machine m(cfg);
    sync::TaskQueue q;
    int accepted = 0;
    bool overflow_ok = true;
    Lambda w(
        [&](Machine &mm) {
            q = sync::allocTaskQueue(mm.memory(), 4, 0);
        },
        [&](Env env) -> SimProcess {
            for (std::uint64_t v = 0; v < 6; ++v) {
                bool ok = false;
                co_await sync::push(env, q, v, ok);
                if (ok)
                    ++accepted;
                else if (v < 4)
                    overflow_ok = false;
            }
        });
    m.run(w);
    EXPECT_EQ(accepted, 4);
    EXPECT_TRUE(overflow_ok);
}

TEST(TaskQueue, ConcurrentPushersNoLostItems)
{
    Machine m(MachineConfig{});
    sync::TaskQueue q;
    std::multiset<std::uint64_t> drained;
    Lambda w(
        [&](Machine &mm) {
            q = sync::allocTaskQueue(mm.memory(), 4096, 0);
        },
        [&](Env env) -> SimProcess {
            bool ok = false;
            // Everyone pushes 8 tagged items; process 0 drains at the
            // end (after a barrier implemented with a flag-free trick:
            // just pushing is enough since pop happens post-run... use
            // the machine barrier instead).
            for (int i = 0; i < 8; ++i) {
                co_await sync::push(
                    env, q,
                    static_cast<std::uint64_t>(env.pid()) * 100 + i, ok);
                if (!ok)
                    panic("queue overflow in test");
            }
        });
    m.run(w);
    // Drain host-side: head/tail bookkeeping must show 128 items and
    // each slot must hold a valid tag.
    auto &mem = m.memory();
    auto head = mem.load<std::uint32_t>(q.headAddr());
    auto tail = mem.load<std::uint32_t>(q.tailAddr());
    EXPECT_EQ(tail - head, 128u);
    for (std::uint32_t i = head; i != tail; ++i)
        drained.insert(mem.load<std::uint64_t>(q.slotAddr(i)));
    for (unsigned pid = 0; pid < 16; ++pid)
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(drained.count(pid * 100 + i), 1u)
                << "pid " << pid << " item " << i;
}

TEST(TaskQueue, ProducerConsumerAcrossProcessors)
{
    Machine m(MachineConfig{});
    sync::TaskQueue q;
    Addr done = 0;
    std::uint64_t consumed = 0;
    Lambda w(
        [&](Machine &mm) {
            q = sync::allocTaskQueue(mm.memory(), 256, 0);
            done = mm.memory().allocRoundRobin(lineBytes);
        },
        [&](Env env) -> SimProcess {
            bool ok = false;
            if (env.pid() != 0) {
                for (int i = 0; i < 4; ++i)
                    co_await sync::push(env, q, env.pid(), ok);
                co_await env.fetchAdd(done, 1);
            } else {
                // Consumer: drain until all 15 producers finished and
                // the queue is empty.
                while (true) {
                    std::uint64_t item = 0;
                    co_await sync::pop(env, q, item, ok);
                    if (ok) {
                        ++consumed;
                        continue;
                    }
                    auto d = co_await env.read<std::uint32_t>(done);
                    if (d == 15) {
                        std::uint32_t len = 0;
                        co_await sync::lengthEstimate(env, q, len);
                        if (!len)
                            break;
                    }
                    co_await env.compute(30);
                }
            }
        });
    m.run(w);
    EXPECT_EQ(consumed, 15u * 4u);
}
