/**
 * @file
 * Tests for the coroutine runtime (SimProcess / SubTask) and the Env
 * awaitables: nesting, value typing, and process lifecycle.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "tango/process.hh"
#include "tango/sync.hh"

using namespace dashsim;

namespace {

class Lambda : public Workload
{
  public:
    using Setup = std::function<void(Machine &)>;
    using Body = std::function<SimProcess(Env)>;

    Lambda(Setup s, Body b) : _setup(std::move(s)), _body(std::move(b)) {}

    std::string name() const override { return "tango-lambda"; }
    void setup(Machine &m) override { _setup(m); }
    SimProcess run(Env env) override { return _body(env); }

  private:
    Setup _setup;
    Body _body;
};

Addr gData = 0;

void
setupData(Machine &m)
{
    gData = m.memory().allocRoundRobin(64 * 1024);
}

MachineConfig
oneNode()
{
    MachineConfig cfg;
    cfg.mem.numNodes = 1;
    return cfg;
}

} // namespace

TEST(Tango, SimProcessStartsSuspended)
{
    bool ran = false;
    auto make = [&]() -> SimProcess {
        ran = true;
        co_return;
    };
    SimProcess p = make();
    EXPECT_FALSE(ran);         // created suspended
    EXPECT_FALSE(p.done());
    p.handle().resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(p.done());
}

TEST(Tango, SimProcessMoveTransfersOwnership)
{
    auto make = []() -> SimProcess { co_return; };
    SimProcess a = make();
    SimProcess b = std::move(a);
    EXPECT_FALSE(b.done());
    b.handle().resume();
    EXPECT_TRUE(b.done());
}

TEST(Tango, TypedReadsRoundTripAllWidths)
{
    Machine m(oneNode());
    bool checked = false;
    Lambda w(setupData, [&checked](Env env) -> SimProcess {
        co_await env.write<std::uint8_t>(gData + 0, 0xab);
        co_await env.write<std::uint16_t>(gData + 2, 0xbeef);
        co_await env.write<std::uint32_t>(gData + 4, 0xcafebabe);
        co_await env.write<std::uint64_t>(gData + 8,
                                          0x1122334455667788ull);
        co_await env.write<float>(gData + 16, 2.5f);
        co_await env.write<double>(gData + 24, -7.25);

        EXPECT_EQ(co_await env.read<std::uint8_t>(gData + 0), 0xab);
        EXPECT_EQ(co_await env.read<std::uint16_t>(gData + 2), 0xbeef);
        EXPECT_EQ(co_await env.read<std::uint32_t>(gData + 4),
                  0xcafebabeu);
        EXPECT_EQ(co_await env.read<std::uint64_t>(gData + 8),
                  0x1122334455667788ull);
        EXPECT_FLOAT_EQ(co_await env.read<float>(gData + 16), 2.5f);
        EXPECT_DOUBLE_EQ(co_await env.read<double>(gData + 24), -7.25);
        checked = true;
    });
    m.run(w);
    EXPECT_TRUE(checked);
}

namespace {

SubTask
leaf(Env env, Addr a, int depth)
{
    auto v = co_await env.read<std::uint32_t>(a);
    co_await env.compute(3);
    co_await env.write<std::uint32_t>(a, v + depth);
}

SubTask
middle(Env env, Addr a)
{
    co_await leaf(env, a, 1);
    co_await leaf(env, a, 10);
    co_await env.compute(2);
}

} // namespace

TEST(Tango, SubTasksNestAcrossSuspensions)
{
    Machine m(oneNode());
    Lambda w(setupData, [](Env env) -> SimProcess {
        co_await env.write<std::uint32_t>(gData, 100);
        co_await middle(env, gData);   // two nested levels
        co_await leaf(env, gData, 1000);
    });
    m.run(w);
    EXPECT_EQ(m.memory().load<std::uint32_t>(gData), 1111u);
}

TEST(Tango, SubTaskLoopManyIterations)
{
    // Exercises SubTask frame churn: thousands of create/await/destroy
    // cycles with real suspensions inside.
    Machine m(oneNode());
    Lambda w(setupData, [](Env env) -> SimProcess {
        for (int i = 0; i < 2000; ++i)
            co_await leaf(env, gData + 16 * (i % 64), 1);
    });
    m.run(w);
    std::uint32_t sum = 0;
    for (int s = 0; s < 64; ++s)
        sum += m.memory().load<std::uint32_t>(gData + 16 * s);
    EXPECT_EQ(sum, 2000u);
}

TEST(Tango, EnvIdentityAndConfig)
{
    MachineConfig cfg;
    cfg.cpu.numContexts = 2;
    cfg.cpu.prefetch = true;
    Machine m(cfg);
    std::vector<int> seen(32, 0);
    Lambda w(setupData, [&seen](Env env) -> SimProcess {
        EXPECT_EQ(env.nprocs(), 32u);
        EXPECT_EQ(env.node(), env.pid() % 16);
        EXPECT_TRUE(env.prefetching());
        seen[env.pid()]++;
        co_await env.compute(1);
    });
    m.run(w);
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(Tango, ProcessesFinishIndependently)
{
    // Wildly unequal process lengths must all complete and the end
    // tick must reflect the slowest.
    Machine m(MachineConfig{});
    Lambda w(setupData, [](Env env) -> SimProcess {
        co_await env.compute(1 + 500 * env.pid());
    });
    auto r = m.run(w);
    EXPECT_EQ(r.execTime, 1u + 500u * 15u);
}

TEST(Tango, ComputeZeroIsHarmless)
{
    Machine m(oneNode());
    Lambda w(setupData, [](Env env) -> SimProcess {
        co_await env.compute(0);
        co_await env.compute(5);
        co_await env.compute(0);
    });
    auto r = m.run(w);
    EXPECT_EQ(r.busyCycles, 5u);
}
