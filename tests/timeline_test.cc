/**
 * @file
 * Tests for the Chrome trace-event timeline sink (src/obs/timeline):
 * the emitted file is valid JSON, timestamps are monotone within every
 * (pid, tid) track, durations are positive, and the transaction-span
 * cap truncates deterministically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/machine.hh"
#include "obs/timeline.hh"

using namespace dashsim;
using namespace dashsim::obs;

namespace {

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n;
    while (f && (n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    if (f)
        std::fclose(f);
    return out;
}

/**
 * Minimal JSON validator (objects, arrays, strings, numbers, literals)
 * - enough to prove chrome://tracing will not reject the file outright.
 */
struct JsonScan
{
    const char *p;
    const char *end;

    explicit JsonScan(const std::string &s)
        : p(s.data()), end(s.data() + s.size())
    {}

    void ws() { while (p < end && std::strchr(" \t\r\n", *p)) ++p; }

    bool
    value()
    {
        ws();
        if (p >= end)
            return false;
        switch (*p) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++p;  // '{'
        ws();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (p >= end || *p != ':')
                return false;
            ++p;
            if (!value())
                return false;
            ws();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++p;  // '['
        ws();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            ws();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        while (p < end && *p != '"') {
            if (*p == '\\')
                ++p;
            ++p;
        }
        if (p >= end)
            return false;
        ++p;
        return true;
    }

    bool
    number()
    {
        const char *s = p;
        while (p < end && std::strchr("-+.0123456789eE", *p))
            ++p;
        return p != s;
    }

    bool
    parse()
    {
        if (!value())
            return false;
        ws();
        return p == end;
    }
};

struct XEvent
{
    std::uint32_t pid, tid;
    unsigned long long ts, dur;
    char name[128];
};

std::vector<XEvent>
extractXEvents(const std::string &text)
{
    std::vector<XEvent> evs;
    std::size_t pos = 0;
    while ((pos = text.find("{\"ph\":\"X\"", pos)) != std::string::npos) {
        // Copy just this event into a small buffer before sscanf: glibc
        // sscanf strlen()s its whole input, which is quadratic on a
        // multi-megabyte trace.
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        char line[256];
        std::size_t len = std::min(eol - pos, sizeof line - 1);
        std::memcpy(line, text.data() + pos, len);
        line[len] = '\0';
        XEvent e{};
        int n = std::sscanf(line,
                            "{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                            "\"ts\":%llu,\"dur\":%llu,\"name\":\"%127[^\"]\"",
                            &e.pid, &e.tid, &e.ts, &e.dur, e.name);
        EXPECT_EQ(n, 5) << "malformed X event at offset " << pos;
        evs.push_back(e);
        pos = eol;
    }
    return evs;
}

std::string
runWithTimeline(const std::string &path, std::uint64_t cap)
{
    MachineConfig cfg;
    cfg.obs.timelinePath = path;
    cfg.obs.timelineTxnCap = cap;
    Machine m(cfg);
    auto w = testWorkload("MP3D")();
    m.run(*w);
    return slurp(path);
}

} // namespace

TEST(Timeline, UnitSpansAreSortedPerTrackAtWriteTime)
{
    std::string path = ::testing::TempDir() + "timeline_unit.json";
    Timeline tl(path, 100);
    tl.nameProcess(Timeline::cpuPid(0), "cpu0");
    // Out-of-order bookings on one resource track (calendar backfill).
    tl.resSpan(0, 50, 4);
    tl.resSpan(0, 10, 4);
    tl.resSpan(0, 30, 4);
    tl.span(Timeline::cpuPid(0), 1, 5, 0, "zero");  // dropped: dur 0
    ASSERT_TRUE(tl.write());

    std::string text = slurp(path);
    EXPECT_TRUE(JsonScan(text).parse()) << text;
    auto evs = extractXEvents(text);
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].ts, 10u);
    EXPECT_EQ(evs[1].ts, 30u);
    EXPECT_EQ(evs[2].ts, 50u);
    EXPECT_EQ(text.find("zero"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Timeline, MachineTraceIsValidAndMonotonePerTrack)
{
    std::string path = ::testing::TempDir() + "timeline_machine.json";
    std::string text = runWithTimeline(path, 100000);

    ASSERT_TRUE(JsonScan(text).parse());
    EXPECT_NE(text.find("\"process_name\""), std::string::npos);
    EXPECT_NE(text.find("\"cpu0\""), std::string::npos);
    EXPECT_NE(text.find("\"mem0\""), std::string::npos);
    EXPECT_NE(text.find("\"busy\""), std::string::npos);

    auto evs = extractXEvents(text);
    ASSERT_GT(evs.size(), 100u);
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             unsigned long long>
        lastTs;
    for (const XEvent &e : evs) {
        EXPECT_GT(e.dur, 0u);
        auto key = std::make_pair(e.pid, e.tid);
        auto it = lastTs.find(key);
        if (it != lastTs.end()) {
            EXPECT_GE(e.ts, it->second)
                << "track " << e.pid << "/" << e.tid;
        }
        lastTs[key] = e.ts;
    }
    std::remove(path.c_str());
}

TEST(Timeline, TxnCapTruncatesDeterministically)
{
    std::string pa = ::testing::TempDir() + "timeline_cap_a.json";
    std::string pb = ::testing::TempDir() + "timeline_cap_b.json";
    std::string a = runWithTimeline(pa, 5);
    std::string b = runWithTimeline(pb, 5);
    EXPECT_EQ(a, b) << "capped trace must be deterministic";

    ASSERT_TRUE(JsonScan(a).parse());
    // At most 5 transaction spans (tid 99), and the truncation marker.
    std::size_t txn = 0;
    for (const XEvent &e : extractXEvents(a))
        if (e.tid == Timeline::txnTid)
            ++txn;
    EXPECT_LE(txn, 5u);
    EXPECT_NE(a.find("txn_spans_dropped"), std::string::npos);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(Timeline, UncappedTraceIsDeterministic)
{
    std::string pa = ::testing::TempDir() + "timeline_det_a.json";
    std::string pb = ::testing::TempDir() + "timeline_det_b.json";
    std::string a = runWithTimeline(pa, 100000);
    std::string b = runWithTimeline(pb, 100000);
    EXPECT_EQ(a, b);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}
