/**
 * @file
 * Tests for trace recording and trace-driven replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "apps/lu.hh"
#include "core/experiment.hh"
#include "tango/sync.hh"
#include "tango/trace.hh"

using namespace dashsim;

namespace {

/** A small deterministic workload with every operation kind. */
class Mixed : public Workload
{
  public:
    std::string name() const override { return "mixed"; }

    void
    setup(Machine &m) override
    {
        auto &mem = m.memory();
        data = mem.allocRoundRobin(16 * 1024);
        lock = sync::allocLock(mem);
        bar = sync::allocBarrier(mem);
        flag = mem.allocRoundRobin(lineBytes);
    }

    SimProcess
    run(Env env) override
    {
        const unsigned pid = env.pid();
        const unsigned np = env.nprocs();
        Addr mine = data + 256 + pid * 512;
        co_await env.barrier(bar, np);
        for (int i = 0; i < 6; ++i) {
            co_await env.prefetch(mine + 16 * (i + 2));
            auto v = co_await env.read<std::uint64_t>(mine + 16 * i);
            co_await env.compute(11);
            co_await env.write<std::uint64_t>(mine + 16 * i, v + pid);
        }
        co_await env.lock(lock);
        auto c = co_await env.read<std::uint32_t>(data);
        co_await env.write<std::uint32_t>(data, c + 1);
        co_await env.unlock(lock);
        (void)co_await env.fetchAdd(data + 64, 2);
        if (pid == 0)
            co_await env.writeRelease<std::uint32_t>(flag, 1);
        else
            co_await env.waitFlag(flag, 1);
        co_await env.barrier(bar, np);
    }

    void
    verify(Machine &m) override
    {
        auto c = m.memory().load<std::uint32_t>(data);
        if (c != m.numProcesses())
            panic("mixed counter %u != %u", c, m.numProcesses());
    }

    Addr data = 0, lock = 0, bar = 0, flag = 0;
};

Trace
recordMixed(const Technique &t)
{
    Machine m(makeMachineConfig(t));
    TraceRecorder rec(std::make_unique<Mixed>());
    m.run(rec);
    return rec.takeTrace();
}

} // namespace

TEST(Trace, RecordCapturesAllOperations)
{
    Trace t = recordMixed(Technique::rc());
    ASSERT_EQ(t.procs.size(), 16u);
    EXPECT_GT(t.footprint, 0u);
    EXPECT_FALSE(t.initialImage.empty());
    // Per process: 2 barriers + 6x(prefetch,read,write) + lock + read +
    // write + unlock + fetchAdd + (writeRelease | waitFlag) = 26 ops.
    for (const auto &ops : t.procs)
        EXPECT_EQ(ops.size(), 26u);

    // Kinds present.
    bool saw_release = false, saw_wait = false, saw_pf = false;
    for (const auto &ops : t.procs)
        for (const auto &op : ops) {
            saw_release |= op.kind == TraceOp::Kind::WriteRelease;
            saw_wait |= op.kind == TraceOp::Kind::WaitFlag;
            saw_pf |= op.kind == TraceOp::Kind::Prefetch;
        }
    EXPECT_TRUE(saw_release);
    EXPECT_TRUE(saw_wait);
    EXPECT_TRUE(saw_pf);
}

TEST(Trace, ComputeCyclesAttachToNextOp)
{
    Trace t = recordMixed(Technique::rc());
    bool saw_compute = false;
    for (const auto &op : t.procs[3])
        saw_compute |= op.compute == 11;
    EXPECT_TRUE(saw_compute);
}

TEST(Trace, ReplayMatchesOriginalTiming)
{
    // Record under RC, replay under RC on a fresh machine: identical
    // operation streams and placement must give identical timing.
    Machine m1(makeMachineConfig(Technique::rc()));
    Mixed w;
    RunResult direct = m1.run(w);

    Trace t = recordMixed(Technique::rc());
    Machine m2(makeMachineConfig(Technique::rc()));
    TraceWorkload replay(std::move(t));
    RunResult replayed = m2.run(replay);

    EXPECT_EQ(replayed.execTime, direct.execTime);
    EXPECT_EQ(replayed.busyCycles, direct.busyCycles);
}

TEST(Trace, ReplayUnderDifferentModel)
{
    // The whole point of trace-driven mode: record once, replay under
    // another technique. Synchronization is re-established, and with
    // enforceSyncOrder the contended lock is granted in its recorded
    // order, so the replay still verifies structurally (the counter in
    // shared memory reaches 16 again because values are replayed too;
    // without order enforcement the different timing could let another
    // critical section run last and leave its recorded value behind).
    Trace t = recordMixed(Technique::rc());
    Machine m(makeMachineConfig(Technique::sc()));
    TraceWorkload replay(std::move(t));
    replay.enforceSyncOrder = true;
    RunResult r = m.run(replay);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.bucket(Bucket::Write), 0u);  // SC write stalls appear
    // The lock-protected counter (first allocation, address 4096 on a
    // fresh arena) must reach 16 again: replay re-establishes the
    // synchronization order and replays the written values.
    EXPECT_EQ(m.memory().load<std::uint32_t>(4096), 16u);
}

TEST(Trace, RecordingDoesNotPerturbResults)
{
    Machine m1(makeMachineConfig(Technique::rc()));
    Mixed w;
    RunResult plain = m1.run(w);

    Machine m2(makeMachineConfig(Technique::rc()));
    TraceRecorder rec(std::make_unique<Mixed>());
    RunResult recorded = m2.run(rec);

    EXPECT_EQ(plain.execTime, recorded.execTime);
    EXPECT_EQ(plain.buckets, recorded.buckets);
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t = recordMixed(Technique::rc());
    std::string path = "/tmp/dashsim_trace_test.dtrc";
    saveTrace(t, path);
    Trace u = loadTrace(path);
    std::remove(path.c_str());

    EXPECT_EQ(u.footprint, t.footprint);
    EXPECT_EQ(u.pageHomes, t.pageHomes);
    EXPECT_EQ(u.initialImage, t.initialImage);
    ASSERT_EQ(u.procs.size(), t.procs.size());
    for (std::size_t p = 0; p < t.procs.size(); ++p) {
        ASSERT_EQ(u.procs[p].size(), t.procs[p].size());
        for (std::size_t i = 0; i < t.procs[p].size(); ++i)
            EXPECT_TRUE(u.procs[p][i] == t.procs[p][i]);
    }
}

TEST(Trace, LuTraceReplaysAndStaysNumericallyCorrect)
{
    LuConfig lc;
    lc.n = 32;
    Machine m1(makeMachineConfig(Technique::rc()));
    TraceRecorder rec(std::make_unique<Lu>(lc));
    m1.run(rec);  // Lu::verify runs inside (checks A == L*U)
    Trace t = rec.takeTrace();
    EXPECT_GT(t.totalOps(), 10000u);

    // Replay under SC: same references, different timing.
    Machine m2(makeMachineConfig(Technique::sc()));
    TraceWorkload replay(std::move(t));
    RunResult r = m2.run(replay);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.sharedReads, 10000u);
}

TEST(TraceDeathTest, ReplayNeedsMatchingProcessCount)
{
    Trace t = recordMixed(Technique::rc());
    MachineConfig cfg = makeMachineConfig(Technique::rc());
    cfg.cpu.numContexts = 2;  // 32 processes != 16 streams
    Machine m(cfg);
    TraceWorkload replay(std::move(t));
    EXPECT_DEATH(m.run(replay), "process streams");
}
